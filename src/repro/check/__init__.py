"""Correctness tooling: lint, graph validation, race + leak detection.

Four analyzers, one finding format, one CLI (``python -m repro check``):

* :mod:`repro.check.lint` — repo-specific AST rules,
* :mod:`repro.check.graph` — static task-graph validation,
* :mod:`repro.check.races` — Eraser-style lockset + vector-clock race
  detection over the comm pools, scheduler, and service workers,
* :mod:`repro.check.leaks` — allocator double-free/use-after-retire/
  leak checking.
"""

from repro.check.findings import CheckFinding, CheckReport
from repro.check.graph import validate_compiled, validate_taskgraph
from repro.check.leaks import CheckedAllocator, run_leak_fixture
from repro.check.lint import lint_paths, lint_source
from repro.check.races import (
    RaceDetector,
    TrackedLock,
    TrackedQueue,
    drive_pool_contended,
    instrument_comm_pool,
    instrument_datawarehouse,
    instrument_worker_pool,
    patch_locks,
)

__all__ = [
    "CheckFinding",
    "CheckReport",
    "CheckedAllocator",
    "RaceDetector",
    "TrackedLock",
    "TrackedQueue",
    "drive_pool_contended",
    "instrument_comm_pool",
    "instrument_datawarehouse",
    "instrument_worker_pool",
    "lint_paths",
    "lint_source",
    "patch_locks",
    "run_leak_fixture",
    "validate_compiled",
    "validate_taskgraph",
]
