"""Correctness tooling: lint, graph, races, leaks, fs, protocol.

Six analyzers, one finding format, one CLI (``python -m repro check``):

* :mod:`repro.check.lint` — repo-specific AST rules,
* :mod:`repro.check.graph` — static task-graph validation,
* :mod:`repro.check.races` — Eraser-style lockset + vector-clock race
  detection over the comm pools, scheduler, and service workers,
* :mod:`repro.check.leaks` — allocator double-free/use-after-retire/
  leak checking,
* :mod:`repro.check.fs` — crash-consistency analysis of the
  write-then-rename discipline (interprocedural filesystem-effect
  summaries over service/fabric/resilience/util),
* :mod:`repro.check.protocol` — explicit-state model checking of the
  spool claim/re-home protocol (exhaustive interleavings with crash
  points, minimal counterexample traces).

``repro check --list-rules`` enumerates every rule across all six.
"""

from repro.check.findings import CheckFinding, CheckReport
from repro.check.fs import (
    check_paths as fs_check_paths,
    check_source as fs_check_source,
    run_fs_fixture,
)
from repro.check.graph import validate_compiled, validate_taskgraph
from repro.check.leaks import CheckedAllocator, run_leak_fixture
from repro.check.lint import lint_paths, lint_source
from repro.check.protocol import (
    ProtocolResult,
    SpoolModel,
    check_model,
    run_protocol_fixture,
    verify_protocol,
)
from repro.check.races import (
    RaceDetector,
    TrackedLock,
    TrackedQueue,
    drive_pool_contended,
    instrument_comm_pool,
    instrument_datawarehouse,
    instrument_worker_pool,
    patch_locks,
)

__all__ = [
    "CheckFinding",
    "CheckReport",
    "CheckedAllocator",
    "ProtocolResult",
    "RaceDetector",
    "SpoolModel",
    "TrackedLock",
    "TrackedQueue",
    "check_model",
    "drive_pool_contended",
    "fs_check_paths",
    "fs_check_source",
    "instrument_comm_pool",
    "instrument_datawarehouse",
    "instrument_worker_pool",
    "lint_paths",
    "lint_source",
    "patch_locks",
    "run_fs_fixture",
    "run_leak_fixture",
    "run_protocol_fixture",
    "validate_compiled",
    "validate_taskgraph",
    "verify_protocol",
]
