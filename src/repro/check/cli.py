"""``python -m repro check`` — the correctness-tooling entry point.

Subcommands run one analyzer each; ``all`` runs the suite and is the
CI gate (exit 1 on any non-suppressed finding):

* ``lint``     — AST project linter over ``src/repro``
* ``graph``    — static validation of the three-level RMCRT task graph
* ``races``    — lockset/vector-clock drive of the comm pools
* ``leaks``    — allocator lifetime check over the RMCRT small-object
  workload
* ``fs``       — crash-consistency analysis of the write-then-rename
  discipline over service/fabric/resilience/util
* ``protocol`` — exhaustive model check of the spool claim/re-home
  protocol (plus its no-journal variant) with crash points after
  every transition

``--seeded-defects`` switches every analyzer onto its seeded-defect
fixture (the legacy racy pool, a deliberately broken task graph, the
double-free/use-after-retire/leak scenarios, non-atomic/misordered
filesystem publication, the early-settle / journal-before-claim /
copy-claim protocol variants) — the self-test that the detectors
still detect; there the expected exit code is non-zero. ``--json
PATH`` additionally writes the structured report (the CI artifact).
``--list-rules`` enumerates every rule across all analyzers with
severity and description instead of running anything.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.check.findings import CheckReport

#: repo root (src/repro/check/cli.py -> three parents up from src)
REPO_ROOT = Path(__file__).resolve().parents[3]

RACE_DRIVE = dict(num_threads=4, num_messages=32, unpack_delay=2e-3)


# ----------------------------------------------------------------------
# graph fixtures
# ----------------------------------------------------------------------
def demo_taskgraph():
    """The three-level RMCRT task graph (uncompiled) — the clean tree."""
    from repro.core.distributed import DistributedRMCRT, benchmark_property_init
    from repro.grid import Box, Grid, decompose_level
    from repro.radiation import BurnsChristonBenchmark

    fine = 16
    grid = Grid()
    grid.add_level(Box.cube(fine // 4), (4.0 / fine,) * 3)
    grid.add_level(Box.cube(fine // 2), (2.0 / fine,) * 3, refinement_ratio=(2, 2, 2))
    level = grid.add_level(Box.cube(fine), (1.0 / fine,) * 3, refinement_ratio=(2, 2, 2))
    decompose_level(level, (8, 8, 8))
    drm = DistributedRMCRT(
        grid,
        benchmark_property_init(BurnsChristonBenchmark(resolution=fine)),
        rays_per_cell=8,
        halo=2,
        seed=4,
    )
    return drm.build_taskgraph()


def broken_taskgraph():
    """A graph seeded with a dangling consumer and an unordered
    write-write pair — the validator's self-test fixture."""
    from repro.dw.label import cc
    from repro.grid import Box, Grid, decompose_level
    from repro.runtime.task import Computes, Requires, Task
    from repro.runtime.taskgraph import TaskGraph

    grid = Grid()
    level = grid.add_level(Box.cube(8), (1.0 / 8,) * 3)
    decompose_level(level, (4, 4, 4))
    phi = cc("phi")
    out = cc("out")
    missing = cc("never_computed")

    def noop(ctx):  # pragma: no cover - never executed
        pass

    tg = TaskGraph(grid)
    tg.add_task(Task("writerA", noop, computes=[Computes(phi)]), 0)
    tg.add_task(Task("writerB", noop, computes=[Computes(phi)]), 0)
    tg.add_task(
        Task(
            "consumer",
            noop,
            requires=[Requires(missing, num_ghost=1)],
            computes=[Computes(out)],
        ),
        0,
    )
    return tg


# ----------------------------------------------------------------------
# per-analyzer runs
# ----------------------------------------------------------------------
def run_lint(paths=None) -> CheckReport:
    from repro.check.lint import lint_paths

    targets = list(paths) if paths else [str(REPO_ROOT / "src" / "repro")]
    findings, suppressed, scanned = lint_paths(targets, root=REPO_ROOT)
    report = CheckReport(suppressed=suppressed)
    report.extend(findings, check="lint")
    report.meta["lint"] = {"files_scanned": scanned, "paths": targets}
    return report


def run_graph(seeded_defects: bool = False) -> CheckReport:
    from repro.check.graph import validate_compiled, validate_taskgraph
    from repro.grid.loadbalance import LoadBalancer

    report = CheckReport()
    if seeded_defects:
        tg = broken_taskgraph()
        report.extend(validate_taskgraph(tg), check="graph")
        report.meta["graph"] = {"fixture": "broken", "tasks": len(tg._entries)}
        return report
    tg = demo_taskgraph()
    report.extend(validate_taskgraph(tg), check="graph")
    num_ranks = 4
    fine = tg.grid.finest_level
    assignment = LoadBalancer(num_ranks).assign(fine.patches)
    compiled = tg.compile(assignment=assignment, num_ranks=num_ranks, validate=False)
    report.extend(validate_compiled(compiled), check="graph")
    report.meta["graph"] = {
        "fixture": "rmcrt-three-level",
        "detailed_tasks": len(compiled.detailed_tasks),
        "messages": len(compiled.messages),
    }
    return report


def run_races(seeded_defects: bool = False) -> CheckReport:
    from repro.check.races import drive_pool_contended

    report = CheckReport()
    kinds = ("legacy-racy",) if seeded_defects else ("waitfree", "locked")
    meta = {}
    for kind in kinds:
        det = drive_pool_contended(kind, **RACE_DRIVE)
        report.extend(det.findings, check="races")
        meta[kind] = {
            "races": det.race_count,
            "racy_locations": len(det.distinct_locations()),
        }
    report.meta["races"] = meta
    return report


def run_leaks(seeded_defects: bool = False) -> CheckReport:
    from repro.check.leaks import check_workload, run_leak_fixture

    report = CheckReport()
    meta = {}
    if seeded_defects:
        for fixture in ("double-free", "use-after-retire", "leak"):
            alloc = run_leak_fixture(fixture)
            report.extend(alloc.findings, check="leaks")
            meta[fixture] = {"findings": len(alloc.findings)}
    else:
        alloc = check_workload()
        report.extend(alloc.findings, check="leaks")
        meta["workload"] = {
            "allocs": alloc.allocs,
            "frees": alloc.frees,
            "findings": len(alloc.findings),
        }
    report.meta["leaks"] = meta
    return report


def run_fs(paths=None, seeded_defects: bool = False) -> CheckReport:
    from repro.check import fs

    report = CheckReport()
    if seeded_defects:
        meta = {}
        for fixture in sorted(fs.SEEDED_FIXTURES):
            findings = fs.run_fs_fixture(fixture)
            report.extend(findings, check="fs")
            meta[fixture] = {"findings": len(findings)}
        report.meta["fs"] = meta
        return report
    targets = ([Path(p) for p in paths] if paths
               else fs.default_scope(REPO_ROOT))
    findings, suppressed, stats = fs.check_paths(targets, root=REPO_ROOT)
    report.suppressed = suppressed
    report.extend(findings, check="fs")
    report.meta["fs"] = stats
    return report


def run_protocol(seeded_defects: bool = False) -> CheckReport:
    import time

    from repro.check import protocol

    report = CheckReport()
    meta = {}
    if seeded_defects:
        for defect in sorted(protocol.DEFECT_RULES):
            result = protocol.run_protocol_fixture(defect)
            if not result.ok:
                report.findings.append(result.to_finding(f"spool+{defect}"))
            meta[defect] = {
                "states": result.states,
                "transitions": result.transitions,
                "trace_steps": len(result.trace),
                "rule": result.rule,
            }
        report.meta["protocol"] = meta
        return report
    t0 = time.perf_counter()
    for name, result in protocol.verify_protocol():
        if not result.ok:
            report.findings.append(result.to_finding(name))
        meta[name] = {
            "states": result.states,
            "transitions": result.transitions,
            "quiescent": result.terminals,
            "clean": result.ok,
        }
    meta["wall_s"] = round(time.perf_counter() - t0, 3)
    report.meta["protocol"] = meta
    return report


CHECKS = {
    "lint": lambda ns: run_lint(ns.paths),
    "graph": lambda ns: run_graph(ns.seeded_defects),
    "races": lambda ns: run_races(ns.seeded_defects),
    "leaks": lambda ns: run_leaks(ns.seeded_defects),
    "fs": lambda ns: run_fs(ns.paths, ns.seeded_defects),
    "protocol": lambda ns: run_protocol(ns.seeded_defects),
}


def collect_rules() -> list:
    """Every rule across all analyzers: (check, rule, severity,
    description) in a stable order."""
    from repro.check import fs, graph, leaks, lint, protocol, races

    catalogs = [
        ("lint", lint.RULES),
        ("graph", graph.RULES),
        ("races", races.RULES),
        ("leaks", leaks.RULES),
        ("fs", fs.RULES),
        ("protocol", protocol.RULES),
    ]
    out = []
    for check, rules in catalogs:
        for rule in sorted(rules):
            severity, description = rules[rule]
            out.append({
                "check": check,
                "rule": rule,
                "severity": severity,
                "description": description,
            })
    return out


def render_rules(rows: list) -> str:
    width = max(len(r["rule"]) for r in rows)
    lines = []
    current = None
    for r in rows:
        if r["check"] != current:
            current = r["check"]
            lines.append(f"== {current} ==")
        lines.append(
            f"  {r['rule']:<{width}}  {r['severity']:<7}  "
            f"{r['description']}"
        )
    return "\n".join(lines)


def run_check(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="repro correctness tooling: lint, graph validation, "
        "race detection, allocator checking",
    )
    parser.add_argument(
        "subcommand",
        nargs="?",
        default="all",
        choices=sorted(CHECKS) + ["all"],
        help="analyzer to run (default: all)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (lint subcommand only; "
        "default src/repro)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the structured report to PATH",
    )
    parser.add_argument(
        "--seeded-defects",
        action="store_true",
        help="run the analyzers against their seeded-defect fixtures "
        "(detector self-test; expected to fail)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="enumerate every rule across all analyzers (with --json, "
        "write the catalog as JSON) and exit",
    )
    ns = parser.parse_args(argv)

    if ns.list_rules:
        rows = collect_rules()
        print(render_rules(rows))
        if ns.json:
            import json

            from repro.util.atomic import atomic_write_text

            atomic_write_text(
                Path(ns.json),
                json.dumps({"rules": rows}, indent=2, sort_keys=True)
                + "\n",
            )
            print(f"rule catalog written to {ns.json}")
        return 0

    names = sorted(CHECKS) if ns.subcommand == "all" else [ns.subcommand]
    report = CheckReport()
    for name in names:
        print(f"== repro check {name} ==")
        report.merge(CHECKS[name](ns))
    print(report.render_text())
    if ns.json:
        report.write_json(ns.json)
        print(f"report written to {ns.json}")
    return report.exit_code
