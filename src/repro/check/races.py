"""Dynamic race detection: Eraser-style locksets + vector clocks.

The paper's contribution (iii) exists because a message-processing race
hid in the mutex-protected ``MPI_Testsome`` pool until it corrupted
runs at scale. ``comm/pool_locked.py`` reproduces that bug; this
module *detects* it — without needing the leak to actually fire — by
checking the locking discipline itself, the way Eraser's lockset
algorithm and ThreadSanitizer's happens-before tracking do:

* every monitored shared location must either be consistently guarded
  by at least one common lock (the lockset half), or
* each pair of conflicting accesses must be ordered by synchronization
  (the vector-clock half — lock releases/acquires and queue put/get
  transfer clocks).

An access pair that fails *both* tests is a race. The hybrid means the
wait-free pool's per-slot flags pass (common lock per slot), the safe
locked pool passes (global lock), the threaded scheduler passes (its
ready-queue lock carries happens-before from producer to consumer) —
and the legacy racy scan, which touches records with no lock and no
ordering, is flagged deterministically as soon as two threads overlap,
whether or not a buffer actually leaked on this run.

Instrumentation is a shim, not a rewrite: :func:`instrument_comm_pool`
wraps an existing pool's locks and records, :func:`patch_locks` makes
every ``threading.Lock`` created in a scope a tracked lock (for the
threaded scheduler), :func:`instrument_datawarehouse` watches per-patch
variable writes, and :func:`instrument_worker_pool` treats the service
shard queues as happens-before channels.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Set, Tuple

from repro.check.findings import CheckFinding, call_site

#: rule catalog: name -> (severity, one-line description)
RULES = {
    "lockset-race": (
        "error",
        "conflicting accesses to a shared location with no common lock "
        "and no happens-before ordering",
    ),
}

#: frames from these files are the detector itself, never the subject
_SHIM_FILES = ("repro/check/races.py", "repro/check/findings.py")


class _VectorClock(dict):
    """tid -> logical time; missing entries are 0."""

    def advance(self, tid: int) -> None:
        self[tid] = self.get(tid, 0) + 1

    def join(self, other: "_VectorClock") -> None:
        for tid, clock in other.items():
            if clock > self.get(tid, 0):
                self[tid] = clock

    def happens_before(self, tid: int, clock: int) -> bool:
        """Does event (tid, clock) happen-before this clock's owner?"""
        return clock <= self.get(tid, 0)

    def copy(self) -> "_VectorClock":
        return _VectorClock(self)


class _Access:
    """One recorded access epoch: who, when, under which locks, where."""

    __slots__ = ("tid", "clock", "lockset", "site")

    def __init__(self, tid: int, clock: int, lockset: frozenset, site: Tuple[str, int]):
        self.tid = tid
        self.clock = clock
        self.lockset = lockset
        self.site = site


class _Location:
    __slots__ = ("last_write", "reads")

    def __init__(self) -> None:
        self.last_write: Optional[_Access] = None
        self.reads: Dict[int, _Access] = {}


class RaceDetector:
    """Lockset + vector-clock hybrid over explicitly monitored state.

    Subjects report four kinds of events: lock acquire/release
    (usually via :class:`TrackedLock`), channel send/recv (usually via
    :class:`TrackedQueue`), and reads/writes of monitored locations.
    Verdicts depend only on which thread pairs touch a location and
    under which locks — not on precise timing — which is what makes
    them reproducible run to run.
    """

    def __init__(self, max_findings: int = 100) -> None:
        self._lock = threading.Lock()
        self._threads: Dict[int, _VectorClock] = {}
        self._held: Dict[int, Set[int]] = {}
        self._lock_clocks: Dict[int, _VectorClock] = {}
        self._chan_clocks: Dict[int, _VectorClock] = {}
        self._locations: Dict[str, _Location] = {}
        self._lock_names: Dict[int, str] = {}
        self.max_findings = int(max_findings)
        self.findings: List[CheckFinding] = []
        self.races: List[dict] = []
        #: strong refs to instrumented objects (stable location identity)
        self._pins: List[object] = []

    # ------------------------------------------------------------------
    def _tid(self) -> int:
        return threading.get_ident()

    def _thread_clock(self, tid: int) -> _VectorClock:
        vc = self._threads.get(tid)
        if vc is None:
            vc = _VectorClock({tid: 1})
            self._threads[tid] = vc
            self._held[tid] = set()
        return vc

    # -- synchronization events ----------------------------------------
    def on_acquire(self, lock_id: int, name: str = "") -> None:
        with self._lock:
            tid = self._tid()
            vc = self._thread_clock(tid)
            if name:
                self._lock_names.setdefault(lock_id, name)
            lock_vc = self._lock_clocks.get(lock_id)
            if lock_vc is not None:
                vc.join(lock_vc)
            self._held[tid].add(lock_id)

    def on_release(self, lock_id: int) -> None:
        with self._lock:
            tid = self._tid()
            vc = self._thread_clock(tid)
            self._lock_clocks[lock_id] = vc.copy()
            vc.advance(tid)
            self._held[tid].discard(lock_id)

    def channel_send(self, chan_id: int) -> None:
        with self._lock:
            tid = self._tid()
            vc = self._thread_clock(tid)
            chan = self._chan_clocks.setdefault(chan_id, _VectorClock())
            chan.join(vc)
            vc.advance(tid)

    def channel_recv(self, chan_id: int) -> None:
        with self._lock:
            tid = self._tid()
            vc = self._thread_clock(tid)
            chan = self._chan_clocks.get(chan_id)
            if chan is not None:
                vc.join(chan)

    # -- data events ----------------------------------------------------
    def on_read(self, location: str) -> None:
        self._on_access(location, is_write=False)

    def on_write(self, location: str) -> None:
        self._on_access(location, is_write=True)

    def _on_access(self, location: str, is_write: bool) -> None:
        site = call_site(_SHIM_FILES)
        with self._lock:
            tid = self._tid()
            vc = self._thread_clock(tid)
            lockset = frozenset(self._held[tid])
            loc = self._locations.setdefault(location, _Location())
            access = _Access(tid, vc.get(tid, 0), lockset, site)

            def races_with(prev: _Access) -> bool:
                if prev.tid == tid:
                    return False
                if prev.lockset & lockset:
                    return False  # commonly locked
                if vc.happens_before(prev.tid, prev.clock):
                    return False  # ordered by synchronization
                return True

            if is_write:
                conflicts = []
                if loc.last_write is not None and races_with(loc.last_write):
                    conflicts.append(("write-write", loc.last_write))
                for r in loc.reads.values():
                    if races_with(r):
                        conflicts.append(("read-write", r))
                for kind, prev in conflicts[:1]:
                    self._report(location, kind, prev, access)
                loc.last_write = access
                loc.reads = {}
            else:
                if loc.last_write is not None and races_with(loc.last_write):
                    self._report(location, "write-read", loc.last_write, access)
                loc.reads[tid] = access

    def _report(self, location: str, kind: str, prev: _Access, cur: _Access) -> None:
        self.races.append({
            "location": location,
            "kind": kind,
            "first": {"site": f"{prev.site[0]}:{prev.site[1]}", "tid": prev.tid},
            "second": {"site": f"{cur.site[0]}:{cur.site[1]}", "tid": cur.tid},
        })
        if len(self.findings) >= self.max_findings:
            return
        self.findings.append(CheckFinding(
            rule="lockset-race",
            severity="error",
            message=(
                f"{kind} race on {location}: no common lock and no "
                f"happens-before edge between {prev.site[0]}:{prev.site[1]} "
                f"(thread {prev.tid}) and this access"
            ),
            file=cur.site[0],
            line=cur.site[1],
            check="races",
        ))

    # ------------------------------------------------------------------
    @property
    def race_count(self) -> int:
        return len(self.races)

    def distinct_locations(self) -> Set[str]:
        return {r["location"] for r in self.races}

    def pin(self, obj: object) -> None:
        """Keep ``obj`` alive so ``id()``-derived locations stay unique."""
        self._pins.append(obj)


class TrackedLock:
    """A ``threading.Lock`` stand-in that reports to a detector."""

    def __init__(self, inner, detector: RaceDetector, name: str = "lock") -> None:
        self._inner = inner
        self._det = detector
        self._name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # the shim must be transparent: it forwards exactly the
        # caller's blocking/timeout semantics, untimed included
        if timeout == -1:
            ok = self._inner.acquire(blocking)  # repro: allow(blocking-call)
        else:
            ok = self._inner.acquire(blocking, timeout)  # repro: allow(blocking-call)
        if ok:
            self._det.on_acquire(id(self._inner), self._name)
        return ok

    def release(self) -> None:
        self._det.on_release(id(self._inner))
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        # ``with lock:`` has no timeout channel to forward
        return self.acquire()  # repro: allow(blocking-call)

    def __exit__(self, *exc) -> None:
        self.release()


class TrackedQueue:
    """Channel shim: put/get transfer vector clocks (message-passing
    happens-before), everything else delegates."""

    def __init__(self, inner, detector: RaceDetector, name: str = "queue") -> None:
        self._inner = inner
        self._det = detector
        self._name = name

    def put(self, item, *args, **kwargs) -> None:
        self._det.channel_send(id(self._inner))
        self._inner.put(item, *args, **kwargs)

    def get(self, *args, **kwargs):
        item = self._inner.get(*args, **kwargs)
        self._det.channel_recv(id(self._inner))
        return item

    def __getattr__(self, name):
        return getattr(self._inner, name)


@contextmanager
def patch_locks(detector: RaceDetector):
    """Every ``threading.Lock()`` created inside the scope is tracked.

    The blunt instrument for code whose locks are local variables (the
    threaded scheduler's ready-queue lock): run construction+execution
    under this context and all its synchronization feeds the detector's
    vector clocks.
    """
    orig = threading.Lock

    def tracked_lock():
        return TrackedLock(orig(), detector, "patched.Lock")

    threading.Lock = tracked_lock
    try:
        yield detector
    finally:
        threading.Lock = orig


# ----------------------------------------------------------------------
# subject-specific shims
# ----------------------------------------------------------------------
def _instrument_node(node, detector: RaceDetector) -> None:
    """Monitor one CommNode's test/claim lifecycle as a shared location."""
    detector.pin(node)
    location = f"commnode:{id(node)}"
    orig_test = node.test
    orig_finish = node.finish_communication

    def test():
        detector.on_read(location)
        return orig_test()

    def finish_communication(ledger=None):
        detector.on_write(location)
        return orig_finish(ledger)

    node.test = test
    node.finish_communication = finish_communication


def instrument_comm_pool(pool, detector: RaceDetector):
    """Shim a request pool: its locks become tracked, every inserted
    record becomes a monitored location. Works on
    :class:`~repro.comm.pool_locked.LockedVectorCommPool` and
    :class:`~repro.comm.pool_waitfree.WaitFreeCommPool`.
    """
    detector.pin(pool)
    if hasattr(pool, "_slots"):  # wait-free pool: per-slot claim flags
        def wrap_slots():
            for slot in pool._slots:
                if not isinstance(slot.flag, TrackedLock):
                    slot.flag = TrackedLock(slot.flag, detector, "slot.flag")

        wrap_slots()
        orig_grow = pool._grow

        def grow():
            orig_grow()
            wrap_slots()

        pool._grow = grow
    if hasattr(pool, "_lock") and not isinstance(pool._lock, TrackedLock):
        pool._lock = TrackedLock(pool._lock, detector, "pool.lock")

    orig_insert = pool.insert

    def insert(node):
        _instrument_node(node, detector)
        orig_insert(node)

    pool.insert = insert
    return pool


def instrument_datawarehouse(dw, detector: RaceDetector):
    """Monitor per-(label, patch) puts and region reads."""
    detector.pin(dw)
    orig_put = dw.put
    orig_get_region = dw.get_region

    def put(label, patch_id, var):
        detector.on_write(f"dw:{label.name}@p{patch_id}")
        return orig_put(label, patch_id, var)

    def get_region(label, level, region, default=None):
        for patch in level.patches_intersecting(region):
            detector.on_read(f"dw:{label.name}@p{patch.patch_id}")
        return orig_get_region(label, level, region, default=default)

    dw.put = put
    dw.get_region = get_region
    return dw


def instrument_worker_pool(pool, detector: RaceDetector):
    """Shim a service WorkerPool: shard queues become happens-before
    channels and each dispatched batch a monitored location, so a batch
    mutated by the dispatcher after hand-off would be flagged."""
    detector.pin(pool)
    pool._queues = [
        TrackedQueue(q, detector, f"shard-{i}")
        for i, q in enumerate(pool._queues)
    ]
    orig_dispatch = pool.dispatch
    orig_run_batch = pool._run_batch

    def dispatch(batch):
        detector.pin(batch)
        detector.on_write(f"batch:{id(batch)}")
        orig_dispatch(batch)

    def run_batch(worker_id, batch):
        detector.on_read(f"batch:{id(batch)}")
        return orig_run_batch(worker_id, batch)

    pool.dispatch = dispatch
    pool._run_batch = run_batch
    return pool


# ----------------------------------------------------------------------
# the contended drive used by the CLI and the regression tests
# ----------------------------------------------------------------------
def drive_pool_contended(
    kind: str,
    num_threads: int = 4,
    num_messages: int = 32,
    unpack_delay: float = 2e-3,
    detector: Optional[RaceDetector] = None,
) -> RaceDetector:
    """Drive an instrumented request pool with concurrent processors.

    All messages are completed up front and the worker threads released
    together through a barrier, so every thread's completion scan
    overlaps every other's — the widest possible racing window. The
    verdict is deterministic by construction: the legacy racy scan
    touches records from multiple threads with an empty lockset (always
    flagged), while the safe and wait-free pools guard every touch with
    the pool lock / slot flag (never flagged).
    """
    import time

    from repro.comm.driver import make_pool
    from repro.comm.request import CommNode
    from repro.runtime.mpi import SimMPI

    det = detector if detector is not None else RaceDetector()
    pool = make_pool(kind, unpack_delay=unpack_delay)
    instrument_comm_pool(pool, det)

    fabric = SimMPI(2)
    send = fabric.comm(0)
    recv = fabric.comm(1)
    payload = bytes(256)
    for i in range(num_messages):
        send.isend(payload, dest=1, tag=i)
        req = recv.irecv(source=0, tag=i)
        pool.insert(CommNode(req, nbytes=256))

    barrier = threading.Barrier(num_threads)

    def worker() -> None:
        # the drive wants maximal overlap: all workers release at once
        barrier.wait()  # repro: allow(blocking-call)
        while pool.processed < num_messages:
            if pool.process_ready() == 0:
                time.sleep(0)

    threads = [
        threading.Thread(target=worker, name=f"race-worker-{t}")
        for t in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    fabric.shutdown()
    return det
