"""Structured findings shared by every ``repro check`` analyzer.

A :class:`CheckFinding` is one defect at one place — a (file, line,
rule, severity, message) record the linter, the graph validator, the
race detector, and the allocator checker all emit, so one report
format (text or JSON) and one CI gate cover all four. Deliberate
exceptions are written down next to the code they excuse with an
inline ``# repro: allow(<rule>)`` comment, which the analyzers honor
and count instead of silently dropping.
"""

from __future__ import annotations

import json
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

#: finding severities, in gate order
SEVERITIES = ("error", "warning")

#: inline suppression: ``# repro: allow(rule-a, rule-b)`` or ``allow(*)``
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


@dataclass
class CheckFinding:
    """One defect: where, which rule, how bad, and what happened."""

    rule: str
    severity: str
    message: str
    file: str = "<runtime>"
    line: int = 0
    check: str = ""  #: originating analyzer: lint|graph|races|leaks

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, "
                             f"got {self.severity!r}")

    def format(self) -> str:
        where = f"{self.file}:{self.line}" if self.line else self.file
        return f"{where}: {self.severity}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "check": self.check,
        }


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number (1-based) -> rule names allowed on that line.

    The wildcard ``*`` allows every rule on its line.
    """
    out: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = SUPPRESS_RE.search(text)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            if rules:
                out[lineno] = rules
    return out


def is_suppressed(
    finding: CheckFinding, suppressions: Dict[int, Set[str]]
) -> bool:
    allowed = suppressions.get(finding.line, set())
    return finding.rule in allowed or "*" in allowed


def call_site(skip_substrings: Iterable[str] = ("repro/check/",)) -> tuple:
    """(file, line) of the nearest caller outside the check package.

    Runtime analyzers (races, leaks) attribute findings to the code
    that performed the offending access, not to the shim observing it.
    """
    frame = sys._getframe(1)
    while frame is not None:
        fname = frame.f_code.co_filename.replace("\\", "/")
        if not any(s in fname for s in skip_substrings):
            return fname, frame.f_lineno
        frame = frame.f_back
    return "<unknown>", 0


@dataclass
class CheckReport:
    """All findings of one ``repro check`` invocation."""

    findings: List[CheckFinding] = field(default_factory=list)
    suppressed: int = 0
    meta: Dict[str, object] = field(default_factory=dict)

    def extend(self, findings: Iterable[CheckFinding], check: str = "") -> None:
        for f in findings:
            if check and not f.check:
                f.check = check
            self.findings.append(f)

    def merge(self, other: "CheckReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed += other.suppressed
        self.meta.update(other.meta)

    @property
    def errors(self) -> List[CheckFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[CheckFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def exit_code(self) -> int:
        """The CI gate: any non-suppressed finding fails the check."""
        return 1 if self.findings else 0

    def by_check(self) -> Dict[str, List[CheckFinding]]:
        out: Dict[str, List[CheckFinding]] = {}
        for f in self.findings:
            out.setdefault(f.check or "unknown", []).append(f)
        return out

    def render_text(self) -> str:
        lines: List[str] = []
        for f in sorted(
            self.findings, key=lambda f: (f.check, f.file, f.line, f.rule)
        ):
            lines.append(f.format())
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({len(self.errors)} error(s), {len(self.warnings)} warning(s)), "
            f"{self.suppressed} suppressed"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "counts": {
                "total": len(self.findings),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": self.suppressed,
            },
            "meta": self.meta,
        }

    def write_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
