"""Explicit-state model checking of the spool claim/re-home protocol.

The fabric's zero-loss story (PR 7) rests on a small distributed
protocol: the router moves request tickets from a front spool into
per-shard inboxes (with bounded work stealing), a shard takes
ownership by atomically renaming the ticket into its ``claimed/``
directory, journals the request spec, solves, publishes the result,
forgets the journal entry, and only then settles (unlinks) the claim;
a supervisor detects dead shards and re-homes their claims, inbox
backlog, and journal entries onto the surviving HRW owner. The kill
drills sample a handful of interleavings of that protocol; this
module enumerates *all* of them, with a crash point after every
transition, over a small abstract model.

**The abstraction.** Tickets and shards are small integers. The only
filesystem primitive is the atomic rename: every transition moves a
ticket between abstract locations (``front``, ``inbox(i)``, claimed,
published) in one indivisible step, exactly as ``os.replace`` does on
the real spool. The result cache is a global set of solved
fingerprints (the content-addressed store: respawn-under-same-id keeps
a shard's cache, and re-homed journal replay warms the survivor's).
The journal is spec-level — replaying an entry recomputes and caches
the *solve*, but cannot reconstruct the ticket, so it can never
publish; the claim file is the only ticket-level durable trace. That
asymmetry is the load-bearing design fact this checker verifies: the
``no_journal`` variant must still be zero-loss (the claim alone
carries the request through a crash), while ``early_settle`` — drop
the claim before the result is published — must lose a request.

**Processes and transitions** (guards in parentheses):

* router  — ``route t`` (t at front); ``steal s<i> t`` (t in another
  inbox, budget left)
* shard i — ``claim`` (t in inbox(i)); ``journal`` (holds claim, not
  journaled); ``solve`` (claimed + journaled; computes unless cached,
  then publishes); ``forget`` (journaled, published); ``settle``
  (claimed, published, journal forgotten)
* crash   — ``crash s<i>`` (budget left); the shard simply stops —
  its claims, journal entries, and inbox stay on disk for the
  supervisor
* supervisor — ``recover s<i>`` (i dead): release claims back to the
  inbox, re-home inbox backlog to the surviving HRW owner, replay
  unpublished journal entries (warm the cache), drop published ones,
  respawn i

**Invariants**, checked at every reachable state:

========================================= =================================
rule                                      meaning
========================================= =================================
protocol-double-claim                     no two shards hold the same
                                          ticket's claim
protocol-double-solve                     each ticket computed at most
                                          once and published at most
                                          once, crashes included
protocol-journal-outlives-claim           an alive shard never holds a
                                          journal entry for an
                                          unpublished ticket it has no
                                          claim on
protocol-lost-request                     at quiescence (nothing enabled,
                                          fleet alive) every ticket has
                                          been published
========================================= =================================

Search is breadth-first over canonical state tuples, so the reported
counterexample trace is *minimal in steps*; state tuples contain only
ints/bools, so exploration order — and therefore the rendered trace —
is byte-identical across runs and processes.

**Defect knobs** (``defect=`` on :class:`SpoolModel`) re-introduce the
bugs the protocol's ordering exists to prevent; each must produce a
violation (the checker's self-test):

* ``early_settle``        — settle no longer waits for publication
  (models ``_settle_claim`` before ``write_result``) → lost request
* ``journal_before_claim`` — journal while the ticket is still in the
  inbox, before the claim rename → journal-outlives-claim
* ``copy_claim``          — claim by copy-then-delete instead of one
  rename → double claim via a steal in the window
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.findings import CheckFinding

#: rule catalog: name -> (severity, one-line description)
RULES = {
    "protocol-double-claim": (
        "error",
        "two shards hold the same ticket's claim (claim rename not "
        "exactly-one-winner)",
    ),
    "protocol-double-solve": (
        "error",
        "a ticket computed twice or published twice (exactly-once "
        "broken)",
    ),
    "protocol-journal-outlives-claim": (
        "error",
        "an alive shard holds a journal entry for an unpublished ticket "
        "it has no claim on (claim must outlive journal)",
    ),
    "protocol-lost-request": (
        "error",
        "a quiescent fleet left a ticket unpublished (request stranded "
        "or lost)",
    ),
}

#: defect knobs and the rule each must trip (the inversion self-test)
DEFECT_RULES = {
    "early_settle": "protocol-lost-request",
    "journal_before_claim": "protocol-journal-outlives-claim",
    "copy_claim": "protocol-double-claim",
}

# location encoding in ``locs``: FRONT, inbox(i) = 1 + i, GONE
FRONT = 0
GONE = -1


def _inbox(i: int) -> int:
    return 1 + i


class SpoolModel:
    """The claim/re-home protocol over T tickets and S shards.

    States are canonical tuples ``(locs, claims, journal, solves,
    publishes, cache, alive, crashes_left, steals_left)`` —
    per-ticket claim/journal holders are sorted tuples of shard ids so
    equal states always hash equal.
    """

    def __init__(self, tickets: int = 2, shards: int = 2,
                 crash_budget: int = 1, steal_budget: int = 1,
                 defect: Optional[str] = None) -> None:
        if defect is not None and defect not in DEFECT_RULES and \
                defect != "no_journal":
            raise ValueError(f"unknown defect {defect!r}")
        self.tickets = int(tickets)
        self.shards = int(shards)
        self.crash_budget = int(crash_budget)
        self.steal_budget = int(steal_budget)
        self.defect = defect

    # -- helpers --------------------------------------------------------
    def owner(self, t: int) -> int:
        """The ticket's HRW home shard (abstracted to t mod S)."""
        return t % self.shards

    def survivor(self, t: int, alive: Tuple[bool, ...]) -> Optional[int]:
        """The surviving HRW owner: first alive shard scanning from
        the home position (deterministic, stable under fleet resize)."""
        for k in range(self.shards):
            i = (self.owner(t) + k) % self.shards
            if alive[i]:
                return i
        return None

    def initial(self) -> tuple:
        T, S = self.tickets, self.shards
        return (
            (FRONT,) * T,            # locs
            ((),) * T,               # claims: sorted holder ids per ticket
            ((),) * T,               # journal: sorted holder ids per ticket
            (0,) * T,                # solves (computes)
            (0,) * T,                # publishes
            (False,) * T,            # cache
            (True,) * S,             # alive
            self.crash_budget,
            self.steal_budget,
        )

    # -- transition relation -------------------------------------------
    def successors(self, state: tuple) -> List[Tuple[str, tuple]]:
        (locs, claims, journal, solves, publishes, cache, alive,
         crashes_left, steals_left) = state
        T, S = self.tickets, self.shards
        defect = self.defect
        out: List[Tuple[str, tuple]] = []

        def repl(seq, idx, value):
            return seq[:idx] + (value,) + seq[idx + 1:]

        def add_holder(holders, t, i):
            return repl(holders, t, tuple(sorted(holders[t] + (i,))))

        def drop_holder(holders, t, i):
            return repl(holders, t,
                        tuple(h for h in holders[t] if h != i))

        # router: route front tickets to their home inbox
        for t in range(T):
            if locs[t] == FRONT:
                out.append((
                    f"route t{t} -> s{self.owner(t)}",
                    (repl(locs, t, _inbox(self.owner(t))), claims, journal,
                     solves, publishes, cache, alive,
                     crashes_left, steals_left),
                ))

        # shards: claim / journal / solve / forget / settle
        for i in range(S):
            if not alive[i]:
                continue
            for t in range(T):
                in_my_inbox = locs[t] == _inbox(i)
                holds_claim = i in claims[t]
                holds_journal = i in journal[t]

                # claim: one atomic rename inbox -> claimed/<i>/ ...
                if defect != "copy_claim":
                    if in_my_inbox:
                        out.append((
                            f"claim s{i} t{t}",
                            (repl(locs, t, GONE), add_holder(claims, t, i),
                             journal, solves, publishes, cache, alive,
                             crashes_left, steals_left),
                        ))
                else:
                    # ... or the seeded defect: copy, then delete, as
                    # two steps — the window a second claimer fits in
                    if in_my_inbox and not holds_claim:
                        out.append((
                            f"claim-copy s{i} t{t}",
                            (locs, add_holder(claims, t, i), journal,
                             solves, publishes, cache, alive,
                             crashes_left, steals_left),
                        ))
                    if in_my_inbox and holds_claim:
                        out.append((
                            f"claim-erase s{i} t{t}",
                            (repl(locs, t, GONE), claims, journal, solves,
                             publishes, cache, alive,
                             crashes_left, steals_left),
                        ))

                # journal: record the spec after taking ownership
                if defect != "no_journal":
                    if defect == "journal_before_claim":
                        can_journal = in_my_inbox and not holds_journal
                    else:
                        can_journal = holds_claim and not holds_journal
                    if can_journal:
                        out.append((
                            f"journal s{i} t{t}",
                            (locs, claims, add_holder(journal, t, i),
                             solves, publishes, cache, alive,
                             crashes_left, steals_left),
                        ))

                # solve + publish: compute (unless cached), then one
                # atomic result publication
                need_journal = defect != "no_journal"
                if (holds_claim and publishes[t] == 0
                        and (holds_journal or not need_journal)):
                    new_solves = solves if cache[t] else repl(
                        solves, t, solves[t] + 1)
                    out.append((
                        f"solve s{i} t{t}",
                        (locs, claims, journal, new_solves,
                         repl(publishes, t, publishes[t] + 1),
                         repl(cache, t, True), alive,
                         crashes_left, steals_left),
                    ))

                # forget: journal entry dropped once the result exists
                if holds_journal and publishes[t] > 0:
                    out.append((
                        f"forget s{i} t{t}",
                        (locs, claims, drop_holder(journal, t, i), solves,
                         publishes, cache, alive, crashes_left,
                         steals_left),
                    ))

                # settle: the claim is unlinked last
                if defect == "early_settle":
                    can_settle = holds_claim and not holds_journal
                else:
                    can_settle = (holds_claim and publishes[t] > 0
                                  and not holds_journal)
                if can_settle:
                    out.append((
                        f"settle s{i} t{t}",
                        (locs, drop_holder(claims, t, i), journal, solves,
                         publishes, cache, alive, crashes_left,
                         steals_left),
                    ))

        # router: bounded work stealing of unclaimed inbox tickets
        if steals_left > 0:
            for i in range(S):
                if not alive[i]:
                    continue
                for t in range(T):
                    if locs[t] > FRONT and locs[t] != _inbox(i):
                        out.append((
                            f"steal s{i} t{t}",
                            (repl(locs, t, _inbox(i)), claims, journal,
                             solves, publishes, cache, alive,
                             crashes_left, steals_left - 1),
                        ))

        # crash: a crash point after every transition, by construction
        if crashes_left > 0:
            for i in range(S):
                if not alive[i]:
                    continue
                out.append((
                    f"crash s{i}",
                    (locs, claims, journal, solves, publishes, cache,
                     repl(alive, i, False), crashes_left - 1,
                     steals_left),
                ))

        # supervisor: atomic re-home + replay + respawn
        for i in range(S):
            if alive[i]:
                continue
            new_locs = list(locs)
            new_claims = claims
            new_journal = journal
            new_solves = list(solves)
            new_cache = list(cache)
            # release claims back into the dead shard's inbox
            for t in range(T):
                if i in claims[t]:
                    new_claims = drop_holder(new_claims, t, i)
                    new_locs[t] = _inbox(i)
            # re-home the inbox backlog onto the surviving HRW owner
            for t in range(T):
                if new_locs[t] == _inbox(i):
                    s = self.survivor(t, alive)
                    if s is not None:
                        new_locs[t] = _inbox(s)
            # journal entries: published ones are forgotten; the rest
            # replay on the survivor — the spec recomputes and warms
            # the cache, but a fingerprint cannot publish a ticket
            for t in range(T):
                if i in new_journal[t]:
                    new_journal = drop_holder(new_journal, t, i)
                    if publishes[t] == 0 and not new_cache[t]:
                        new_solves[t] += 1
                        new_cache[t] = True
            out.append((
                f"recover s{i}",
                (tuple(new_locs), new_claims, new_journal,
                 tuple(new_solves), publishes, tuple(new_cache),
                 repl(alive, i, True), crashes_left, steals_left),
            ))

        return out

    # -- invariants -----------------------------------------------------
    def violation(self, state: tuple) -> Optional[Tuple[str, str]]:
        """(rule, message) for the first invariant this state breaks."""
        (locs, claims, journal, solves, publishes, cache, alive,
         _crashes_left, _steals_left) = state
        for t in range(self.tickets):
            if len(claims[t]) > 1:
                return (
                    "protocol-double-claim",
                    f"ticket t{t} claimed by shards "
                    f"{list(claims[t])} simultaneously",
                )
            if solves[t] > 1:
                return (
                    "protocol-double-solve",
                    f"ticket t{t} computed {solves[t]} times",
                )
            if publishes[t] > 1:
                return (
                    "protocol-double-solve",
                    f"ticket t{t} published {publishes[t]} times",
                )
            if publishes[t] == 0:
                for i in journal[t]:
                    if alive[i] and i not in claims[t]:
                        return (
                            "protocol-journal-outlives-claim",
                            f"alive shard s{i} holds a journal entry for "
                            f"unpublished ticket t{t} without its claim",
                        )
        return None

    def terminal_violation(self, state: tuple) -> Optional[Tuple[str, str]]:
        """Zero-loss at quiescence: every ticket must be published."""
        publishes = state[4]
        for t in range(self.tickets):
            if publishes[t] == 0:
                return (
                    "protocol-lost-request",
                    f"fleet quiescent but ticket t{t} was never "
                    f"published (request lost)",
                )
        return None

    def config(self) -> dict:
        return {
            "tickets": self.tickets,
            "shards": self.shards,
            "crash_budget": self.crash_budget,
            "steal_budget": self.steal_budget,
            "defect": self.defect,
        }


# ----------------------------------------------------------------------
# the checker
# ----------------------------------------------------------------------
@dataclass
class ProtocolResult:
    """Outcome of one exhaustive search."""

    ok: bool
    rule: str = ""
    message: str = ""
    trace: Tuple[str, ...] = ()
    states: int = 0            #: distinct states explored
    transitions: int = 0       #: transitions fired (edges)
    terminals: int = 0         #: quiescent states seen
    config: dict = field(default_factory=dict)

    def format_trace(self) -> str:
        """The counterexample as numbered steps (empty when clean)."""
        if not self.trace:
            return ""
        lines = [f"  {n + 1:>2}. {step}" for n, step in
                 enumerate(self.trace)]
        lines.append(f"  => {self.rule}: {self.message}")
        return "\n".join(lines)

    def render(self) -> str:
        cfg = self.config
        head = (
            f"spool protocol model: {cfg.get('tickets')} ticket(s), "
            f"{cfg.get('shards')} shard(s), crash budget "
            f"{cfg.get('crash_budget')}, steal budget "
            f"{cfg.get('steal_budget')}"
            + (f", defect={cfg.get('defect')}" if cfg.get("defect")
               else "")
        )
        body = (
            f"{self.states} states, {self.transitions} transitions, "
            f"{self.terminals} quiescent"
        )
        if self.ok:
            return f"{head}\n  CLEAN: {body}"
        return (f"{head}\n  VIOLATION after {len(self.trace)} step(s) "
                f"({body}):\n{self.format_trace()}")

    def to_finding(self, model_name: str) -> CheckFinding:
        return CheckFinding(
            rule=self.rule,
            severity=RULES[self.rule][0],
            message=(f"{self.message} [{len(self.trace)}-step trace: "
                     + "; ".join(self.trace) + "]"),
            file=f"<model:{model_name}>",
            line=0,
            check="protocol",
        )


def check_model(model: SpoolModel,
                max_states: int = 5_000_000) -> ProtocolResult:
    """Exhaustive BFS over the model's reachable states.

    Breadth-first order makes any counterexample minimal in steps;
    the all-int state encoding makes exploration order — and the
    trace — deterministic across runs.
    """
    init = model.initial()
    parent: Dict[tuple, Optional[Tuple[tuple, str]]] = {init: None}
    queue: deque = deque([init])
    states = 0
    transitions = 0
    terminals = 0

    def trace_to(state: tuple) -> Tuple[str, ...]:
        steps: List[str] = []
        cur: Optional[tuple] = state
        while parent[cur] is not None:
            prev, label = parent[cur]  # type: ignore[misc]
            steps.append(label)
            cur = prev
        return tuple(reversed(steps))

    while queue:
        state = queue.popleft()
        states += 1
        viol = model.violation(state)
        if viol is not None:
            rule, message = viol
            return ProtocolResult(
                ok=False, rule=rule, message=message,
                trace=trace_to(state), states=states,
                transitions=transitions, terminals=terminals,
                config=model.config(),
            )
        succ = model.successors(state)
        transitions += len(succ)
        alive = state[6]
        if all(alive) and all(lbl.startswith("crash") for lbl, _ in succ):
            terminals += 1
            viol = model.terminal_violation(state)
            if viol is not None:
                rule, message = viol
                return ProtocolResult(
                    ok=False, rule=rule, message=message,
                    trace=trace_to(state), states=states,
                    transitions=transitions, terminals=terminals,
                    config=model.config(),
                )
        for label, nxt in succ:
            if nxt not in parent:
                if len(parent) >= max_states:
                    raise RuntimeError(
                        f"state space exceeded {max_states} states "
                        f"({model.config()})"
                    )
                parent[nxt] = (state, label)
                queue.append(nxt)

    return ProtocolResult(
        ok=True, states=states, transitions=transitions,
        terminals=terminals, config=model.config(),
    )


# ----------------------------------------------------------------------
# suite entry points (used by the CLI and CI)
# ----------------------------------------------------------------------
def verify_protocol(shards: int = 2, tickets: int = 2,
                    crash_budget: int = 1, steal_budget: int = 1
                    ) -> List[Tuple[str, ProtocolResult]]:
    """The clean-tree run: the correct protocol, plus the no-journal
    variant (which must *also* be zero-loss — the claim file, not the
    journal, is the request's durable trace)."""
    out = []
    for name, defect in (("spool", None), ("spool-no-journal",
                                           "no_journal")):
        model = SpoolModel(tickets=tickets, shards=shards,
                           crash_budget=crash_budget,
                           steal_budget=steal_budget, defect=defect)
        out.append((name, check_model(model)))
    return out


def run_protocol_fixture(defect: str, tickets: int = 2, shards: int = 2,
                         crash_budget: int = 1, steal_budget: int = 1
                         ) -> ProtocolResult:
    """Check one seeded-defect variant; its rule must fire."""
    model = SpoolModel(tickets=tickets, shards=shards,
                       crash_budget=crash_budget,
                       steal_budget=steal_budget, defect=defect)
    return check_model(model)
