"""The project linter: repo-specific AST rules.

Generic linters cannot know that this codebase routes all randomness
through :mod:`repro.util.rng` (decomposition-independent streams), that
its comm/service threads must never block without a timeout (the
paper's Section IV deadlock discipline), or that multi-instance
components must label their metric series. These rules encode that
house style:

==================  ========  ====================================================
rule                severity  what it flags
==================  ========  ====================================================
unseeded-rng        error     global-state ``random.*`` / legacy ``np.random.*``
                              calls, and ``default_rng()`` / ``Random()`` with no
                              seed, outside ``util/rng.py``
bare-except         error     ``except:`` with no exception type
overbroad-except    warning   ``except BaseException``, or ``except Exception``
                              whose body only ``pass``es
blocking-call       warning   ``.get()`` / ``.acquire()`` / ``.wait()`` with no
                              timeout in comm, service, memory, resilience,
                              fabric, check, and radiation/spectral code
                              (plus ``perf/tsdb.py``)
mutable-default     error     ``def f(x=[])`` and friends
unlabeled-metric    warning   ``counter()/gauge()/histogram()`` with no label
                              kwargs in multi-instance components (comm, memory,
                              dw)
==================  ========  ====================================================

Deliberate violations carry an inline ``# repro: allow(<rule>)``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.check.findings import (
    CheckFinding,
    is_suppressed,
    parse_suppressions,
)

#: rule catalog: name -> (severity, one-line description)
RULES = {
    "unseeded-rng": (
        "error",
        "global-state random.* / legacy np.random.*, or default_rng()/"
        "Random() with no seed, outside util/rng.py",
    ),
    "bare-except": (
        "error",
        "except: with no exception type (catches SystemExit/"
        "KeyboardInterrupt)",
    ),
    "overbroad-except": (
        "warning",
        "except BaseException, or except Exception whose body only "
        "passes",
    ),
    "blocking-call": (
        "warning",
        ".get()/.acquire()/.wait() with no timeout in comm, service, "
        "memory, resilience, fabric, check, radiation/spectral, or "
        "perf/tsdb.py",
    ),
    "mutable-default": (
        "error",
        "mutable default argument shared across calls",
    ),
    "unlabeled-metric": (
        "warning",
        "counter()/gauge()/histogram() with no label kwargs in a "
        "multi-instance component",
    ),
    "syntax-error": (
        "error",
        "source file does not parse",
    ),
}

#: module-level functions on ``random`` that mutate the hidden global state
GLOBAL_RANDOM_FNS = {
    "random", "seed", "randint", "randrange", "uniform", "shuffle",
    "choice", "choices", "sample", "gauss", "normalvariate",
    "expovariate", "betavariate", "getrandbits", "triangular",
}

#: legacy ``np.random`` global-state API (the pre-Generator interface)
NP_GLOBAL_RANDOM_FNS = {
    "seed", "rand", "randn", "random", "random_sample", "ranf",
    "randint", "uniform", "normal", "choice", "shuffle", "permutation",
    "standard_normal", "exponential", "poisson", "gamma", "beta",
}

#: path fragments where blocking without a timeout is a finding
#: (resilience drains comm fabrics and restores mid-failure, the
#: fabric babysits shard processes, the checkers themselves drive
#: threads/locks, and spectral solves run inside serve/fabric workers —
#: all get the same no-untimed-blocking discipline as the layers they
#: touch)
BLOCKING_SCOPE = ("comm", "service", "memory", "resilience", "fabric",
                  "check", "spectral")

#: individual files under the same discipline whose parent package is
#: not (tsdb's collector thread runs inside the serve loop; the
#: detector bank and doctor run on that same cadence / control loop)
BLOCKING_SCOPE_FILES = ("perf/tsdb.py", "perf/detect.py", "perf/doctor.py")

#: path fragments where metric series must carry labels
METRIC_LABEL_SCOPE = ("comm", "memory", "dw")

METRIC_FACTORIES = {"counter", "gauge", "histogram"}

#: files exempt from unseeded-rng (the sanctioned RNG home)
RNG_HOME = ("util/rng.py",)


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """('np', 'random', 'seed') for ``np.random.seed``; None if dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        chain = _attr_chain(node.func)
        if chain and chain[-1] in ("list", "dict", "set"):
            return True
    return False


class _RuleVisitor(ast.NodeVisitor):
    def __init__(self, path: str, scope_parts: Set[str],
                 blocking_in_scope: Optional[bool] = None) -> None:
        self.path = path
        self.scope = scope_parts
        if blocking_in_scope is None:
            blocking_in_scope = bool(
                scope_parts.intersection(BLOCKING_SCOPE))
        self.blocking_in_scope = blocking_in_scope
        self.findings: List[CheckFinding] = []

    def _add(self, rule: str, severity: str, message: str, node: ast.AST) -> None:
        self.findings.append(
            CheckFinding(
                rule=rule,
                severity=severity,
                message=message,
                file=self.path,
                line=getattr(node, "lineno", 0),
                check="lint",
            )
        )

    # -- unseeded-rng ---------------------------------------------------
    def _check_rng(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain is None:
            return
        if chain[0] == "random" and len(chain) == 2:
            fn = chain[1]
            if fn in GLOBAL_RANDOM_FNS:
                self._add(
                    "unseeded-rng", "error",
                    f"global-state random.{fn}() breaks decomposition-"
                    f"independent replay; use repro.util.rng streams",
                    node,
                )
            elif fn == "Random" and not node.args and not node.keywords:
                self._add(
                    "unseeded-rng", "error",
                    "random.Random() with no seed; pass an explicit seed",
                    node,
                )
        elif chain[0] in ("np", "numpy") and len(chain) == 3 and chain[1] == "random":
            fn = chain[2]
            if fn in NP_GLOBAL_RANDOM_FNS:
                self._add(
                    "unseeded-rng", "error",
                    f"legacy np.random.{fn}() uses hidden global state; "
                    f"use repro.util.rng.spawn_stream",
                    node,
                )
            elif fn == "default_rng" and not node.args and not node.keywords:
                self._add(
                    "unseeded-rng", "error",
                    "np.random.default_rng() with no seed draws OS entropy; "
                    "pass an explicit seed",
                    node,
                )

    # -- blocking-call --------------------------------------------------
    def _check_blocking(self, node: ast.Call) -> None:
        if not self.blocking_in_scope:
            return
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        kwargs = {kw.arg for kw in node.keywords if kw.arg is not None}
        if attr in ("get", "wait") and not node.args and not kwargs:
            self._add(
                "blocking-call", "warning",
                f".{attr}() with no timeout can block a worker thread "
                f"forever; pass timeout= and handle the miss",
                node,
            )
        elif attr == "acquire":
            if "timeout" in kwargs:
                return
            blocking_false = any(
                kw.arg == "blocking"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords
            ) or (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is False
            )
            if not blocking_false:
                self._add(
                    "blocking-call", "warning",
                    ".acquire() with no timeout can deadlock under "
                    "contention; use try-acquire or a timeout",
                    node,
                )

    # -- unlabeled-metric -----------------------------------------------
    def _check_metric(self, node: ast.Call) -> None:
        if not self.scope.intersection(METRIC_LABEL_SCOPE):
            return
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in METRIC_FACTORIES:
            return
        labels = [kw for kw in node.keywords if kw.arg != "buckets"]
        if not labels:
            self._add(
                "unlabeled-metric", "warning",
                f"{node.func.attr}() series without labels collides across "
                f"instances; label it (pool=, rank=, allocator=, ...)",
                node,
            )

    # -- visitors -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_rng(node)
        self._check_blocking(node)
        self._check_metric(node)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                "bare-except", "error",
                "bare except catches SystemExit/KeyboardInterrupt; name "
                "the exceptions",
                node,
            )
        elif isinstance(node.type, ast.Name):
            body_is_pass = all(isinstance(s, ast.Pass) for s in node.body)
            if node.type.id == "BaseException":
                self._add(
                    "overbroad-except", "warning",
                    "except BaseException swallows interpreter exits; "
                    "catch Exception or narrower",
                    node,
                )
            elif node.type.id == "Exception" and body_is_pass:
                self._add(
                    "overbroad-except", "warning",
                    "except Exception: pass silently swallows every "
                    "failure; narrow it or handle it",
                    node,
                )
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            if _is_mutable_literal(default):
                self._add(
                    "mutable-default", "error",
                    f"mutable default argument on {node.name}() is shared "
                    f"across calls; default to None",
                    default,
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>"
) -> Tuple[List[CheckFinding], int]:
    """Lint one source text. Returns (findings, suppressed_count)."""
    norm = path.replace("\\", "/")
    if any(norm.endswith(home) for home in RNG_HOME):
        return [], 0
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            CheckFinding(
                rule="syntax-error", severity="error",
                message=f"cannot parse: {exc.msg}",
                file=path, line=exc.lineno or 0, check="lint",
            )
        ], 0
    scope_parts = set(Path(norm).parts)
    blocking_in_scope = bool(
        scope_parts.intersection(BLOCKING_SCOPE)
    ) or any(norm.endswith(f) for f in BLOCKING_SCOPE_FILES)
    visitor = _RuleVisitor(norm, scope_parts, blocking_in_scope)
    visitor.visit(tree)
    suppressions = parse_suppressions(source)
    kept: List[CheckFinding] = []
    suppressed = 0
    for f in visitor.findings:
        if is_suppressed(f, suppressions):
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    out: List[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.extend(
                f for f in sorted(path.rglob("*.py"))
                if "__pycache__" not in f.parts
            )
        elif path.suffix == ".py":
            out.append(path)
    return out


def lint_paths(
    paths: Iterable[str], root: Optional[Path] = None
) -> Tuple[List[CheckFinding], int, int]:
    """Lint every ``.py`` under ``paths``.

    Returns (findings, suppressed_count, files_scanned); file names in
    findings are relative to ``root`` when given.
    """
    findings: List[CheckFinding] = []
    suppressed = 0
    files = iter_python_files(paths)
    for f in files:
        rel = f
        if root is not None:
            try:
                rel = f.relative_to(root)
            except ValueError:
                rel = f
        file_findings, file_suppressed = lint_source(
            f.read_text(encoding="utf-8"), str(rel)
        )
        findings.extend(file_findings)
        suppressed += file_suppressed
    return findings, suppressed, len(files)
