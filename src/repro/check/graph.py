"""Static task-graph validation.

The schedulers trust the compiled graph blindly: a variable consumed
with no producer surfaces as a DataWarehouse miss mid-execution, an
unordered write-write pair surfaces as a nondeterministic
double-compute, and a ghost message that misses its consumer's patch
silently ships bytes nobody reads. All three are decidable from the
declarations alone, so this module decides them — standalone via
``python -m repro check graph``, and at every
:meth:`~repro.runtime.taskgraph.TaskGraph.compile` (error-severity
findings abort compilation).

Two entry points:

* :func:`validate_taskgraph` — declaration-level checks on an
  uncompiled :class:`~repro.runtime.taskgraph.TaskGraph` (dangling
  consumers, unordered write-write pairs);
* :func:`validate_compiled` — structural checks on a
  :class:`~repro.runtime.taskgraph.CompiledGraph` (ghost-message
  regions, message endpoints).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.check.findings import CheckFinding
from repro.dw.label import VarKind

#: rule catalog: name -> (severity, one-line description)
RULES = {
    "graph-empty": (
        "error",
        "task graph has no tasks",
    ),
    "graph-dangling-consumer": (
        "error",
        "a task requires a variable no task computes",
    ),
    "graph-write-write": (
        "error",
        "two tasks compute the same variable with no ordering between "
        "them",
    ),
    "graph-ghost-orphan": (
        "error",
        "a ghost-exchange message with no producing or consuming task",
    ),
    "graph-ghost-region": (
        "error",
        "a ghost region not covered by any exchange message",
    ),
}


def _finding(rule: str, message: str, severity: str = "error") -> CheckFinding:
    return CheckFinding(
        rule=rule, severity=severity, message=message,
        file="<taskgraph>", line=0, check="graph",
    )


def _entry_producers(entries) -> Tuple[Dict[str, List[int]], Dict[Tuple[str, int], List[int]]]:
    """(CC producers by label name, PER_LEVEL producers by (name, level))
    as entry indices."""
    cc: Dict[str, List[int]] = {}
    per_level: Dict[Tuple[str, int], List[int]] = {}
    for idx, (task, level_index, _per_level_task) in enumerate(entries):
        for comp in task.computes:
            if comp.label.kind is VarKind.PER_LEVEL:
                lvl = comp.level_index if comp.level_index is not None else level_index
                per_level.setdefault((comp.label.name, lvl), []).append(idx)
            elif comp.label.kind is VarKind.CELL_CENTERED:
                cc.setdefault(comp.label.name, []).append(idx)
    return cc, per_level


def _dataflow_reachable(entries, cc, per_level) -> Dict[int, Set[int]]:
    """entry index -> entries reachable through new-DW dataflow edges."""
    succ: Dict[int, Set[int]] = {i: set() for i in range(len(entries))}
    for idx, (task, level_index, _pl) in enumerate(entries):
        for req in task.requires:
            if req.dw != "new":
                continue
            if req.label.kind is VarKind.CELL_CENTERED:
                producers = cc.get(req.label.name, [])
            else:
                producers = per_level.get((req.label.name, req.level_index), [])
            for p in producers:
                if p != idx:
                    succ[p].add(idx)
    # transitive closure (graphs are a handful of task types)
    reach: Dict[int, Set[int]] = {}
    for start in succ:
        seen: Set[int] = set()
        stack = list(succ[start])
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            stack.extend(succ[n])
        reach[start] = seen
    return reach


def validate_taskgraph(tg) -> List[CheckFinding]:
    """Declaration-level validation of an uncompiled TaskGraph."""
    findings: List[CheckFinding] = []
    entries = tg._entries
    if not entries:
        return [_finding("graph-empty", "task graph has no tasks")]
    cc, per_level = _entry_producers(entries)

    # consumers with no producer ---------------------------------------
    for task, level_index, _pl in entries:
        for req in task.requires:
            if req.dw != "new":
                continue  # old-DW data is last timestep's, already present
            if req.label.kind is VarKind.CELL_CENTERED:
                if req.label.name not in cc:
                    findings.append(_finding(
                        "graph-dangling-consumer",
                        f"task {task.name!r} requires CC variable "
                        f"{req.label.name!r} (new DW) that no task computes",
                    ))
            elif req.label.kind is VarKind.PER_LEVEL:
                key = (req.label.name, req.level_index)
                if key not in per_level:
                    findings.append(_finding(
                        "graph-dangling-consumer",
                        f"task {task.name!r} requires level variable "
                        f"{key!r} that no task computes",
                    ))

    # write-write pairs with no ordering edge --------------------------
    reach = _dataflow_reachable(entries, cc, per_level)
    cc_by_level: Dict[Tuple[str, int], List[int]] = {}
    for idx, (task, level_index, _pl) in enumerate(entries):
        for comp in task.computes:
            if comp.label.kind is VarKind.CELL_CENTERED:
                cc_by_level.setdefault((comp.label.name, level_index), []).append(idx)
    for (name, lvl), writers in sorted(cc_by_level.items()):
        for i in range(len(writers)):
            for j in range(i + 1, len(writers)):
                a, b = writers[i], writers[j]
                if b in reach[a] or a in reach[b]:
                    continue  # ordered through dataflow
                findings.append(_finding(
                    "graph-write-write",
                    f"tasks {entries[a][0].name!r} and {entries[b][0].name!r} "
                    f"both compute {name!r} on level {lvl} with no ordering "
                    f"edge between them (nondeterministic double-compute)",
                ))
    # PER_LEVEL double-computes (compile also rejects these)
    for (name, lvl), writers in sorted(per_level.items()):
        if len(writers) > 1:
            names = ", ".join(repr(entries[w][0].name) for w in writers)
            findings.append(_finding(
                "graph-write-write",
                f"level variable ({name!r}, L{lvl}) computed by {names} "
                f"with no ordering",
            ))
    return findings


def validate_compiled(graph) -> List[CheckFinding]:
    """Structural validation of a CompiledGraph's messages."""
    findings: List[CheckFinding] = []
    by_id = {t.dtask_id: t for t in graph.detailed_tasks}
    for msg in graph.messages:
        dst = by_id.get(msg.dst_dtask_id)
        if dst is None:
            findings.append(_finding(
                "graph-ghost-orphan",
                f"message #{msg.msg_id} ({msg.label.name}) targets unknown "
                f"detailed task {msg.dst_dtask_id}",
            ))
            continue
        if not (0 <= msg.src_rank < graph.num_ranks
                and 0 <= msg.dst_rank < graph.num_ranks):
            findings.append(_finding(
                "graph-ghost-orphan",
                f"message #{msg.msg_id} ({msg.label.name}) routes "
                f"{msg.src_rank}->{msg.dst_rank} outside "
                f"[0, {graph.num_ranks})",
            ))
        if msg.label.kind is not VarKind.CELL_CENTERED:
            continue  # level broadcasts carry the whole level domain
        ghost = 0
        for req in dst.task.requires:
            if req.label.name == msg.label.name:
                ghost = max(ghost, req.num_ghost)
        wanted = dst.patch.box.grow(ghost)
        if msg.region.intersect(wanted).empty:
            findings.append(_finding(
                "graph-ghost-region",
                f"message #{msg.msg_id} carries {msg.label.name} region "
                f"{msg.region} that never intersects consumer task "
                f"{dst.task.name!r} patch {dst.patch.patch_id} "
                f"(+{ghost} ghosts)",
            ))
    return findings
