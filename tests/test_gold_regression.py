"""Gold-standard regression tests (Uintah-style nightly comparisons).

Regeneration recipe, should an *intentional* behaviour change land:

    bench = BurnsChristonBenchmark(resolution=16)
    grid = bench.single_level_grid()
    props = bench.properties_for_level(grid.finest_level)
    res = SingleLevelRMCRT(rays_per_cell=32, seed=123).solve(grid, props)
    x, line = bench.centerline(res.divq)   # -> RMCRT_GOLD_16_R32_S123

and equivalently with dom_reference_divq for the DOM gold.
"""

import numpy as np
import pytest

from repro.core import SingleLevelRMCRT
from repro.radiation import BurnsChristonBenchmark, dom_reference_divq
from repro.radiation.gold import DOM_GOLD_16_P8X16, RMCRT_GOLD_16_R32_S123


@pytest.fixture(scope="module")
def setup16():
    bench = BurnsChristonBenchmark(resolution=16)
    grid = bench.single_level_grid()
    props = bench.properties_for_level(grid.finest_level)
    return bench, grid, props


class TestGold:
    def test_rmcrt_centerline_bitwise(self, setup16):
        """Exact reproduction: RNG keying, ray order, and the DDA
        arithmetic are all pinned by this comparison."""
        bench, grid, props = setup16
        res = SingleLevelRMCRT(rays_per_cell=32, seed=123).solve(grid, props)
        _, line = bench.centerline(res.divq)
        np.testing.assert_array_equal(line, RMCRT_GOLD_16_R32_S123)

    def test_dom_centerline_bitwise(self, setup16):
        bench, grid, props = setup16
        divq = dom_reference_divq(props, grid.finest_level.dx,
                                  n_polar=8, n_azimuthal=16)
        _, line = bench.centerline(divq)
        np.testing.assert_allclose(line, DOM_GOLD_16_P8X16, rtol=1e-13)

    def test_golds_agree_with_each_other(self):
        """The Monte Carlo gold sits within its own noise of the
        deterministic gold — the two methods cross-check."""
        rel = np.abs(RMCRT_GOLD_16_R32_S123 - DOM_GOLD_16_P8X16) / DOM_GOLD_16_P8X16
        assert rel.max() < 0.05

    def test_dom_gold_symmetric(self):
        np.testing.assert_allclose(
            DOM_GOLD_16_P8X16, DOM_GOLD_16_P8X16[::-1], rtol=1e-12
        )
