"""Cross-validation tests for the spectral RMCRT tracers.

The load-bearing contracts: the spectral tracer in its gray limit is
bit-identical to the gray solver (same draws, same march, same
reduction), the vectorized and scalar backends agree on genuinely
spectral cases, and the tabulated emissivity actually changes the
answer when walls are hot.
"""

import numpy as np
import pytest

from repro.core.single_level import SingleLevelRMCRT
from repro.radiation.spectral.model import SpectralModel
from repro.radiation.spectral.scenario import SpectralCase, get_scenario
from repro.radiation.spectral.tracer import SpectralResult, SpectralTracer
from repro.util.errors import ReproError
from repro.util.rng import RandomStreams

RAYS = 4
RESOLUTION = 8


def gray_limit_case(**overrides):
    kw = dict(
        name="gray-limit", model=SpectralModel.gray_limit(),
        resolution=RESOLUTION, rays_per_cell=RAYS,
    )
    kw.update(overrides)
    return SpectralCase(**kw)


def spectral_case(emissivity="tungsten", **overrides):
    kw = dict(
        name="spectral",
        model=SpectralModel.build(
            bands=3, temperature=1400.0, kappa_exponent=0.8,
            emissivity=emissivity,
        ),
        resolution=RESOLUTION, rays_per_cell=RAYS,
        wall_temperature=0.5, wall_emissivity=0.8,
    )
    kw.update(overrides)
    return SpectralCase(**kw)


class TestGrayLimit:
    def test_vectorized_bit_identical_to_gray_solver(self):
        case = gray_limit_case()
        grid, props = case.prepare()
        gray = SingleLevelRMCRT(rays_per_cell=RAYS).solve(grid, props)
        spectral = case.tracer(backend="vectorized").solve(grid, props)
        np.testing.assert_array_equal(spectral.divq, gray.divq)
        assert spectral.rays_traced == gray.rays_traced

    def test_scalar_matches_gray_solver(self):
        # the scalar loop accumulates per ray rather than per chunk, so
        # agreement with the batched gray kernel is to round-off, not bits
        case = gray_limit_case()
        grid, props = case.prepare()
        gray = SingleLevelRMCRT(rays_per_cell=RAYS).solve(grid, props)
        spectral = case.tracer(backend="scalar").solve(grid, props)
        np.testing.assert_allclose(spectral.divq, gray.divq,
                                   rtol=1e-12, atol=1e-14)

    def test_gray_limit_single_band_census(self):
        result = gray_limit_case().solve()
        assert result.band_rays.shape == (1,)
        assert result.band_rays[0] == result.rays_traced


class TestBackendAgreement:
    def test_vectorized_matches_scalar_multiband(self):
        case = spectral_case()
        grid, props = case.prepare()
        vec = case.tracer(backend="vectorized").solve(grid, props)
        ref = case.tracer(backend="scalar").solve(grid, props)
        np.testing.assert_allclose(vec.divq, ref.divq, rtol=1e-12, atol=1e-14)
        np.testing.assert_array_equal(vec.band_rays, ref.band_rays)

    def test_backends_share_band_draws(self):
        # identical band census proves both backends consumed the same
        # named spectral stream, not merely statistically similar ones
        case = spectral_case(emissivity="gray")
        vec = case.solve(backend="vectorized")
        ref = case.solve(backend="scalar")
        np.testing.assert_array_equal(vec.band_rays, ref.band_rays)


class TestSpectralPhysics:
    def test_band_census_accounts_for_every_ray(self):
        result = spectral_case().solve()
        assert result.band_rays.sum() == result.rays_traced
        assert np.all(result.band_rays > 0)  # 3 equal-weight bands

    def test_census_follows_planck_weights(self):
        case = spectral_case(rays_per_cell=16)
        result = case.solve()
        freq = result.band_rays / result.rays_traced
        np.testing.assert_allclose(freq, case.model.table.weights, atol=0.02)

    def test_emissivity_table_changes_hot_wall_answer(self):
        grid, props = spectral_case().prepare()
        tungsten = spectral_case(emissivity="tungsten")
        gray_walls = spectral_case(emissivity="gray")
        a = tungsten.tracer().solve(grid, props)
        b = gray_walls.tracer().solve(grid, props)
        assert np.max(np.abs(a.divq - b.divq)) > 0.0

    def test_spectral_redistribution_is_not_a_rescale(self):
        # normalised kappa scales keep the Planck-mean medium identical,
        # so the spectral answer differs from gray without diverging
        case = spectral_case(emissivity="gray")
        grid, props = case.prepare()
        gray = SingleLevelRMCRT(rays_per_cell=RAYS).solve(grid, props)
        spectral = case.tracer().solve(grid, props)
        assert case.model.planck_mean_scale == pytest.approx(1.0)
        assert np.max(np.abs(spectral.divq - gray.divq)) > 0.0
        scale = np.linalg.norm(spectral.divq) / np.linalg.norm(gray.divq)
        assert 0.5 < scale < 2.0

    def test_result_surface(self):
        result = spectral_case().solve()
        assert isinstance(result, SpectralResult)
        assert result.divq.shape == (RESOLUTION,) * 3
        assert np.all(np.isfinite(result.divq))
        assert "spectral_solve" in result.timers
        assert "kernel" in result.timers


class TestDeterminism:
    def test_same_seed_same_answer(self):
        a = spectral_case().solve()
        b = spectral_case().solve()
        np.testing.assert_array_equal(a.divq, b.divq)

    def test_seed_changes_answer(self):
        a = spectral_case().solve()
        b = spectral_case(seed=1).solve()
        assert np.max(np.abs(a.divq - b.divq)) > 0.0

    def test_external_streams_match_internal_seed(self):
        case = spectral_case()
        grid, props = case.prepare()
        internal = case.tracer().solve(grid, props)
        external = case.tracer().solve(grid, props, streams=RandomStreams(0))
        np.testing.assert_array_equal(internal.divq, external.divq)


class TestScenarios:
    def test_registry_lookup(self):
        case = get_scenario("gray-limit")
        assert isinstance(case, SpectralCase)
        assert case.model.is_gray_limit

    def test_unknown_scenario(self):
        with pytest.raises(ReproError, match="unknown spectral scenario"):
            get_scenario("nope")

    def test_unknown_backend(self):
        with pytest.raises(ReproError, match="unknown backend"):
            SpectralTracer(SpectralModel.gray_limit(), backend="cuda")
