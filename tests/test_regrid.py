"""Tests for the tiled regridder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import (
    Box,
    Grid,
    TiledRegridder,
    decompose_level,
    flagged_tiles,
    flags_from_field,
)
from repro.arches import BoilerScenario
from repro.util.errors import GridError


def coarse_grid(n=16, patch=8):
    grid = Grid()
    level = grid.add_level(Box.cube(n), (1.0 / n,) * 3)
    decompose_level(level, (patch,) * 3)
    return grid


class TestFlaggedTiles:
    def test_single_flag_one_tile(self):
        flags = np.zeros((8, 8, 8), dtype=bool)
        flags[5, 5, 5] = True
        tiles = flagged_tiles(flags, 4)
        assert tiles == [Box((4, 4, 4), (8, 8, 8))]

    def test_no_flags_no_tiles(self):
        assert flagged_tiles(np.zeros((8, 8, 8), dtype=bool), 4) == []

    def test_all_flags_full_tiling(self):
        tiles = flagged_tiles(np.ones((8, 8, 8), dtype=bool), 4)
        assert len(tiles) == 8
        assert sum(t.volume for t in tiles) == 512

    def test_partial_boundary_tiles(self):
        flags = np.zeros((10, 10, 10), dtype=bool)
        flags[9, 9, 9] = True
        tiles = flagged_tiles(flags, 4)
        assert tiles == [Box((8, 8, 8), (10, 10, 10))]

    def test_origin_offset(self):
        flags = np.zeros((4, 4, 4), dtype=bool)
        flags[0, 0, 0] = True
        tiles = flagged_tiles(flags, 4, origin=(12, 12, 12))
        assert tiles[0].lo == (12, 12, 12)

    def test_bad_tile_size(self):
        with pytest.raises(GridError):
            flagged_tiles(np.zeros((4, 4, 4), dtype=bool), 0)

    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=40, deadline=None)
    def test_property_coverage_and_disjoint(self, seed):
        rng = np.random.default_rng(seed)
        flags = rng.random((12, 12, 12)) < 0.1
        tiles = flagged_tiles(flags, 4)
        # coverage: every flag inside some tile
        for cell in zip(*np.nonzero(flags)):
            assert any(t.contains_point(cell) for t in tiles)
        # disjoint, non-empty, flag-bearing
        for i, a in enumerate(tiles):
            assert flags[a.slices()].any()
            for b in tiles[i + 1:]:
                assert not a.intersects(b)


class TestTiledRegridder:
    def test_regrid_produces_aligned_fine_patches(self):
        grid = coarse_grid()
        flags = np.zeros((16, 16, 16), dtype=bool)
        flags[2, 3, 4] = True
        flags[12, 12, 12] = True
        rg = TiledRegridder(fine_patch_size=8, refinement_ratio=4)
        new_grid, patches = rg.regrid(grid, flags)
        assert new_grid.num_levels == 2
        assert len(patches) == 2
        for p in patches:
            assert p.box.extent == (8, 8, 8)
            for d in range(3):
                assert p.box.lo[d] % 8 == 0
        assert TiledRegridder.coverage_ok(
            flags, grid.coarsest_level, patches, 4
        )

    def test_flame_tracking_scenario(self):
        """Flag where the boiler's kappa is high: the fine patches
        concentrate around the flame core."""
        sc = BoilerScenario(resolution=16)
        coarse = coarse_grid(16, 8).coarsest_level
        kappa = sc.kappa_field(coarse)
        flags = flags_from_field(kappa, threshold=0.5)
        assert flags.any() and not flags.all()
        rg = TiledRegridder(fine_patch_size=8, refinement_ratio=2)
        boxes = rg.fine_patch_boxes(coarse, flags)
        # refined region is a small fraction of the refined domain
        refined = sum(b.volume for b in boxes)
        assert refined < 0.7 * (16 * 2) ** 3
        assert TiledRegridder.coverage_ok(
            flags, coarse,
            [type("P", (), {"box": b})() for b in boxes],  # duck patches
            2,
        )

    def test_no_flags_rejected(self):
        grid = coarse_grid()
        rg = TiledRegridder(8, 4)
        with pytest.raises(GridError):
            rg.regrid(grid, np.zeros((16, 16, 16), dtype=bool))

    def test_shape_mismatch_rejected(self):
        grid = coarse_grid()
        rg = TiledRegridder(8, 4)
        with pytest.raises(GridError):
            rg.fine_patch_boxes(grid.coarsest_level, np.zeros((4, 4, 4), dtype=bool))

    def test_misaligned_patch_size_rejected(self):
        with pytest.raises(GridError):
            TiledRegridder(fine_patch_size=6, refinement_ratio=4)

    def test_flags_from_field(self):
        f = np.array([[[0.1, 0.9]]])
        flags = flags_from_field(f, 0.5)
        assert flags.tolist() == [[[False, True]]]

    def test_regridded_grid_usable_by_solver(self):
        """End-to-end: a regridded (non-domain-spanning fine level)
        grid carries patches the runtime can compile against."""
        grid = coarse_grid()
        flags = np.zeros((16, 16, 16), dtype=bool)
        flags[6:10, 6:10, 6:10] = True
        new_grid, patches = TiledRegridder(8, 4).regrid(grid, flags)
        assert new_grid.finest_level.num_patches == len(patches)
        assert not new_grid.finest_level.is_fully_tiled()  # partial cover
        ids = [p.patch_id for p in patches]
        assert len(set(ids)) == len(ids)
