"""Tests for the content-addressed incremental checkpointer."""

import json

import numpy as np
import pytest

from repro.dw import CCVariable, DataWarehouse, ReductionVariable, cc, per_level, reduction
from repro.grid import Box
from repro.perf.metrics import MetricsRegistry
from repro.resilience import Checkpointer, capture_state
from repro.util import RandomStreams, ResilienceError

A = cc("a")
E = per_level("e")
TOTAL = reduction("total")


def make_state(step, value=1.0, extra_patch=False, streams=None):
    dw = DataWarehouse(generation=step)
    box = Box((0, 0, 0), (4, 4, 4))
    dw.put(A, 0, CCVariable(box, np.full(box.extent, value)))
    if extra_patch:
        dw.put(A, 1, CCVariable(box, np.full(box.extent, value * 2)))
    dw.put_level(E, 0, np.arange(8.0) + value)
    dw.put_reduction(TOTAL, ReductionVariable(3.5 * value, "sum"))
    return capture_state(dw, step=step, time=step * 0.1, streams=streams)


class TestSaveLoad:
    def test_round_trip_byte_equal(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        streams = RandomStreams(5)
        streams.for_patch(0).random(9)  # mid-sequence position
        state = make_state(2, streams=streams)
        ckpt.save(state)

        loaded = ckpt.load(2)
        assert loaded.step == 2 and loaded.time == pytest.approx(0.2)
        for (k1, a1), (k2, a2) in zip(state.arrays(), loaded.arrays()):
            assert k1 == k2
            assert a1.tobytes() == a2.tobytes()
        assert loaded.reductions == state.reductions
        # RNG position travels too
        expect = streams.for_patch(0).random(4)
        fresh = RandomStreams(5)
        loaded.restore_streams(fresh)
        assert np.array_equal(fresh.for_patch(0).random(4), expect)

    def test_build_dw_restores_variables(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        ckpt.save(make_state(1, value=4.0))
        dw = ckpt.load(1).build_dw()
        assert dw.get(A, 0).data[0, 0, 0] == 4.0
        assert dw.get_reduction(TOTAL).value == pytest.approx(14.0)

    def test_load_missing_step_raises(self, tmp_path):
        with pytest.raises(ResilienceError):
            Checkpointer(tmp_path).load(7)


class TestDedup:
    def test_unchanged_arrays_reuse_chunks(self, tmp_path):
        m = MetricsRegistry()
        ckpt = Checkpointer(tmp_path, metrics=m)
        ckpt.save(make_state(1))
        written_first = m.value("resilience.checkpoint.chunks_written")
        ckpt.save(make_state(2))  # same arrays, new step
        assert m.value("resilience.checkpoint.chunks_written") == written_first
        assert m.value("resilience.checkpoint.chunks_reused") == written_first

    def test_changed_array_writes_new_chunk(self, tmp_path):
        m = MetricsRegistry()
        ckpt = Checkpointer(tmp_path, metrics=m)
        ckpt.save(make_state(1, value=1.0))
        ckpt.save(make_state(2, value=9.0))
        assert m.value("resilience.checkpoint.chunks_reused") == 0


class TestCadence:
    def test_every_steps(self, tmp_path):
        ckpt = Checkpointer(tmp_path, every_steps=3)
        assert ckpt.should_checkpoint(3) and ckpt.should_checkpoint(6)
        assert not ckpt.should_checkpoint(1) and not ckpt.should_checkpoint(4)

    def test_wall_clock(self, tmp_path):
        ckpt = Checkpointer(tmp_path, every_steps=10 ** 9, every_seconds=100.0)
        ckpt.save(make_state(1))
        base = ckpt._last_checkpoint_wall
        assert not ckpt.should_checkpoint(2, now=base + 5.0)
        assert ckpt.should_checkpoint(2, now=base + 101.0)

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(ResilienceError):
            Checkpointer(tmp_path, every_steps=0)
        with pytest.raises(ResilienceError):
            Checkpointer(tmp_path, keep=0)


class TestRetention:
    def test_prune_keeps_newest(self, tmp_path):
        ckpt = Checkpointer(tmp_path, keep=2)
        for step in range(1, 6):
            ckpt.save(make_state(step, value=float(step)))
        assert ckpt.steps() == [4, 5]

    def test_prune_collects_unreferenced_chunks(self, tmp_path):
        ckpt = Checkpointer(tmp_path, keep=1)
        ckpt.save(make_state(1, value=1.0))
        ckpt.save(make_state(2, value=2.0))  # all-new content; step 1 pruned
        live = {
            info["sha256"]
            for info in json.loads(ckpt.manifest_path(2).read_text())["payload"][
                "chunks"
            ].values()
        }
        on_disk = {p.stem for p in (tmp_path / "chunks").rglob("*.npy")}
        assert on_disk == live

    def test_shared_chunks_survive_prune(self, tmp_path):
        ckpt = Checkpointer(tmp_path, keep=1)
        ckpt.save(make_state(1))
        ckpt.save(make_state(2))  # identical arrays -> same chunks
        state = ckpt.load(2)
        assert state.step == 2  # shared chunks were not collected


class TestIntegrity:
    def test_manifest_hash_mismatch_rejected(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        ckpt.save(make_state(1))
        doc = json.loads(ckpt.manifest_path(1).read_text())
        doc["payload"]["step"] = 99  # tamper without re-hashing
        ckpt.manifest_path(1).write_text(json.dumps(doc))
        with pytest.raises(ResilienceError, match="integrity"):
            ckpt.load(1)

    def test_torn_manifest_rejected(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        ckpt.save(make_state(1))
        raw = ckpt.manifest_path(1).read_bytes()
        ckpt.manifest_path(1).write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ResilienceError):
            ckpt.load(1)

    def test_corrupt_chunk_quarantined(self, tmp_path):
        m = MetricsRegistry()
        ckpt = Checkpointer(tmp_path, metrics=m)
        ckpt.save(make_state(1))
        victim = next((tmp_path / "chunks").rglob("*.npy"))
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        with pytest.raises(ResilienceError, match="verification"):
            ckpt.load(1)
        # quarantine deleted the poisoned chunk so a re-save can heal it
        assert not victim.exists()
        assert m.value("resilience.checkpoint.quarantined") == 1
        ckpt.save(make_state(1))
        assert ckpt.load(1).step == 1
