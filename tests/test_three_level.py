"""Three-level "data onion" tests — the level-upon-level generality of
Section II's AMR approach (the benchmarks use 2 levels; the algorithm
is written for any depth)."""

import numpy as np
import pytest

from repro.grid import Box, Grid, decompose_level
from repro.core import (
    DistributedRMCRT,
    MultiLevelRMCRT,
    SingleLevelRMCRT,
    benchmark_property_init,
    project_to_coarser_levels,
)
from repro.radiation import BurnsChristonBenchmark


def three_level_grid(fine=16, patch=8):
    """fine^3 over two coarser levels, refinement ratio 2 at each step."""
    grid = Grid()
    grid.add_level(Box.cube(fine // 4), (4.0 / fine,) * 3)
    grid.add_level(Box.cube(fine // 2), (2.0 / fine,) * 3, refinement_ratio=(2, 2, 2))
    level = grid.add_level(Box.cube(fine), (1.0 / fine,) * 3, refinement_ratio=(2, 2, 2))
    if patch is not None:
        decompose_level(level, (patch,) * 3)
    return grid


class TestThreeLevelGrid:
    def test_structure(self):
        grid = three_level_grid()
        assert grid.num_levels == 3
        assert grid.level(0).domain_box == Box.cube(4)
        assert grid.level(1).domain_box == Box.cube(8)
        assert grid.finest_level.domain_box == Box.cube(16)

    def test_projection_chain(self):
        bench = BurnsChristonBenchmark(resolution=16)
        grid = three_level_grid()
        props = bench.properties_for_level(grid.finest_level)
        bundles = project_to_coarser_levels(grid, props)
        assert [b.interior.extent[0] for b in bundles] == [4, 8, 16]
        # conservation down the whole chain
        for b in bundles:
            assert np.isclose(
                b.interior_view("abskg").mean(),
                props.interior_view("abskg").mean(),
            )


class TestThreeLevelSolve:
    def test_matches_single_level_statistically(self):
        bench = BurnsChristonBenchmark(resolution=16)
        grid3 = three_level_grid()
        props = bench.properties_for_level(grid3.finest_level)
        ml = MultiLevelRMCRT(rays_per_cell=32, seed=2, halo=2).solve(grid3, props)

        grid1 = bench.single_level_grid()
        sl = SingleLevelRMCRT(rays_per_cell=32, seed=2).solve(
            grid1, bench.properties_for_level(grid1.finest_level)
        )
        rel = abs(ml.divq.mean() - sl.divq.mean()) / sl.divq.mean()
        assert rel < 0.03
        assert (ml.divq > 0).all()

    def test_rays_cascade_through_both_coarse_levels(self):
        """With a one-cell ROI margin, distant rays must traverse the
        middle level and finish on the coarsest — solve succeeds and no
        ray escapes (escape would raise)."""
        bench = BurnsChristonBenchmark(resolution=16)
        grid3 = three_level_grid(patch=4)  # tiny patches -> lots of handoff
        props = bench.properties_for_level(grid3.finest_level)
        res = MultiLevelRMCRT(rays_per_cell=8, seed=3, halo=0).solve(grid3, props)
        assert np.isfinite(res.divq).all()

    def test_distributed_pipeline_three_levels(self):
        """The 3-task graph generalizes: two per-level property bundles
        are broadcast, results identical across schedulers."""
        bench = BurnsChristonBenchmark(resolution=16)
        grid3 = three_level_grid(patch=8)
        drm = DistributedRMCRT(
            grid3, benchmark_property_init(bench), rays_per_cell=8, halo=2, seed=4
        )
        serial = drm.solve("serial")
        dist = drm.solve("distributed", num_ranks=4)
        np.testing.assert_array_equal(serial.divq, dist.divq)
        # the graph carries coarse labels for levels 0 AND 1
        graph = drm.build_graph()
        level_labels = {
            c.label.name
            for t in graph.detailed_tasks
            for c in t.task.computes
            if c.label.name.startswith(("abskg_L", "sigma_t4_L", "cell_type_L"))
        }
        assert level_labels == {
            "abskg_L0", "sigma_t4_L0", "cell_type_L0",
            "abskg_L1", "sigma_t4_L1", "cell_type_L1",
        }

    def test_three_level_matches_direct_solver_exactly(self):
        bench = BurnsChristonBenchmark(resolution=16)
        grid3 = three_level_grid(patch=8)
        props = bench.properties_for_level(grid3.finest_level)
        direct = MultiLevelRMCRT(rays_per_cell=8, seed=4, halo=2).solve(grid3, props)
        drm = DistributedRMCRT(
            grid3, benchmark_property_init(bench),
            rays_per_cell=8, halo=2, seed=4,
        )
        pipeline = drm.solve("serial")
        np.testing.assert_array_equal(direct.divq, pipeline.divq)
