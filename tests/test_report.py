"""Smoke test for the one-command reproduction report."""

import io

from repro.report import main


def test_report_renders_all_sections():
    buf = io.StringIO()
    assert main(out=buf) == 0
    text = buf.getvalue()
    for marker in (
        "Table I",
        "Figure 2",
        "Figure 3",
        "E8",
        "efficiency 4096->16384",
        "paper: 89%",
    ):
        assert marker in text, f"report missing section marker {marker!r}"
    # the model's Table I endpoint sits near the paper's
    assert "6.2" in text and "4.5" in text
