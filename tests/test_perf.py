"""Tests for the observability layer: metrics registry semantics, span
tracer nesting + Chrome trace-event schema, rank-stats reduction,
tracesim export round-trip, the benchmark artifact harness, and the
profile runner."""

import json
import threading

import pytest

from repro.grid import Box, Grid, decompose_level
from repro.dw import cc
from repro.dessim import TaskGraphTraceSimulator
from repro.machine import NetworkModel
from repro.perf import (
    MetricsRegistry,
    SpanTracer,
    format_rank_stats,
    publish_rank_stats,
    reduce_rank_stats,
    write_bench_artifact,
)
from repro.runtime import Computes, Requires, Task, TaskGraph
from repro.util.errors import PerfError
from repro.util.timing import TimerRegistry


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("rays").inc()
        reg.counter("rays").inc(4)
        assert reg.value("rays") == 5

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(PerfError):
            reg.counter("rays").inc(-1)

    def test_labels_partition_a_name(self):
        reg = MetricsRegistry()
        reg.counter("retired", pool="waitfree").inc(10)
        reg.counter("retired", pool="locked").inc(3)
        assert reg.value("retired", pool="waitfree") == 10
        assert reg.value("retired", pool="locked") == 3
        assert reg.total("retired") == 13
        assert len(reg.series("retired")) == 2

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("x", rank=1, pool="wf")
        b = reg.counter("x", pool="wf", rank=1)
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("footprint")
        with pytest.raises(PerfError):
            reg.gauge("footprint")
        with pytest.raises(PerfError):
            reg.gauge("footprint", allocator="arena")  # any label set

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("outstanding")
        g.set(10)
        g.dec(4)
        g.inc(1)
        assert reg.value("outstanding") == 7

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("task_time", buckets=[0.1, 1.0, 10.0])
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(55.55 / 4)
        assert h.bucket_counts == [1, 1, 1, 1]  # one in overflow
        d = h.as_dict()
        assert d["buckets"][-1] == {"le": None, "count": 1}

    def test_as_dict_structure(self):
        reg = MetricsRegistry()
        reg.counter("c", k="v").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(1)
        snap = reg.as_dict()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"][0] == {
            "name": "c", "labels": {"k": "v"}, "value": 1.0,
        }
        json.dumps(snap)  # must be JSON-serializable as-is

    def test_write_and_reset(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = tmp_path / "metrics.json"
        reg.write(path)
        assert json.loads(path.read_text())["counters"]
        reg.reset()
        assert len(reg) == 0
        reg.gauge("c")  # kind map cleared too: no conflict after reset

    def test_thread_safety(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("n").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("n") == 4000


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_close_inner_first(self):
        tr = SpanTracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        events = [e for e in tr.events() if e["ph"] == "X"]
        # events() sorts by start time: outer opened first
        assert [e["name"] for e in events] == ["outer", "inner"]
        outer, inner = events
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_mismatched_end_raises(self):
        tr = SpanTracer()
        tr.begin("a")
        with pytest.raises(PerfError):
            tr.end("b")

    def test_end_without_begin_raises(self):
        tr = SpanTracer()
        with pytest.raises(PerfError):
            tr.end()

    def test_disabled_tracer_is_a_noop(self):
        tr = SpanTracer(enabled=False)
        tr.begin("a")
        tr.end("whatever")  # no mismatch check when disabled
        tr.end()  # no underflow either
        with tr.span("s"):
            pass
        assert tr.events() == []

    def test_chrome_trace_schema(self, tmp_path):
        tr = SpanTracer()
        tr.register_thread(tid=3, name="rank 3")
        with tr.span("task", cat="task", patch=7):
            pass
        tr.instant("marker")
        path = tmp_path / "trace.json"
        tr.write(path)
        events = json.loads(path.read_text())
        assert isinstance(events, list) and events
        for e in events:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            assert e["ph"] in ("X", "M", "i")
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "rank 3"
        x = [e for e in events if e["ph"] == "X"][0]
        assert x["tid"] == 3 and x["cat"] == "task" and x["args"]["patch"] == 7

    def test_per_thread_stacks(self):
        tr = SpanTracer()
        errors = []

        def worker(rank):
            tr.register_thread(tid=rank)
            try:
                with tr.span(f"work{rank}"):
                    pass
            except PerfError as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(r,)) for r in (5, 6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        tids = {e["tid"] for e in tr.events() if e["ph"] == "X"}
        assert tids == {5, 6}

    def test_open_spans_counts_balance(self):
        tr = SpanTracer()
        tr.begin("a")
        assert tr.open_spans() == 1
        tr.end("a")
        assert tr.open_spans() == 0

    def test_complete_injection(self):
        tr = SpanTracer()
        tr.complete("sim", ts_us=100.0, dur_us=50.0, tid=2, cat="sim.task")
        (e,) = tr.events()
        assert e == {
            "name": "sim", "ph": "X", "ts": 100.0, "dur": 50.0,
            "pid": 0, "tid": 2, "cat": "sim.task",
        }


# ----------------------------------------------------------------------
# rank stats
# ----------------------------------------------------------------------
class TestRankStats:
    def test_reduction(self):
        per_rank = {
            0: {"task_time": 1.0, "msgs": 10},
            1: {"task_time": 3.0, "msgs": 20},
            2: {"task_time": 2.0},  # ragged: msgs missing -> 0
        }
        out = reduce_rank_stats(per_rank)
        tt = out["task_time"]
        assert (tt.min, tt.max, tt.total) == (1.0, 3.0, 6.0)
        assert tt.mean == pytest.approx(2.0)
        assert (tt.min_rank, tt.max_rank) == (0, 1)
        assert tt.imbalance == pytest.approx(1.5)
        assert out["msgs"].min == 0.0 and out["msgs"].min_rank == 2

    def test_format_table(self):
        out = reduce_rank_stats({0: {"t": 1.0}, 1: {"t": 2.0}})
        text = format_rank_stats(out, title="Stats")
        assert "Stats (2 ranks)" in text
        assert "(r0)" in text and "(r1)" in text

    def test_publish(self):
        reg = MetricsRegistry()
        publish_rank_stats(reg, {0: {"t": 1.0}, 1: {"t": 3.0}}, prefix="sched")
        assert reg.value("sched.t", rank=0) == 1.0
        assert reg.value("sched.t.max") == 3.0
        assert reg.value("sched.t.mean") == 2.0

    # imbalance guard regressions: zero mean, negative mean, one rank
    def test_imbalance_all_zero_is_balanced(self):
        out = reduce_rank_stats({0: {"idle": 0.0}, 1: {"idle": 0.0}})
        assert out["idle"].imbalance == 1.0

    def test_imbalance_zero_mean_positive_max_reports_worst_case(self):
        # one rank did +2, the other -2: mean 0, the old code divided
        out = reduce_rank_stats({0: {"drift": 2.0}, 1: {"drift": -2.0}})
        assert out["drift"].imbalance == 2.0  # == ranks, the worst case

    def test_imbalance_negative_mean_never_negative(self):
        out = reduce_rank_stats({0: {"drift": -1.0}, 1: {"drift": -3.0}})
        assert out["drift"].imbalance >= 1.0

    def test_imbalance_single_rank_is_balanced(self):
        out = reduce_rank_stats({0: {"t": 5.0}})
        assert out["t"].imbalance == 1.0
        assert out["t"].as_dict()["imbalance"] == 1.0


# ----------------------------------------------------------------------
# tracesim -> Chrome trace round trip
# ----------------------------------------------------------------------
class TestTracesimExport:
    def simulate(self):
        grid = Grid()
        level = grid.add_level(Box.cube(16), (1.0,) * 3)
        decompose_level(level, (4, 16, 16))
        phi, psi = cc("phi"), cc("psi")

        def noop(ctx):
            pass

        tg = TaskGraph(grid)
        tg.add_task(Task("init", noop, computes=[Computes(phi)]), 0)
        tg.add_task(
            Task("copy", noop, requires=[Requires(phi)], computes=[Computes(psi)]),
            0,
        )
        assignment = {p.patch_id: p.patch_id % 2 for p in level.patches}
        graph = tg.compile(assignment=assignment, num_ranks=2)
        sim = TaskGraphTraceSimulator(NetworkModel(latency_s=0.0))
        return sim.simulate(graph, lambda dt: 1.0)

    def test_round_trip_preserves_per_rank_busy(self):
        report = self.simulate()
        events = report.to_chrome_trace_events()
        busy = {}
        for e in events:
            if e["ph"] == "X":
                busy[e["tid"]] = busy.get(e["tid"], 0.0) + e["dur"] / 1e6
        for rank, tl in report.ranks.items():
            assert busy[rank] == pytest.approx(tl.busy)

    def test_event_schema_and_rank_rows(self, tmp_path):
        report = self.simulate()
        path = tmp_path / "sim_trace.json"
        report.write_chrome_trace(path)
        events = json.loads(path.read_text())
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["tid"] for e in meta} == set(report.ranks)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(report.traces)
        for e in xs:
            assert {"name", "ph", "ts", "dur", "pid", "tid", "cat", "args"} <= set(e)
            assert e["cat"] == "sim.task"
            assert e["args"]["wait_us"] >= 0
        # simulated seconds scaled to microseconds
        assert max(e["ts"] + e["dur"] for e in xs) == pytest.approx(
            report.makespan * 1e6
        )


# ----------------------------------------------------------------------
# timers (satellite: running timers visible in reports)
# ----------------------------------------------------------------------
class TestTimerObservability:
    def test_running_timer_has_nonzero_current(self):
        timers = TimerRegistry()
        t = timers("solve")
        t.start()
        assert t.current > 0.0
        d = t.as_dict()
        assert d["running"] and d["elapsed"] > 0.0
        t.stop()
        assert not t.as_dict()["running"]

    def test_report_includes_running_timers(self):
        timers = TimerRegistry()
        timers("running_one").start()
        report = timers.report()
        assert "running_one" in report and "*" in report

    def test_publish_metrics(self):
        reg = MetricsRegistry()
        timers = TimerRegistry()
        with timers("step"):
            pass
        timers.publish_metrics(reg)
        assert reg.value("timer.step.count") == 1
        assert reg.value("timer.step.seconds") >= 0.0


# ----------------------------------------------------------------------
# benchmark artifact harness
# ----------------------------------------------------------------------
class TestHarness:
    def test_write_artifact(self, tmp_path):
        path = write_bench_artifact(
            "demo",
            params={"ranks": 4},
            rows=[{"n": 1, "time": 0.5}],
            metrics={"makespan": 0.5},
            directory=tmp_path,
        )
        assert path.name == "BENCH_demo.json"
        doc = json.loads(path.read_text())
        assert doc["schema"] == 1 and doc["name"] == "demo"
        assert doc["params"] == {"ranks": 4}
        assert doc["rows"] == [{"n": 1, "time": 0.5}]
        assert doc["metrics"] == {"makespan": 0.5}

    def test_bench_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "artifacts"))
        path = write_bench_artifact("env", params={}, rows=[])
        assert path.parent == tmp_path / "artifacts"
        assert path.exists()

    def test_numpy_values_serialized(self, tmp_path):
        import numpy as np

        path = write_bench_artifact(
            "np",
            params={"x": np.float64(1.5)},
            rows=[{"a": np.arange(3)}],
            directory=tmp_path,
        )
        doc = json.loads(path.read_text())
        assert doc["params"]["x"] == 1.5
        assert doc["rows"][0]["a"] == [0, 1, 2]


# ----------------------------------------------------------------------
# the profile runner (the `python -m repro profile` entry)
# ----------------------------------------------------------------------
class TestProfileRunner:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        from repro.perf.profile import run_profile

        d = tmp_path_factory.mktemp("profile")
        summary = run_profile(
            steps=2,
            resolution=8,
            rays_per_cell=2,
            num_ranks=2,
            trace_path=str(d / "trace.json"),
            metrics_path=str(d / "metrics.json"),
        )
        return d, summary

    def test_trace_is_valid_chrome_json(self, artifacts):
        d, summary = artifacts
        events = json.loads((d / "trace.json").read_text())
        assert isinstance(events, list)
        for e in events:
            assert {"name", "ph", "pid", "tid"} <= set(e)
        # at least one task-exec span per timestep
        steps = [e for e in events if e.get("cat") == "driver"
                 and e["name"].startswith("timestep")]
        tasks = [e for e in events if e.get("cat") == "task"]
        assert len(steps) == 2
        for s in steps:
            inside = [
                t for t in tasks
                if s["ts"] <= t["ts"] and t["ts"] + t["dur"] <= s["ts"] + s["dur"]
            ]
            assert inside, f"no task span inside {s['name']}"

    def test_metrics_cover_required_subsystems(self, artifacts):
        d, _ = artifacts
        doc = json.loads((d / "metrics.json").read_text())
        names = {m["name"] for group in doc.values() for m in group}
        assert any(n.startswith("scheduler.") for n in names)
        assert any(n.startswith("comm.pool.") for n in names)
        assert any(n.startswith("alloc.") for n in names)
        assert any(n.startswith("dw.") for n in names)

    def test_summary_and_runtime_stats(self, artifacts):
        from repro.perf.profile import format_summary

        _, summary = artifacts
        assert summary["task_spans"] > 0
        stats = {s["name"]: s for s in summary["runtime_stats"]}
        assert stats["tasks_executed"]["total"] > 0
        text = format_summary(summary)
        assert "Runtime stats" in text

    def test_cli_profile_subcommand(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        assert main(["profile", "--steps", "1", "--resolution", "8",
                     "--rays-per-cell", "2"]) == 0
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "metrics.json").exists()


# ----------------------------------------------------------------------
# histogram quantiles
# ----------------------------------------------------------------------
class TestHistogramQuantiles:
    def make(self, values, buckets=(1.0, 5.0, 10.0)):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=buckets)
        for v in values:
            hist.observe(v)
        return hist

    def test_empty_histogram_has_no_quantile(self):
        assert self.make([]).quantile(0.5) is None

    def test_q_out_of_range_raises(self):
        hist = self.make([1.0])
        for q in (-0.1, 1.1):
            with pytest.raises(PerfError):
                hist.quantile(q)

    def test_interpolates_within_a_bucket(self):
        # 100 uniform values in [0, 1): the median sits mid-bucket
        hist = self.make([i / 100 for i in range(100)])
        assert 0.3 <= hist.quantile(0.5) <= 0.7

    def test_clamped_to_observed_range(self):
        hist = self.make([2.0, 3.0], buckets=(1.0, 5.0, 10.0))
        assert hist.quantile(0.0) >= 2.0
        assert hist.quantile(1.0) <= 3.0

    def test_overflow_bucket_reports_max(self):
        hist = self.make([100.0, 200.0], buckets=(1.0, 5.0))
        assert hist.quantile(0.99) == 200.0

    def test_as_dict_carries_p50_p95_p99(self):
        d = self.make([0.5] * 10).as_dict()
        assert {"p50", "p95", "p99"} <= set(d)
        assert d["p50"] == d["p95"] == d["p99"] == 0.5

    def test_quantiles_are_monotone(self):
        import random

        rnd = random.Random(3)
        hist = self.make([rnd.uniform(0, 20) for _ in range(500)])
        q = [hist.quantile(x) for x in (0.1, 0.5, 0.9, 0.99)]
        assert q == sorted(q)


# ----------------------------------------------------------------------
# tracer thread safety
# ----------------------------------------------------------------------
class TestTracerConcurrency:
    def test_concurrent_spans_round_trip_to_chrome_trace(self):
        tracer = SpanTracer(enabled=True)
        n_threads, n_spans = 8, 50
        start = threading.Barrier(n_threads)

        def worker(k):
            start.wait()
            for i in range(n_spans):
                with tracer.span(f"w{k}.s{i}", cat="task", k=k, i=i):
                    pass

        threads = [
            threading.Thread(target=worker, args=(k,))
            for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        events = tracer.to_chrome_trace()
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == n_threads * n_spans  # no lost emits
        names = {e["name"] for e in spans}
        assert len(names) == n_threads * n_spans  # no duplicates
        for e in spans:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)
        # per-thread tids partition the spans evenly
        by_tid = {}
        for e in spans:
            by_tid.setdefault(e["tid"], []).append(e)
        assert all(len(v) == n_spans for v in by_tid.values())

    def test_sinks_see_every_event_once(self):
        tracer = SpanTracer(enabled=True)
        seen = []
        tracer.add_sink(seen.append)

        def worker():
            for i in range(100):
                tracer.instant(f"i{i}")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 400
