"""Tests for the UDA-style data archiver and checkpoint/restart."""

import numpy as np
import pytest

from repro.grid import Box, Grid, decompose_level
from repro.dw import CCVariable, DataArchive, DataWarehouse, ReductionVariable, cc, per_level, reduction
from repro.runtime import (
    Computes,
    Requires,
    SimulationController,
    Task,
    TaskGraph,
)
from repro.util.errors import DataWarehouseError, SchedulerError

PHI = cc("phi")


def make_dw():
    dw = DataWarehouse(generation=3)
    dw.put(PHI, 0, CCVariable(Box.cube(4), np.arange(64.0).reshape(4, 4, 4)))
    dw.put(PHI, 1, CCVariable(Box.cube(4, lo=(4, 0, 0)), np.ones((4, 4, 4))))
    dw.put_level(per_level("coarse"), 0, np.full((2, 2, 2), 7.0))
    dw.put_reduction(reduction("total"), ReductionVariable(42.0, "sum"))
    return dw


class TestArchive:
    def test_roundtrip(self, tmp_path):
        archive = DataArchive(tmp_path / "uda")
        dw = make_dw()
        archive.save(dw, step=5, time=0.25)
        loaded, meta = archive.load(5)
        assert meta["time"] == 0.25
        assert loaded.generation == 3
        np.testing.assert_array_equal(
            loaded.get(PHI, 0).view(Box.cube(4)), dw.get(PHI, 0).view(Box.cube(4))
        )
        assert loaded.get(PHI, 1).box == Box.cube(4, lo=(4, 0, 0))
        np.testing.assert_array_equal(
            loaded.get_level(per_level("coarse"), 0), 7.0 * np.ones((2, 2, 2))
        )
        assert loaded.get_reduction(reduction("total")).value == 42.0

    def test_timestep_listing(self, tmp_path):
        archive = DataArchive(tmp_path / "uda")
        for step in (2, 7, 4):
            archive.save(make_dw(), step=step)
        assert archive.timesteps() == [2, 4, 7]
        assert archive.latest() == 7

    def test_double_save_rejected(self, tmp_path):
        archive = DataArchive(tmp_path / "uda")
        archive.save(make_dw(), step=1)
        with pytest.raises(DataWarehouseError):
            archive.save(make_dw(), step=1)

    def test_missing_step(self, tmp_path):
        archive = DataArchive(tmp_path / "uda")
        with pytest.raises(DataWarehouseError):
            archive.load(99)
        assert archive.latest() is None

    def test_interval(self, tmp_path):
        archive = DataArchive(tmp_path / "uda", every=3)
        assert archive.should_save(3) and archive.should_save(6)
        assert not archive.should_save(4)
        with pytest.raises(DataWarehouseError):
            DataArchive(tmp_path / "x", every=0)

    def test_loaded_arrays_are_independent(self, tmp_path):
        archive = DataArchive(tmp_path / "uda")
        dw = make_dw()
        archive.save(dw, step=0)
        loaded, _ = archive.load(0)
        loaded.get(PHI, 0).data[0, 0, 0] = -1
        assert dw.get(PHI, 0).data[0, 0, 0] == 0.0


class TestCorruptArchive:
    """A corrupt or partially-written tNNNNN/ directory must surface as
    DataWarehouseError (so restart logic can fall back to an earlier
    step), never as a raw KeyError/JSONDecodeError from the internals."""

    def saved(self, tmp_path):
        archive = DataArchive(tmp_path / "uda")
        archive.save(make_dw(), step=3)
        return archive, tmp_path / "uda" / "t00003"

    def test_malformed_meta_json(self, tmp_path):
        archive, tdir = self.saved(tmp_path)
        (tdir / "meta.json").write_text("{truncated by a dying writer")
        with pytest.raises(DataWarehouseError, match="corrupt archive metadata"):
            archive.load(3)

    def test_missing_npz(self, tmp_path):
        archive, tdir = self.saved(tmp_path)
        (tdir / "data.npz").unlink()
        with pytest.raises(DataWarehouseError, match="missing data.npz"):
            archive.load(3)

    def test_garbage_npz(self, tmp_path):
        archive, tdir = self.saved(tmp_path)
        (tdir / "data.npz").write_bytes(b"this is not a zip archive")
        with pytest.raises(DataWarehouseError, match="corrupt archive data"):
            archive.load(3)

    def test_meta_references_missing_array(self, tmp_path):
        import json

        archive, tdir = self.saved(tmp_path)
        meta = json.loads((tdir / "meta.json").read_text())
        meta["cc"].append(
            {"name": "ghostvar", "patch": 9, "lo": [0, 0, 0], "hi": [2, 2, 2],
             "key": "cc::ghostvar::9"}
        )
        (tdir / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(DataWarehouseError, match="disagree"):
            archive.load(3)

    def test_intact_steps_still_load(self, tmp_path):
        """Corruption in one step must not poison the archive: restart
        falls back to the latest intact step."""
        archive = DataArchive(tmp_path / "uda")
        archive.save(make_dw(), step=1)
        archive.save(make_dw(), step=2)
        (tmp_path / "uda" / "t00002" / "data.npz").unlink()
        with pytest.raises(DataWarehouseError):
            archive.load(2)
        dw, meta = archive.load(1)
        assert meta["step"] == 1


N = 8
DX = 1.0 / N
DT = 1e-3


def diffusion_graphs():
    grid = Grid()
    level = grid.add_level(Box.cube(N), (DX,) * 3)
    decompose_level(level, (4, 4, 4))

    def init_cb(ctx):
        t = np.zeros((N, N, N))
        t[N // 2, N // 2, N // 2] = 100.0
        ctx.compute(PHI, t[ctx.patch.box.slices()])

    def step_cb(ctx):
        t = ctx.require(PHI, default=0.0)
        core = t[1:-1, 1:-1, 1:-1]
        lap = (
            t[2:, 1:-1, 1:-1] + t[:-2, 1:-1, 1:-1]
            + t[1:-1, 2:, 1:-1] + t[1:-1, :-2, 1:-1]
            + t[1:-1, 1:-1, 2:] + t[1:-1, 1:-1, :-2]
            - 6 * core
        )
        ctx.compute(PHI, core + 0.1 * lap)

    init_tg = TaskGraph(grid)
    init_tg.add_task(Task("init", init_cb, computes=[Computes(PHI)]), 0)
    step_tg = TaskGraph(grid)
    step_tg.add_task(
        Task("step", step_cb, requires=[Requires(PHI, dw="old", num_ghost=1)],
             computes=[Computes(PHI)]),
        0,
    )
    return grid, init_tg.compile(), step_tg.compile()


def gather(grid, dw):
    out = np.zeros((N, N, N))
    for p in grid.level(0).patches:
        out[p.box.slices()] = dw.get(PHI, p.patch_id).view(p.box)
    return out


class TestCheckpointRestart:
    def test_restart_continues_bit_identically(self, tmp_path):
        grid, init_graph, step_graph = diffusion_graphs()

        # uninterrupted 6-step run
        straight = SimulationController(step_graph, initial_graph=init_graph)
        dw_straight = straight.run(6, DT)

        # run 3 steps with archiving, then restart and run 3 more
        archive = DataArchive(tmp_path / "uda")
        first = SimulationController(
            step_graph, initial_graph=init_graph, archive=archive
        )
        first.run(3, DT)
        assert archive.timesteps() == [1, 2, 3]

        resumed = SimulationController.restart(step_graph, archive)
        assert resumed.step == 3
        dw_resumed = resumed.run(3, DT)

        np.testing.assert_array_equal(
            gather(grid, dw_resumed), gather(grid, dw_straight)
        )
        assert resumed.reports[-1].step == 6

    def test_restart_from_specific_step(self, tmp_path):
        grid, init_graph, step_graph = diffusion_graphs()
        archive = DataArchive(tmp_path / "uda")
        ctrl = SimulationController(
            step_graph, initial_graph=init_graph, archive=archive
        )
        ctrl.run(4, DT)
        resumed = SimulationController.restart(step_graph, archive, step=2)
        assert resumed.step == 2
        assert np.isclose(resumed.time, 2 * DT)

    def test_restart_empty_archive_rejected(self, tmp_path):
        _, _, step_graph = diffusion_graphs()
        archive = DataArchive(tmp_path / "uda")
        with pytest.raises(SchedulerError):
            SimulationController.restart(step_graph, archive)

    def test_archive_respects_interval(self, tmp_path):
        _, init_graph, step_graph = diffusion_graphs()
        archive = DataArchive(tmp_path / "uda", every=2)
        ctrl = SimulationController(
            step_graph, initial_graph=init_graph, archive=archive
        )
        ctrl.run(5, DT)
        assert archive.timesteps() == [2, 4]
