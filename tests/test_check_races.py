"""The lockset + vector-clock race detector: must flag the seeded
``pool_locked`` race deterministically under contention, pass the
wait-free and safe locked pools clean, and stay quiet over the
threaded scheduler and service worker pool (the instrumented
production paths)."""

import threading

import numpy as np
import pytest

from repro.check import (
    RaceDetector,
    TrackedLock,
    TrackedQueue,
    drive_pool_contended,
    instrument_datawarehouse,
    instrument_worker_pool,
    patch_locks,
)

DRIVE = dict(num_threads=4, num_messages=24, unpack_delay=2e-3)


def run_pair(target_a, target_b):
    """Run two thread bodies concurrently from a barrier."""
    barrier = threading.Barrier(2)

    def wrap(fn):
        def body():
            barrier.wait()
            fn()
        return body

    threads = [threading.Thread(target=wrap(t)) for t in (target_a, target_b)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestDetectorCore:
    def test_unsynchronized_writes_race(self):
        det = RaceDetector()
        run_pair(lambda: det.on_write("x"), lambda: det.on_write("x"))
        assert det.race_count == 1
        assert det.findings[0].rule == "lockset-race"

    def test_common_lock_is_clean(self):
        det = RaceDetector()
        lock = TrackedLock(threading.Lock(), det, "guard")

        def body():
            with lock:
                det.on_write("x")

        run_pair(body, body)
        assert det.race_count == 0

    def test_channel_transfer_orders_accesses(self):
        """put/get carries happens-before: producer writes, consumer
        reads after receiving — never a race, no locks involved."""
        det = RaceDetector()
        import queue

        chan = TrackedQueue(queue.Queue(), det, "chan")

        def producer():
            det.on_write("payload")
            chan.put(1)

        def consumer():
            chan.get()
            det.on_read("payload")

        run_pair(producer, consumer)
        assert det.race_count == 0

    def test_distinct_locations_do_not_race(self):
        det = RaceDetector()
        run_pair(lambda: det.on_write("a"), lambda: det.on_write("b"))
        assert det.race_count == 0

    def test_tracked_lock_positional_blocking(self):
        """threading.Condition's fallback ``_is_owned`` calls
        ``acquire(False)`` positionally — the shim must accept it."""
        det = RaceDetector()
        lock = TrackedLock(threading.Lock(), det, "cv")
        cv = threading.Condition(lock)
        with cv:
            cv.notify_all()
        assert not lock.locked()


class TestCommPoolVerdicts:
    def test_legacy_racy_pool_is_flagged(self):
        det = drive_pool_contended("legacy-racy", **DRIVE)
        assert det.race_count > 0
        assert all(f.rule == "lockset-race" for f in det.findings)
        assert all("pool_locked.py" in f.file for f in det.findings)

    def test_legacy_racy_verdict_is_deterministic(self):
        """The lockset half needs no lucky interleaving: every repeat
        of the pinned drive must reach the same verdict."""
        for _ in range(3):
            det = drive_pool_contended("legacy-racy", **DRIVE)
            assert det.race_count > 0

    def test_waitfree_pool_is_clean(self):
        det = drive_pool_contended("waitfree", **DRIVE)
        assert det.race_count == 0
        assert det.findings == []

    def test_locked_safe_pool_is_clean(self):
        det = drive_pool_contended("locked", **DRIVE)
        assert det.race_count == 0


class TestSchedulerAndService:
    def test_threaded_scheduler_runs_clean_under_patched_locks(self):
        """Every lock the threaded scheduler creates becomes a tracked
        lock; the solve must complete, match serial, and race-free."""
        from repro.core import DistributedRMCRT, benchmark_property_init
        from repro.grid import Box, Grid, decompose_level
        from repro.radiation import BurnsChristonBenchmark

        bench = BurnsChristonBenchmark(resolution=8)
        grid = Grid()
        grid.add_level(Box.cube(4), (2.0 / 8,) * 3)
        level = grid.add_level(Box.cube(8), (1.0 / 8,) * 3,
                               refinement_ratio=(2, 2, 2))
        decompose_level(level, (4, 4, 4))
        drm = DistributedRMCRT(
            grid, benchmark_property_init(bench),
            rays_per_cell=4, halo=2, seed=1,
        )
        serial = drm.solve("serial")
        det = RaceDetector()
        with patch_locks(det):
            threaded = drm.solve("threaded", num_threads=4)
        np.testing.assert_array_equal(serial.divq, threaded.divq)
        assert det.race_count == 0

    def test_datawarehouse_shim_flags_unordered_double_put(self):
        from repro.dw.datawarehouse import DataWarehouse
        from repro.dw.label import cc
        from repro.util.errors import DataWarehouseError

        det = RaceDetector()
        dw = instrument_datawarehouse(DataWarehouse(), det)
        phi = cc("phi")

        def put():
            try:
                dw.put(phi, 0, np.zeros(2))
            except DataWarehouseError:
                pass  # the double-compute guard fires for one thread

        run_pair(put, put)
        assert det.race_count == 1
        assert "dw:phi@p0" in det.distinct_locations()

    def test_worker_pool_shim_is_clean(self):
        """Batches hand off dispatcher -> shard through the tracked
        queues; the channel happens-before keeps the verdict clean."""
        from repro.service.batcher import Batch
        from repro.service.workers import WorkerPool

        class Sink:
            def expire(self, pending):
                pass

            def completed(self, *a, **k):
                pass

            def failed(self, *a, **k):
                pass

        det = RaceDetector()
        pool = WorkerPool(num_workers=2, sink=Sink())
        instrument_worker_pool(pool, det)
        pool.start()
        try:
            for i in range(8):
                pool.dispatch(Batch(scene_key=f"{i:08x}"))
        finally:
            pool.stop()
        assert det.race_count == 0
        # every batch hand-off was observed by the shim
        batch_locs = [k for k in det._locations if k.startswith("batch:")]
        assert len(batch_locs) >= 1
