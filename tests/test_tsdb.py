"""Tests for the embedded time-series store: append/ring-retention/
restart survival, the query API (range scans, rate with counter-reset
clamping, aligned downsampling), the snapshot collector's registry
flattening and cadence, scheduler/controller/serve wiring, and the
status --history rendering."""

import json

import pytest

from repro.perf.metrics import MetricsRegistry
from repro.perf.tsdb import (
    SnapshotCollector,
    TimeSeriesStore,
    flatten_registry,
    flatten_status,
    format_history,
    get_collector,
    set_collector,
    sparkline,
)
from repro.util.errors import PerfError


@pytest.fixture
def store(tmp_path):
    return TimeSeriesStore(tmp_path, rank=0, retention=8)


# ----------------------------------------------------------------------
# store basics
# ----------------------------------------------------------------------
class TestStore:
    def test_append_and_scan(self, store):
        for i in range(5):
            store.append({"x": float(i)}, t=100.0 + i)
        assert store.series("x") == [(100.0 + i, float(i)) for i in range(5)]
        assert store.series("x", t0=102.0, t1=103.0) == [
            (102.0, 2.0), (103.0, 3.0),
        ]
        assert store.names() == ["x"]
        assert store.latest()["x"] == 4.0

    def test_bad_retention_rejected(self, tmp_path):
        with pytest.raises(PerfError):
            TimeSeriesStore(tmp_path, retention=0)

    def test_ring_retention_compacts(self, store):
        # retention=8, compaction at 16 lines
        for i in range(20):
            store.append({"x": float(i)}, t=float(i))
        samples = store.samples()
        assert len(samples) <= 16
        # the newest samples always survive
        assert samples[-1]["x"] == 19.0
        lines = store.path.read_text().splitlines()
        assert len(lines) == len(samples)

    def test_compact_is_explicit_too(self, store):
        for i in range(10):
            store.append({"x": float(i)}, t=float(i))
        kept = store.compact()
        assert kept == 8
        assert [r["x"] for r in store.samples()] == [float(i) for i in range(2, 10)]

    def test_survives_restart(self, tmp_path):
        first = TimeSeriesStore(tmp_path, rank=3, retention=32)
        for i in range(4):
            first.append({"x": float(i)}, t=float(i))
        # a new process: fresh store object, same directory
        second = TimeSeriesStore(tmp_path, rank=3, retention=32)
        assert [r["x"] for r in second.samples()] == [0.0, 1.0, 2.0, 3.0]
        second.append({"x": 4.0}, t=4.0)
        assert len(second.samples()) == 5

    def test_torn_final_line_tolerated(self, tmp_path):
        store = TimeSeriesStore(tmp_path, retention=32)
        store.append({"x": 1.0}, t=1.0)
        store.append({"x": 2.0}, t=2.0)
        # simulate a crash mid-append: a half-written trailing line
        with store.path.open("a") as fh:
            fh.write('{"t": 3.0, "x":')
        reopened = TimeSeriesStore(tmp_path, retention=32)
        assert [r["x"] for r in reopened.samples()] == [1.0, 2.0]
        assert reopened.dropped_lines == 1
        # and appending continues cleanly after the torn line
        reopened.append({"x": 4.0}, t=4.0)
        assert reopened.samples()[-1]["x"] == 4.0


class TestQueries:
    def test_rate_of_monotone_counter(self, store):
        for i, total in enumerate([0.0, 10.0, 30.0, 60.0]):
            store.append({"rays": total}, t=float(i))
        assert store.rate("rays") == pytest.approx(20.0)

    def test_rate_clamps_counter_reset(self, store):
        # restart between t=1 and t=2 resets the counter to zero;
        # the negative delta must not produce a negative rate
        for t, total in [(0.0, 0.0), (1.0, 100.0), (2.0, 5.0), (3.0, 25.0)]:
            store.append({"rays": total}, t=t)
        # deltas 100, clamp(-95)->0, 20 over 3 seconds
        assert store.rate("rays") == pytest.approx(120.0 / 3.0)

    def test_rate_needs_two_points(self, store):
        assert store.rate("missing") is None
        store.append({"x": 1.0}, t=0.0)
        assert store.rate("x") is None

    def test_downsample_aligned_buckets(self, store):
        for t, v in [(0.5, 1.0), (1.5, 3.0), (10.2, 5.0), (10.9, 7.0)]:
            store.append({"x": v}, t=t)
        assert store.downsample("x", 10.0) == [(0.0, 2.0), (10.0, 6.0)]
        assert store.downsample("x", 10.0, agg="max") == [(0.0, 3.0), (10.0, 7.0)]
        assert store.downsample("x", 10.0, agg="last") == [(0.0, 3.0), (10.0, 7.0)]
        assert store.downsample("x", 10.0, agg="min") == [(0.0, 1.0), (10.0, 5.0)]

    def test_downsample_validates(self, store):
        with pytest.raises(PerfError):
            store.downsample("x", 0.0)
        with pytest.raises(PerfError):
            store.downsample("x", 1.0, agg="median")


class TestWindowEdges:
    """Regression tests for window-edge behavior: rate() baselines at
    the lower bound, counter-reset clamping at window boundaries,
    empty/single-sample windows, float bucket edges, and replay across
    ring-compaction seams."""

    def test_rate_includes_baseline_before_window(self, store):
        # counter: 0 @ t=0, 10 @ t=1, 30 @ t=2, 60 @ t=3
        for i, total in enumerate([0.0, 10.0, 30.0, 60.0]):
            store.append({"rays": total}, t=float(i))
        # a window opening at t=1.5 holds samples at t=2 and t=3 only;
        # the t=1 sample is the baseline, so the 10->30 increase that
        # straddles the edge is NOT dropped
        assert store.rate("rays", t0=1.5) == pytest.approx((20.0 + 30.0) / 2.0)

    def test_rate_single_sample_window_uses_baseline(self, store):
        for t, total in [(0.0, 0.0), (1.0, 10.0), (2.0, 30.0)]:
            store.append({"rays": total}, t=t)
        # window [1.5, 2.5] holds ONE sample; the pre-window baseline
        # at t=1 makes the rate answerable instead of None
        assert store.rate("rays", t0=1.5, t1=2.5) == pytest.approx(20.0)

    def test_rate_counter_reset_at_window_boundary(self, store):
        # the reset (100 -> 5) happens exactly across the window edge:
        # baseline 100 @ t=1, then 5 @ t=2, 25 @ t=3 in-window; the
        # negative delta clamps to zero instead of going negative
        for t, total in [(0.0, 0.0), (1.0, 100.0), (2.0, 5.0), (3.0, 25.0)]:
            store.append({"rays": total}, t=t)
        assert store.rate("rays", t0=1.5) == pytest.approx(20.0 / 2.0)

    def test_rate_empty_window_is_none(self, store):
        for i in range(4):
            store.append({"rays": float(i)}, t=float(i))
        assert store.rate("rays", t0=100.0, t1=200.0) is None
        # inverted window is a caller bug, answered with None not junk
        assert store.rate("rays", t0=3.0, t1=1.0) is None

    def test_rate_baseline_not_duplicated_when_t0_on_sample(self, store):
        # t0 exactly on a sample: that sample is in-window; the
        # baseline logic must not prepend it a second time
        for i, total in enumerate([0.0, 10.0, 30.0]):
            store.append({"rays": total}, t=float(i))
        assert store.rate("rays", t0=1.0) == pytest.approx(20.0)

    def test_rate_unchanged_without_bounds(self, store):
        for i, total in enumerate([0.0, 10.0, 30.0, 60.0]):
            store.append({"rays": total}, t=float(i))
        assert store.rate("rays") == pytest.approx(20.0)

    def test_downsample_float_bucket_edges(self, store):
        # 0.3 // 0.1 == 2.0 in floats: a sample exactly on a bucket
        # edge must open its own bucket, not fall into the previous one
        for t, v in [(0.0, 1.0), (0.1, 2.0), (0.2, 3.0), (0.3, 4.0)]:
            store.append({"x": v}, t=t)
        edges = [e for e, _ in store.downsample("x", 0.1)]
        assert edges == pytest.approx([0.0, 0.1, 0.2, 0.3])
        assert [v for _, v in store.downsample("x", 0.1)] == [
            1.0, 2.0, 3.0, 4.0]

    def test_series_skips_nonfinite_and_bools(self, store):
        store.append({"x": 1.0, "flag": True}, t=0.0)
        store.append({"x": float("nan")}, t=1.0)
        store.append({"x": float("inf")}, t=2.0)
        store.append({"x": 2.0}, t=3.0)
        assert store.series("x") == [(0.0, 1.0), (3.0, 2.0)]
        assert store.series("flag") == []

    def test_rate_stable_across_compaction_seam(self, tmp_path):
        # ring compaction drops the oldest half; the rate over the
        # surviving window must equal the rate a fresh store computes
        # over the same samples — no phantom resets at the seam
        store = TimeSeriesStore(tmp_path, rank=0, retention=8)
        for i in range(40):  # several compactions
            store.append({"rays": 10.0 * i}, t=float(i))
        survived = store.series("rays")
        assert len(survived) <= 16
        t_first = survived[0][0]
        expected = (survived[-1][1] - survived[0][1]) / (
            survived[-1][0] - t_first)
        assert store.rate("rays") == pytest.approx(expected)
        # and windowed: opening mid-seam still sees a clean baseline
        assert store.rate("rays", t0=t_first + 1.5) == pytest.approx(10.0)


# ----------------------------------------------------------------------
# flattening + collector
# ----------------------------------------------------------------------
class TestFlatten:
    def test_registry_flattening(self):
        reg = MetricsRegistry()
        reg.counter("rays", kernel="trace").inc(42)
        reg.gauge("queue").set(3)
        h = reg.histogram("lat_s")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        fields = flatten_registry(reg)
        assert fields["rays{kernel=trace}"] == 42.0
        assert fields["queue"] == 3.0
        assert fields["lat_s.count"] == 3.0
        assert "lat_s.p95" in fields and "lat_s.mean" in fields

    def test_status_flattening(self):
        snapshot = {
            "uptime_s": 5.0,
            "queue_depth": 2,
            "degraded": True,
            "endpoints": {
                "solve": {"requests": 4, "errors": 1, "error_rate": 0.25,
                          "p50_s": 0.1, "p95_s": 0.2, "p99_s": None},
            },
        }
        fields = flatten_status(snapshot)
        assert fields["slo.queue_depth"] == 2.0
        assert fields["slo.degraded"] == 1.0
        assert fields["slo.solve.p95_s"] == 0.2
        assert "slo.solve.p99_s" not in fields  # None stays out


class TestCollector:
    def test_sample_captures_registry_and_extra(self, store):
        reg = MetricsRegistry()
        reg.counter("n").inc(7)
        coll = SnapshotCollector(
            store, registry=reg, extra=lambda: {"q": 3, "flag": True}
        )
        rec = coll.sample(step=2)
        assert rec["n"] == 7.0
        assert rec["q"] == 3.0
        assert rec["flag"] == 1.0
        assert rec["step"] == 2.0
        assert coll.samples_taken == 1

    def test_cadence_suppresses_rapid_samples(self, store):
        reg = MetricsRegistry()
        coll = SnapshotCollector(store, registry=reg, interval_s=3600.0)
        assert coll.maybe_sample() is not None
        assert coll.maybe_sample() is None
        assert coll.samples_taken == 1

    def test_zero_interval_always_samples(self, store):
        coll = SnapshotCollector(store, registry=MetricsRegistry())
        coll.maybe_sample()
        coll.maybe_sample()
        assert coll.samples_taken == 2

    def test_default_collector_install(self, store):
        coll = SnapshotCollector(store, registry=MetricsRegistry())
        previous = set_collector(coll)
        try:
            assert get_collector() is coll
        finally:
            set_collector(previous)


# ----------------------------------------------------------------------
# runtime wiring
# ----------------------------------------------------------------------
class TestRuntimeWiring:
    def test_distributed_run_samples_collector(self, tmp_path):
        from repro.perf.profile import run_profile

        store = TimeSeriesStore(tmp_path / "tsdb", retention=64)
        coll = SnapshotCollector(store, registry=None, interval_s=0.0)
        previous = set_collector(coll)
        try:
            run_profile(
                steps=2,
                resolution=12,
                rays_per_cell=2,
                num_ranks=2,
                trace_path=str(tmp_path / "trace.json"),
                metrics_path=str(tmp_path / "metrics.json"),
            )
        finally:
            set_collector(previous)
        # sampled by the scheduler after each of the 2 executes
        assert coll.samples_taken >= 2
        names = store.names()
        assert any(n.startswith("scheduler.") for n in names)

    def test_controller_explicit_collector(self, tmp_path):
        import numpy as np

        from repro.dw import cc
        from repro.grid import Box, Grid, decompose_level
        from repro.runtime import Computes, SimulationController, Task, TaskGraph

        phi = cc("phi")
        grid = Grid()
        level = grid.add_level(Box.cube(8), (1.0 / 8,) * 3)
        decompose_level(level, (4, 4, 4))

        def noop(ctx):
            ctx.compute(phi, np.zeros(ctx.patch.box.shape))

        graph = TaskGraph(grid)
        graph.add_task(Task("noop", noop, computes=[Computes(phi)]), 0)
        compiled = graph.compile()
        store = TimeSeriesStore(tmp_path, retention=64)
        coll = SnapshotCollector(store, registry=MetricsRegistry())
        ctrl = SimulationController(compiled, collector=coll)
        ctrl.run(3, dt=0.1)
        steps = [v for _, v in store.series("step")]
        assert steps == [1.0, 2.0, 3.0]
        assert store.series("sim_time")[-1][1] == pytest.approx(0.3)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
class TestRendering:
    def test_sparkline_shape(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
        line = sparkline([0.0, 5.0, 10.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_format_history(self, store):
        for i in range(6):
            store.append(
                {"slo.solve.p95_s": 0.1 * i, "slo.queue_depth": float(i % 3)},
                t=float(i),
            )
        text = format_history(store)
        assert "6 samples" in text
        assert "slo.solve.p95_s" in text
        assert "slo.queue_depth" in text

    def test_format_history_empty(self, store):
        assert "no tsdb samples" in format_history(store)


class TestStatusHistoryCli:
    def test_status_history_renders(self, tmp_path, capsys):
        from repro.service.cli import cmd_status

        spool = tmp_path / "spool"
        store = TimeSeriesStore(spool / "tsdb", rank=0, retention=32)
        for i in range(4):
            store.append({"slo.solve.p95_s": 0.1 + 0.01 * i}, t=float(i))
        (spool / "status.json").write_text(json.dumps({
            "uptime_s": 1.0, "queue_depth": 0, "degraded": False,
            "breaches": [], "policy": {}, "endpoints": {},
        }))
        rc = cmd_status(["--spool", str(spool), "--history"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "history:" in out
        assert "slo.solve.p95_s" in out

    def test_status_without_history_flag_stays_quiet(self, tmp_path, capsys):
        from repro.service.cli import cmd_status

        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "status.json").write_text(json.dumps({
            "uptime_s": 1.0, "queue_depth": 0, "degraded": False,
            "breaches": [], "policy": {}, "endpoints": {},
        }))
        rc = cmd_status(["--spool", str(spool)])
        assert rc == 0
        assert "history:" not in capsys.readouterr().out

    def test_watch_implies_history_when_tsdb_present(self, tmp_path, capsys):
        from repro.service.cli import cmd_status

        spool = tmp_path / "spool"
        store = TimeSeriesStore(spool / "tsdb", rank=0, retention=32)
        store.append({"slo.queue_depth": 1.0}, t=0.0)
        (spool / "status.json").write_text(json.dumps({
            "uptime_s": 1.0, "queue_depth": 1, "degraded": False,
            "breaches": [], "policy": {}, "endpoints": {},
        }))
        rc = cmd_status(
            ["--spool", str(spool), "--watch", "--max-refreshes", "1",
             "--interval", "0.01"]
        )
        assert rc == 0
        assert "history:" in capsys.readouterr().out
