"""Static task-graph validation: the broken-graph fixture must light
up, the real three-level RMCRT graph must be clean, and compilation
must refuse graphs the validator rejects."""

import dataclasses

import pytest

from repro.check import validate_compiled, validate_taskgraph
from repro.check.cli import broken_taskgraph, demo_taskgraph
from repro.dw.label import cc
from repro.grid import Box, Grid, decompose_level
from repro.grid.loadbalance import LoadBalancer
from repro.runtime.task import Computes, Requires, Task
from repro.runtime.taskgraph import TaskGraph
from repro.util.errors import SchedulerError


def rules(findings):
    return sorted(f.rule for f in findings)


def small_graph():
    grid = Grid()
    level = grid.add_level(Box.cube(8), (1.0 / 8,) * 3)
    decompose_level(level, (4, 4, 4))
    return grid, TaskGraph(grid)


def noop(ctx):
    pass


class TestBrokenGraph:
    def test_fixture_flags_both_defects(self):
        findings = validate_taskgraph(broken_taskgraph())
        assert rules(findings) == ["graph-dangling-consumer",
                                   "graph-write-write"]
        assert all(f.severity == "error" for f in findings)

    def test_compile_refuses_broken_graph(self):
        with pytest.raises(SchedulerError, match="failed validation"):
            broken_taskgraph().compile()

    def test_compile_can_opt_out(self):
        # validate=False preserves the old permissive behavior (the
        # dangling consumer simply never receives data)
        graph = broken_taskgraph().compile(validate=False)
        assert len(graph.detailed_tasks) > 0

    def test_empty_graph(self):
        _, tg = small_graph()
        assert rules(validate_taskgraph(tg)) == ["graph-empty"]

    def test_dangling_level_consumer(self):
        from repro.dw.label import per_level

        _, tg = small_graph()
        tg.add_task(
            Task("t", noop,
                 requires=[Requires(per_level("coarse"), level_index=0)],
                 computes=[Computes(cc("out"))]),
            0,
        )
        assert "graph-dangling-consumer" in rules(validate_taskgraph(tg))

    def test_old_dw_requires_need_no_producer(self):
        _, tg = small_graph()
        tg.add_task(
            Task("t", noop,
                 requires=[Requires(cc("prev"), dw="old")],
                 computes=[Computes(cc("out"))]),
            0,
        )
        assert validate_taskgraph(tg) == []

    def test_ordered_write_write_is_clean(self):
        """Two writers of the same variable ARE allowed when dataflow
        orders them (producer -> consumer-that-rewrites)."""
        _, tg = small_graph()
        phi = cc("phi")
        tg.add_task(Task("init", noop, computes=[Computes(phi)]), 0)
        tg.add_task(
            Task("smooth", noop, requires=[Requires(phi)],
                 computes=[Computes(phi)]),
            0,
        )
        assert validate_taskgraph(tg) == []


class TestCompiledGraphChecks:
    def compiled(self):
        _, tg = small_graph()
        phi = cc("phi")
        tg.add_task(Task("produce", noop, computes=[Computes(phi)]), 0)
        tg.add_task(
            Task("consume", noop, requires=[Requires(phi, num_ghost=1)],
                 computes=[Computes(cc("out"))]),
            0,
        )
        fine = tg.grid.finest_level
        assignment = LoadBalancer(2).assign(fine.patches)
        return tg.compile(assignment=assignment, num_ranks=2)

    def test_real_compile_is_clean(self):
        graph = self.compiled()
        assert graph.messages, "fixture should produce ghost traffic"
        assert validate_compiled(graph) == []

    def test_orphan_message_flagged(self):
        graph = self.compiled()
        bad = dataclasses.replace(graph.messages[0], dst_dtask_id=9999)
        graph.messages[0] = bad
        assert "graph-ghost-orphan" in rules(validate_compiled(graph))

    def test_out_of_range_rank_flagged(self):
        graph = self.compiled()
        bad = dataclasses.replace(graph.messages[0], dst_rank=7)
        graph.messages[0] = bad
        found = rules(validate_compiled(graph))
        assert "graph-ghost-orphan" in found

    def test_disjoint_region_flagged(self):
        graph = self.compiled()
        far = Box((100, 100, 100), (102, 102, 102))
        bad = dataclasses.replace(graph.messages[0], region=far)
        graph.messages[0] = bad
        assert "graph-ghost-region" in rules(validate_compiled(graph))


class TestThreeLevelRMCRTGraphClean:
    def test_declarations_clean(self):
        tg = demo_taskgraph()
        assert validate_taskgraph(tg) == []

    def test_compiled_clean_across_ranks(self):
        tg = demo_taskgraph()
        fine = tg.grid.finest_level
        assignment = LoadBalancer(4).assign(fine.patches)
        graph = tg.compile(assignment=assignment, num_ranks=4)
        assert graph.messages, "three-level graph must ship ghosts + levels"
        assert validate_compiled(graph) == []
