"""Tests for the batched DDA marching engine.

The invariants: exact agreement with the scalar reference, exact path
lengths, correct accumulation physics (attenuation algebra), ROI
parking, reflections, and termination guarantees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import Box, CellType
from repro.core import (
    LevelFields,
    RayBatch,
    RayStatus,
    isotropic_directions,
    march,
    march_single_ray,
    trace_rays_scalar,
)
from repro.radiation import RadiativeProperties
from repro.util.errors import ReproError


def make_fields(n=8, kappa=1.0, st4=1.0, wall_t4=0.0, wall_emis=1.0, dx=None, kappa_field=None):
    box = Box.cube(n)
    abskg = kappa_field if kappa_field is not None else np.full(box.extent, kappa)
    props = RadiativeProperties.from_fields(
        box,
        abskg=abskg,
        sigma_t4=np.full(box.extent, st4),
        wall_emissivity=wall_emis,
    )
    if wall_t4 != 0.0:
        # set wall ring emissive power directly (sigma*T^4 units)
        ring = props.sigma_t4
        mask = props.cell_type != CellType.FLOW
        ring[mask] = wall_t4
    h = dx if dx is not None else 1.0 / n
    return LevelFields(
        abskg=props.abskg,
        sigma_t4=props.sigma_t4,
        cell_type=props.cell_type,
        interior=box,
        dx=(h,) * 3,
        anchor=(0.0, 0.0, 0.0),
    )


def center_origin(fields, n):
    return np.tile(np.asarray(fields.cell_center(np.array([n // 2] * 3))), (1, 1))


class TestAnalyticSingleRay:
    def test_axis_ray_homogeneous_medium(self):
        """A +x axis ray from the domain centre: sumI has a closed form.

        Through a homogeneous medium (kappa, Ib = st4/pi) to a cold
        black wall at distance L: sumI = Ib * (1 - exp(-kappa L)).
        """
        n, kappa = 8, 2.0
        fields = make_fields(n, kappa=kappa)
        origin = fields.cell_center(np.array([n // 2, n // 2, n // 2]))
        L = 1.0 - origin[0]
        batch = RayBatch.fresh(origin[None, :], np.array([[1.0, 0.0, 0.0]]))
        march(fields=fields, batch=batch, threshold=1e-12)
        expected = (1.0 / np.pi) * (1.0 - np.exp(-kappa * L))
        assert np.isclose(batch.sum_i[0], expected, rtol=1e-12)
        assert batch.status[0] == RayStatus.WALL_HIT

    def test_diagonal_ray_path_length(self):
        """Total optical depth equals kappa times the chord length."""
        n, kappa = 8, 3.0
        fields = make_fields(n, kappa=kappa)
        origin = np.array([[0.3, 0.4, 0.2]])
        d = np.array([[1.0, 1.0, 1.0]]) / np.sqrt(3)
        batch = RayBatch.fresh(origin, d)
        march(fields=fields, batch=batch, threshold=1e-14)
        # chord: exits when any coordinate reaches 1; x first? all equal rate,
        # limiting coordinate is max start -> y reaches 1 after 0.6*sqrt(3)
        t_exit = (1.0 - 0.4) * np.sqrt(3)
        # after wall entry the march stops; tau accumulated over the chord
        assert np.isclose(batch.tau[0], kappa * t_exit, rtol=1e-10)

    def test_hot_wall_contribution(self):
        """Cold medium (no emission), hot black wall: sumI = Ib_wall * exp(-tau)."""
        n, kappa = 6, 1.5
        fields = make_fields(n, kappa=kappa, st4=0.0, wall_t4=2.0)
        origin = fields.cell_center(np.array([3, 3, 3]))
        batch = RayBatch.fresh(origin[None, :], np.array([[0.0, 0.0, -1.0]]))
        march(fields=fields, batch=batch, threshold=1e-14)
        L = origin[2]  # distance to z=0 wall
        expected = (2.0 / np.pi) * np.exp(-kappa * L)
        assert np.isclose(batch.sum_i[0], expected, rtol=1e-12)

    def test_threshold_extinction(self):
        """A huge optical depth kills the ray before it reaches a wall."""
        fields = make_fields(8, kappa=500.0)
        origin = fields.cell_center(np.array([4, 4, 4]))
        batch = RayBatch.fresh(origin[None, :], np.array([[1.0, 0.0, 0.0]]))
        march(fields=fields, batch=batch, threshold=1e-3)
        assert batch.status[0] == RayStatus.EXTINCT
        # it absorbed essentially all the emission along the way
        assert np.isclose(batch.sum_i[0], 1.0 / np.pi, rtol=1e-2)

    def test_zero_direction_component(self):
        fields = make_fields(8)
        origin = fields.cell_center(np.array([4, 4, 4]))
        batch = RayBatch.fresh(origin[None, :], np.array([[0.0, 1.0, 0.0]]))
        march(fields=fields, batch=batch)
        assert batch.status[0] == RayStatus.WALL_HIT


class TestDifferential:
    """Vectorized batch kernel == scalar reference, ray for ray."""

    @pytest.mark.parametrize("kappa", [0.1, 1.0, 10.0])
    def test_homogeneous(self, kappa):
        fields = make_fields(8, kappa=kappa)
        rng = np.random.default_rng(11)
        cells = rng.integers(0, 8, size=(64, 3))
        origins = np.asarray(fields.cell_center(cells))
        dirs = isotropic_directions(rng, 64)
        scalar = trace_rays_scalar(fields, origins, dirs)
        batch = RayBatch.fresh(origins, dirs)
        march(fields=fields, batch=batch)
        np.testing.assert_allclose(batch.sum_i, scalar, rtol=0, atol=1e-15)

    def test_heterogeneous_medium(self):
        rng = np.random.default_rng(13)
        kf = rng.random((8, 8, 8)) * 5
        fields = make_fields(8, kappa_field=kf)
        origins = np.asarray(fields.cell_center(rng.integers(0, 8, size=(128, 3))))
        dirs = isotropic_directions(rng, 128)
        scalar = trace_rays_scalar(fields, origins, dirs)
        batch = RayBatch.fresh(origins, dirs)
        march(fields=fields, batch=batch)
        np.testing.assert_allclose(batch.sum_i, scalar, rtol=0, atol=1e-15)

    def test_with_reflections(self):
        fields = make_fields(6, kappa=2.0, wall_emis=0.5)
        rng = np.random.default_rng(17)
        origins = np.asarray(fields.cell_center(rng.integers(0, 6, size=(64, 3))))
        dirs = isotropic_directions(rng, 64)
        scalar = trace_rays_scalar(fields, origins, dirs, reflections=True)
        batch = RayBatch.fresh(origins, dirs)
        march(fields=fields, batch=batch, reflections=True)
        np.testing.assert_allclose(batch.sum_i, scalar, rtol=0, atol=1e-14)

    def test_roi_parking_matches_scalar(self):
        fields = make_fields(8, kappa=1.0)
        roi = Box((2, 2, 2), (6, 6, 6))
        rng = np.random.default_rng(19)
        cells = rng.integers(3, 5, size=(32, 3))
        origins = np.asarray(fields.cell_center(cells))
        dirs = isotropic_directions(rng, 32)
        batch = RayBatch.fresh(origins, dirs)
        march(fields=fields, batch=batch, roi=roi)
        for r in range(32):
            s, tau, status, exit_pos = march_single_ray(
                fields, origins[r], dirs[r], roi=roi
            )
            assert batch.status[r] == status
            assert np.isclose(batch.sum_i[r], s, atol=1e-15)
            if status == RayStatus.LEFT_ROI:
                assert np.allclose(batch.exit_pos[r], exit_pos, atol=1e-12)


class TestROI:
    def test_all_rays_park_with_tiny_roi(self):
        fields = make_fields(8, kappa=0.5)
        roi = Box((3, 3, 3), (5, 5, 5))
        origins = np.asarray(fields.cell_center(np.full((16, 3), 4)))
        dirs = isotropic_directions(np.random.default_rng(0), 16)
        batch = RayBatch.fresh(origins, dirs)
        march(fields=fields, batch=batch, roi=roi)
        assert (batch.status == RayStatus.LEFT_ROI).all()
        # exit positions sit on the ROI boundary shell
        lo = np.array([3, 3, 3]) * fields.dx[0]
        hi = np.array([5, 5, 5]) * fields.dx[0]
        eps = 1e-9
        on_shell = (
            (np.abs(batch.exit_pos - lo) < eps) | (np.abs(batch.exit_pos - hi) < eps)
        ).any(axis=1)
        assert on_shell.all()

    def test_handoff_continuation_equals_uninterrupted(self):
        """Park at an ROI then resume on the SAME level == never parking."""
        fields = make_fields(8, kappa=1.3)
        roi = Box((2, 2, 2), (6, 6, 6))
        rng = np.random.default_rng(23)
        origins = np.asarray(fields.cell_center(rng.integers(3, 5, size=(64, 3))))
        dirs = isotropic_directions(rng, 64)

        uninterrupted = RayBatch.fresh(origins.copy(), dirs.copy())
        march(fields=fields, batch=uninterrupted)

        two_phase = RayBatch.fresh(origins.copy(), dirs.copy())
        march(fields=fields, batch=two_phase, roi=roi)
        march(fields=fields, batch=two_phase, from_handoff=True)

        np.testing.assert_allclose(two_phase.sum_i, uninterrupted.sum_i, atol=1e-9)
        assert not (two_phase.status == RayStatus.LEFT_ROI).any()

    def test_roi_outside_ring_rejected(self):
        fields = make_fields(4)
        with pytest.raises(ReproError):
            march(
                fields=fields,
                batch=RayBatch.fresh(np.array([[0.5, 0.5, 0.5]]), np.array([[1.0, 0, 0]])),
                roi=Box((-5, -5, -5), (10, 10, 10)),
            )


class TestReflections:
    def test_perfect_mirror_extinction(self):
        """emissivity ~ 0 walls: rays bounce until the threshold kills them,
        and in a hot medium they absorb the full local emission."""
        fields = make_fields(6, kappa=0.5, wall_emis=1e-12)
        origins = np.asarray(fields.cell_center(np.full((8, 3), 3)))
        dirs = isotropic_directions(np.random.default_rng(1), 8)
        batch = RayBatch.fresh(origins, dirs)
        march(fields=fields, batch=batch, reflections=True, threshold=1e-3)
        assert (batch.status == RayStatus.EXTINCT).all()
        # infinite reflections in a hot medium: sumI -> Ib = 1/pi
        assert np.allclose(batch.sum_i, 1 / np.pi, rtol=5e-3)

    def test_reflective_walls_increase_sum(self):
        fields_black = make_fields(6, kappa=0.5, wall_emis=1.0)
        fields_refl = make_fields(6, kappa=0.5, wall_emis=0.3)
        origins = np.asarray(fields_black.cell_center(np.full((32, 3), 3)))
        dirs = isotropic_directions(np.random.default_rng(2), 32)
        b1 = RayBatch.fresh(origins.copy(), dirs.copy())
        march(fields=fields_black, batch=b1)
        b2 = RayBatch.fresh(origins.copy(), dirs.copy())
        march(fields=fields_refl, batch=b2, reflections=True)
        assert b2.sum_i.mean() > b1.sum_i.mean()


class TestBatchMechanics:
    def test_fresh_validates_shapes(self):
        with pytest.raises(ReproError):
            RayBatch.fresh(np.zeros((3, 2)), np.zeros((3, 2)))
        with pytest.raises(ReproError):
            RayBatch.fresh(np.zeros((3, 3)), np.zeros((4, 3)))

    def test_empty_batch(self):
        fields = make_fields(4)
        batch = RayBatch.fresh(np.zeros((0, 3)), np.zeros((0, 3)))
        march(fields=fields, batch=batch)
        assert batch.n == 0

    def test_max_steps_guard(self):
        fields = make_fields(8, kappa=0.0)  # no absorption: never extinct
        # with kappa=0 rays still terminate at walls, so force failure
        # with an absurd cap
        origins = np.asarray(fields.cell_center(np.array([[4, 4, 4]])))
        dirs = np.array([[1.0, 0.0, 0.0]])
        batch = RayBatch.fresh(origins, dirs)
        with pytest.raises(ReproError):
            march(fields=fields, batch=batch, max_steps=1)

    def test_statuses_partition(self):
        fields = make_fields(8, kappa=1.0)
        rng = np.random.default_rng(3)
        origins = np.asarray(fields.cell_center(rng.integers(0, 8, size=(256, 3))))
        dirs = isotropic_directions(rng, 256)
        batch = RayBatch.fresh(origins, dirs)
        march(fields=fields, batch=batch)
        assert not (batch.status == RayStatus.ALIVE).any()
        assert set(np.unique(batch.status)) <= {
            int(RayStatus.WALL_HIT),
            int(RayStatus.EXTINCT),
        }

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_property_sum_i_bounded(self, seed):
        """For st4 = 1 everywhere (walls cold), sumI in [0, 1/pi]."""
        fields = make_fields(6, kappa=2.0)
        rng = np.random.default_rng(seed)
        origins = np.asarray(fields.cell_center(rng.integers(0, 6, size=(16, 3))))
        dirs = isotropic_directions(rng, 16)
        batch = RayBatch.fresh(origins, dirs)
        march(fields=fields, batch=batch)
        assert (batch.sum_i >= 0).all()
        assert (batch.sum_i <= 1 / np.pi + 1e-12).all()
