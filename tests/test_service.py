"""Tests for the radiation-solve service layer.

The contract under test: solves are content-addressed — a burst of N
identical requests performs exactly one ray trace (coalescing + cache
collapse the rest) and returns bit-identical divq to a direct
``run_ups`` — while overload, deadlines, and worker failures surface
as :class:`ServiceError`, never as hangs or wrong answers.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.perf.metrics import MetricsRegistry, set_metrics
from repro.service import (
    RadiationService,
    ResultCache,
    ServiceClient,
    ServiceConfig,
    SubmissionQueue,
)
from repro.service.schema import CachedSolve
from repro.ups import ProblemSpec, RMCRTSpec, GridSpec, parse_ups, run_ups
from repro.util.errors import ServiceError


@pytest.fixture(autouse=True)
def registry():
    """Fresh process-default registry per test (service publishes into
    the default when not handed one explicitly)."""
    fresh = MetricsRegistry()
    previous = set_metrics(fresh)
    yield fresh
    set_metrics(previous)


def small_spec(seed=1, rays=3) -> ProblemSpec:
    return ProblemSpec(
        grid=GridSpec(resolution=12, levels=2, refinement_ratio=2, patch_size=6),
        rmcrt=RMCRTSpec(n_divq_rays=rays, random_seed=seed),
    )


def tiny_spec(seed=0) -> ProblemSpec:
    """Single-level serial problem — milliseconds per solve."""
    return ProblemSpec(
        grid=GridSpec(resolution=8, levels=1), rmcrt=RMCRTSpec(n_divq_rays=1, random_seed=seed)
    )


class TestCacheAndCoalesce:
    def test_burst_of_identical_requests_is_one_solve(self):
        spec = small_spec()
        reference = run_ups(spec)
        with RadiationService(ServiceConfig(workers=2)) as svc:
            client = ServiceClient(svc)
            results = client.solve_many([spec] * 6, timeout=60)
            stats = svc.stats()
        assert stats["solves"] == 1
        assert stats["coalesced"] + stats["cache_hits_memory"] == 5
        for result in results:
            np.testing.assert_array_equal(result.divq, reference.divq)
        assert sum(not r.cache_hit and not r.coalesced for r in results) == 1

    def test_sequential_duplicates_hit_cache(self):
        spec = small_spec()
        with ServiceClient(ServiceConfig(workers=1)) as client:
            first = client.solve(spec, timeout=60)
            second = client.solve(spec, timeout=60)
            third = client.solve(spec, timeout=60)
        assert not first.cache_hit
        assert second.cache_hit and third.cache_hit
        assert second.attempts == 0 and second.worker == -1
        np.testing.assert_array_equal(first.divq, second.divq)
        # the original solve's cost rides along with the cached payload
        assert second.solve_time_s == first.solve_time_s

    def test_distinct_seeds_are_distinct_solves(self):
        with ServiceClient(ServiceConfig(workers=2)) as client:
            a, b = client.solve_many(
                [small_spec(seed=1), small_spec(seed=2)], timeout=60
            )
        assert a.fingerprint != b.fingerprint
        assert not np.array_equal(a.divq, b.divq)

    def test_disk_cache_warm_starts_new_service(self, tmp_path, registry):
        spec = small_spec()
        cache_dir = tmp_path / "results"
        with ServiceClient(
            ServiceConfig(workers=1, cache_dir=str(cache_dir))
        ) as client:
            first = client.solve(spec, timeout=60)
        registry.clear()  # new service process, fresh series
        with ServiceClient(
            ServiceConfig(workers=1, cache_dir=str(cache_dir))
        ) as client:
            second = client.solve(spec, timeout=60)
            stats = client.service.stats()
        assert stats["solves"] == 0
        assert stats["cache_hits_disk"] == 1
        np.testing.assert_array_equal(first.divq, second.divq)

    def test_no_cache_config_re_solves_every_request(self):
        spec = tiny_spec()
        config = ServiceConfig(workers=1, cache_capacity=0, coalesce=False)
        with ServiceClient(config) as client:
            for _ in range(3):
                result = client.solve(spec, timeout=60)
                assert not result.cache_hit and not result.coalesced
            stats = client.service.stats()
        assert stats["solves"] == 3

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(capacity=4, directory=tmp_path)
        cache.put(CachedSolve("ab" * 32, np.ones((2, 2, 2)), 8, 0.1))
        (tmp_path / ("ab" * 32 + ".json")).write_text("{not json")
        fresh = ResultCache(capacity=4, directory=tmp_path)
        assert fresh.get("ab" * 32) is None

    def test_spectral_specs_cache_separately_from_gray(self):
        """A gray spec and its gray-limit spectral twin return the same
        numbers but run different code paths — they must occupy
        distinct cache entries, never coalesce into one solve."""
        from repro.ups import SpectralSpec

        gray = tiny_spec()
        spectral = tiny_spec()
        spectral.spectral = SpectralSpec(
            bands=1, temperature=1000.0, kappa_exponent=0.0, emissivity="gray"
        )
        with ServiceClient(ServiceConfig(workers=2)) as client:
            a, b = client.solve_many([gray, spectral], timeout=60)
            stats = client.service.stats()
        assert stats["solves"] == 2
        assert a.fingerprint != b.fingerprint
        assert not a.cache_hit and not b.cache_hit
        assert not a.coalesced and not b.coalesced
        # the gray limit is the numerical identity, through the service too
        np.testing.assert_array_equal(a.divq, b.divq)


class TestBackpressureAndDeadlines:
    def test_full_pipeline_rejects_with_backpressure(self):
        release = threading.Event()

        def blocking_hook(fingerprint, attempt):
            release.wait(timeout=30.0)

        config = ServiceConfig(
            workers=1,
            max_queue=1,
            max_batch=1,
            shard_queue_depth=1,
            submit_timeout_s=0.05,
            fault_hook=blocking_hook,
        )
        svc = RadiationService(config)
        try:
            handles = []
            with pytest.raises(ServiceError, match="backpressure|full"):
                for seed in range(10):
                    handles.append(svc.submit(tiny_spec(seed=seed)))
            assert svc.stats()["rejected"] >= 1
            release.set()
            for handle in handles:
                handle.result(timeout=60)
        finally:
            release.set()
            svc.stop()

    def test_expired_deadline_fails_the_request(self):
        spec = tiny_spec()
        with RadiationService(ServiceConfig(workers=1)) as svc:
            handle = svc.submit(spec, deadline_s=0.0)
            with pytest.raises(ServiceError, match="deadline"):
                handle.result(timeout=60)
            assert svc.stats()["expired"] >= 1

    def test_queue_close_unblocks_getters(self):
        q = SubmissionQueue(maxsize=2)
        q.close()
        assert q.get(timeout=1.0) is None
        with pytest.raises(ServiceError):
            q.put(object())


class TestRetries:
    def test_transient_failure_retried_to_success(self):
        failed_once = set()

        def flaky_hook(fingerprint, attempt):
            if fingerprint not in failed_once:
                failed_once.add(fingerprint)
                raise RuntimeError("injected transient fault")

        config = ServiceConfig(workers=1, max_retries=2, fault_hook=flaky_hook)
        spec = small_spec()
        reference = run_ups(spec)
        with RadiationService(config) as svc:
            result = svc.submit(spec).result(timeout=60)
            stats = svc.stats()
        assert result.attempts == 2
        assert stats["retries"] == 1
        np.testing.assert_array_equal(result.divq, reference.divq)

    def test_permanent_failure_exhausts_retries(self):
        def broken_hook(fingerprint, attempt):
            raise RuntimeError("injected permanent fault")

        config = ServiceConfig(
            workers=1, max_retries=1, retry_backoff_s=0.001, fault_hook=broken_hook
        )
        with RadiationService(config) as svc:
            handle = svc.submit(tiny_spec())
            with pytest.raises(ServiceError, match="failed after 2 attempt"):
                handle.result(timeout=60)
            assert svc.stats()["failed"] == 1

    def test_failure_fails_coalesced_riders_too(self):
        def broken_hook(fingerprint, attempt):
            raise RuntimeError("injected fault")

        config = ServiceConfig(
            workers=1, max_retries=0, retry_backoff_s=0.001,
            batch_window_s=0.05, fault_hook=broken_hook,
        )
        spec = tiny_spec()
        with RadiationService(config) as svc:
            handles = [svc.submit(spec) for _ in range(3)]
            for handle in handles:
                with pytest.raises(ServiceError):
                    handle.result(timeout=60)


class TestProcessBackend:
    def test_process_solve_matches_run_ups(self):
        spec = small_spec()
        reference = run_ups(spec)
        with ServiceClient(ServiceConfig(workers=1, backend="process")) as client:
            result = client.solve(spec, timeout=120)
        np.testing.assert_array_equal(result.divq, reference.divq)
        assert result.rays_traced == reference.rays_traced

    def test_unknown_backend_rejected(self):
        with pytest.raises(ServiceError):
            RadiationService(ServiceConfig(backend="fpga"))


class TestLifecycle:
    def test_submit_after_stop_raises(self):
        svc = RadiationService(ServiceConfig(workers=1))
        svc.start()
        svc.stop()
        with pytest.raises(ServiceError):
            svc.submit(tiny_spec())

    def test_stop_drains_submitted_work(self):
        spec = tiny_spec()
        svc = RadiationService(ServiceConfig(workers=1))
        handles = [svc.submit(spec) for _ in range(4)]
        svc.stop()
        for handle in handles:
            assert handle.done()
            handle.result(timeout=0)

    def test_registry_clear_between_service_solves(self, registry):
        """The satellite contract: long-lived processes clear() the
        registry between workloads and series start from zero."""
        spec = tiny_spec()
        with ServiceClient(ServiceConfig(workers=1)) as client:
            client.solve(spec, timeout=60)
            assert client.service.stats()["solves"] == 1
            registry.clear()
            assert client.service.stats()["solves"] == 0
            client.solve(tiny_spec(seed=9), timeout=60)
            assert client.service.stats()["solves"] == 1
        assert registry.value("service.requests") == 1


UPS_TEXT = """
<Uintah_specification>
  <Grid>
    <resolution> 12 </resolution>
    <levels> 2 </levels>
    <refinement_ratio> 2 </refinement_ratio>
    <patch_size> 6 </patch_size>
  </Grid>
  <RMCRT>
    <nDivQRays> 3 </nDivQRays>
    <randomSeed> 1 </randomSeed>
  </RMCRT>
  <Scheduler type="serial"/>
</Uintah_specification>
"""


class TestCLI:
    def test_submit_cli_duplicates_hit_cache(self, tmp_path, capsys):
        from repro.__main__ import main

        ups = tmp_path / "small.ups"
        ups.write_text(UPS_TEXT)
        metrics_path = tmp_path / "metrics.json"
        out_dir = tmp_path / "out"
        rc = main(
            [
                "submit", str(ups), str(ups),
                "--metrics", str(metrics_path), "--out", str(out_dir),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cache-hit" in out
        metrics = json.loads(metrics_path.read_text())
        hits = sum(
            c["value"] for c in metrics["counters"]
            if c["name"] == "service.cache.hits"
        )
        assert hits >= 1
        reference = run_ups(parse_ups(UPS_TEXT))
        for npz in sorted(out_dir.glob("*.npz")):
            with np.load(npz) as arrays:
                np.testing.assert_array_equal(arrays["divq"], reference.divq)

    def test_spool_serve_submit_roundtrip(self, tmp_path):
        from repro.service.cli import cmd_serve, cmd_submit

        ups = tmp_path / "small.ups"
        ups.write_text(UPS_TEXT)
        spool = tmp_path / "spool"
        serve_rc = {}

        def serve():
            serve_rc["rc"] = cmd_serve(
                [
                    "--spool", str(spool),
                    "--max-requests", "2", "--idle-timeout", "60",
                ]
            )

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        rc = cmd_submit(
            ["--spool", str(spool), str(ups), str(ups), "--timeout", "60"]
        )
        assert rc == 0
        server.join(timeout=60)
        assert not server.is_alive() and serve_rc["rc"] == 0
        results = sorted((spool / "outbox").glob("*.npz"))
        assert len(results) == 2
        reference = run_ups(parse_ups(UPS_TEXT))
        for npz in results:
            with np.load(npz) as arrays:
                np.testing.assert_array_equal(arrays["divq"], reference.divq)


class TestJournal:
    """The write-ahead request journal and warm restart."""

    def test_record_forget_outstanding(self, tmp_path, registry):
        from repro.service import RequestJournal
        from repro.ups import spec_fingerprint

        j = RequestJournal(tmp_path)
        spec = tiny_spec()
        fp = spec_fingerprint(spec)
        j.record(fp, spec)
        assert len(j) == 1
        out = j.outstanding()
        assert len(out) == 1 and out[0] == spec
        j.forget(fp)
        assert len(j) == 0 and j.outstanding() == []
        j.forget(fp)  # idempotent

    def test_corrupt_entry_skipped_and_deleted(self, tmp_path, registry):
        from repro.service import RequestJournal

        j = RequestJournal(tmp_path)
        j.record("ab12", tiny_spec())
        (tmp_path / "cd34.json").write_text("{truncated")
        out = j.outstanding()
        assert len(out) == 1
        assert not (tmp_path / "cd34.json").exists()
        assert registry.value("service.journal.corrupt") == 1

    def test_settles_through_request_lifecycle(self, tmp_path):
        cfg = ServiceConfig(workers=1, journal_dir=str(tmp_path))
        with RadiationService(cfg) as svc:
            svc.submit(tiny_spec()).result(60)
            assert len(svc.journal) == 0  # recorded then forgotten

    def test_warm_restart_replays_outstanding(self, tmp_path):
        """A crashed service's journal entries are re-solved (or served
        from the preloaded disk cache) by the next incarnation."""
        from repro.service import RequestJournal
        from repro.ups import spec_fingerprint

        jdir, cdir = tmp_path / "journal", tmp_path / "cache"
        solved, unsolved = tiny_spec(seed=1), tiny_spec(seed=2)

        # incarnation 1 solves one spec, then "crashes" with both
        # journaled (simulate by journaling after the fact)
        with RadiationService(
            ServiceConfig(workers=1, cache_dir=str(cdir))
        ) as first:
            first.submit(solved).result(60)
        j = RequestJournal(jdir)
        j.record(spec_fingerprint(solved), solved)
        j.record(spec_fingerprint(unsolved), unsolved)

        with RadiationService(
            ServiceConfig(workers=1, journal_dir=str(jdir), cache_dir=str(cdir))
        ) as second:
            report = second.recover_journal()
            assert report["replayed"] == 2
            assert report["cache_preloaded"] >= 1
            results = [h.result(60) for h in report["handles"]]
            assert any(r.cache_hit for r in results)  # solved came from disk
            assert len(second.journal) == 0

    def test_queue_reject_rolls_back_journal(self, tmp_path):
        """A submit bounced by backpressure must not leave a journal
        entry behind — no promise was made."""
        cfg = ServiceConfig(workers=1, journal_dir=str(tmp_path))
        with RadiationService(cfg) as svc:

            def full_queue(pending, timeout=None):
                raise ServiceError("queue full")

            svc.queue.put = full_queue
            with pytest.raises(ServiceError, match="queue full"):
                svc.submit(tiny_spec())
            assert len(svc.journal) == 0


class TestFaultPlanIntegration:
    """repro.resilience.FaultPlan as the service's fault-injection API."""

    def test_solve_fault_retries_then_succeeds(self, registry):
        from repro.resilience import FaultPlan, FaultEvent
        from repro.ups import spec_fingerprint

        spec = tiny_spec()
        plan = FaultPlan(
            [FaultEvent(kind="solve-fault", match=spec_fingerprint(spec)[:8])]
        )
        with RadiationService(ServiceConfig(workers=1, fault_plan=plan)) as svc:
            result = svc.submit(spec).result(60)
        assert result.attempts == 2
        assert registry.value("service.worker.retries") == 1

    def test_worker_death_routes_to_survivor(self, registry):
        from repro.resilience import FaultPlan, FaultEvent

        plan = FaultPlan([FaultEvent(kind="worker-death", target=0)])
        with RadiationService(ServiceConfig(workers=2, fault_plan=plan)) as svc:
            results = [
                svc.submit(tiny_spec(seed=s)).result(60) for s in range(4)
            ]
        assert all(r.worker == 1 for r in results)
        assert registry.value("service.worker.deaths", worker=0) == 1

    def test_all_workers_dead_rejected(self):
        from repro.resilience import FaultPlan, FaultEvent

        plan = FaultPlan(
            [
                FaultEvent(kind="worker-death", target=0),
                FaultEvent(kind="worker-death", target=1),
            ]
        )
        with pytest.raises(ServiceError, match="kills all"):
            RadiationService(ServiceConfig(workers=2, fault_plan=plan))

    def test_explicit_hook_and_plan_compose(self):
        from repro.resilience import FaultPlan, FaultEvent

        seen = []
        plan = FaultPlan([FaultEvent(kind="solve-fault", attempts=1)])
        cfg = ServiceConfig(
            workers=1, fault_plan=plan,
            fault_hook=lambda fp, attempt: seen.append(attempt),
        )
        with RadiationService(cfg) as svc:
            result = svc.submit(tiny_spec()).result(60)
        assert result.attempts == 2
        assert seen == [1, 2]  # explicit hook observed both attempts
