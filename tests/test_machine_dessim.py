"""Tests for the machine models, DES engine, cost model, and cluster
simulator."""

import numpy as np
import pytest

from repro.machine import GEMINI, K20X, TITAN, GPUModel, NetworkModel
from repro.dessim import (
    LARGE,
    MEDIUM,
    ClusterSimulator,
    EventSimulator,
    PoolTimingModel,
    RMCRTProblem,
    RayWorkModel,
    SimOptions,
    SlotResource,
    StrongScalingStudy,
    multi_level_comm_per_rank,
    single_level_comm_per_rank,
)
from repro.util.errors import ReproError


class TestTitanSpec:
    def test_paper_footnote_values(self):
        assert TITAN.cores_per_node == 16
        assert TITAN.gpu_memory_bytes == 6 * 1024 ** 3
        assert TITAN.network_latency_s == 1.4e-6
        assert TITAN.injection_bandwidth == 20e9
        assert TITAN.num_nodes == 18_688

    def test_full_occupancy(self):
        assert TITAN.full_occupancy_threads == 14 * 2048


class TestNetworkModel:
    def test_ptp_alpha_beta(self):
        assert GEMINI.ptp_time(0) == pytest.approx(1.4e-6)
        t = GEMINI.ptp_time(20_000_000_000)
        assert t == pytest.approx(1.0 + 1.4e-6)

    def test_allgather_grows_with_ranks(self):
        v = 50 * 1024 ** 2
        times = [GEMINI.allgather_time(v, r) for r in (2, 64, 1024, 16384)]
        assert times == sorted(times)

    def test_allgather_single_rank_free(self):
        assert GEMINI.allgather_time(1000, 1) == 0.0

    def test_bcast_log_scaling(self):
        t2 = GEMINI.bcast_time(0, 2)
        t1024 = GEMINI.bcast_time(0, 1024)
        assert t1024 == pytest.approx(10 * t2)

    def test_congestion(self):
        slow = NetworkModel(congestion=0.5)
        assert slow.ptp_time(1000) > GEMINI.ptp_time(1000)

    def test_validation(self):
        with pytest.raises(ReproError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ReproError):
            GEMINI.allgather_time(10, 0)


class TestGPUModel:
    def test_occupancy_ramp(self):
        assert K20X.occupancy_efficiency(28_672) == 1.0
        assert K20X.occupancy_efficiency(32 ** 3) == 1.0  # saturated
        small = K20X.occupancy_efficiency(16 ** 3)
        assert 0.1 < small < 0.2  # 4096/28672

    def test_kernel_time_patch_ordering(self):
        """Per-cell kernel time: 16^3 patches pay the occupancy penalty."""
        t16 = K20X.kernel_time(16 ** 3, 100, 150) / 16 ** 3
        t32 = K20X.kernel_time(32 ** 3, 100, 150) / 32 ** 3
        t64 = K20X.kernel_time(64 ** 3, 100, 150) / 64 ** 3
        assert t16 > 4 * t32
        assert t64 <= t32 * 1.01

    def test_pcie_times(self):
        assert K20X.h2d_time(6_000_000_000) == pytest.approx(1.0, rel=1e-3)

    def test_memory_check(self):
        assert K20X.fits_in_memory(5 * 1024 ** 3)
        assert not K20X.fits_in_memory(7 * 1024 ** 3)

    def test_validation(self):
        with pytest.raises(ReproError):
            K20X.kernel_time(0, 1, 1)
        with pytest.raises(ReproError):
            K20X.occupancy_efficiency(0)


class TestEventSimulator:
    def test_ordering(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(3.0, lambda: seen.append("c"))
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(2.0, lambda: seen.append("b"))
        assert sim.run() == 3.0
        assert seen == ["a", "b", "c"]

    def test_nested_scheduling(self):
        sim = EventSimulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(5.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 6.0]

    def test_run_until(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(2))
        sim.run(until=5.0)
        assert seen == [1] and sim.now == 5.0

    def test_tie_breaking_fifo(self):
        sim = EventSimulator()
        seen = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_past_rejected(self):
        with pytest.raises(ReproError):
            EventSimulator().schedule(-1, lambda: None)


class TestSlotResource:
    def test_single_slot_serializes(self):
        r = SlotResource(1)
        assert r.request(0.0, 2.0) == (0.0, 2.0)
        assert r.request(0.0, 2.0) == (2.0, 4.0)
        assert r.request(5.0, 1.0) == (5.0, 6.0)
        assert r.makespan == 6.0

    def test_two_slots_overlap(self):
        r = SlotResource(2)
        assert r.request(0.0, 3.0) == (0.0, 3.0)
        assert r.request(0.0, 3.0) == (0.0, 3.0)
        assert r.request(0.0, 3.0) == (3.0, 6.0)

    def test_utilization(self):
        r = SlotResource(2)
        r.request(0.0, 2.0)
        r.request(0.0, 2.0)
        assert r.utilization() == 1.0

    def test_validation(self):
        with pytest.raises(ReproError):
            SlotResource(0)
        with pytest.raises(ReproError):
            SlotResource(1).request(0.0, -1.0)


class TestCostModel:
    def test_problem_cell_counts_match_paper(self):
        assert MEDIUM.total_cells == 17_039_360
        assert LARGE.total_cells == 136_314_880
        assert LARGE.num_patches(8) == 262_144  # Table I's 262k patches

    def test_indivisible_patch(self):
        with pytest.raises(ReproError):
            LARGE.num_patches(48)

    def test_halo_messages_shrink_with_ranks(self):
        a = multi_level_comm_per_rank(LARGE, 16, 512)
        b = multi_level_comm_per_rank(LARGE, 16, 16384)
        assert b.halo_messages < a.halo_messages
        assert b.coarse_bytes <= a.coarse_bytes * 1.01

    def test_single_level_volume_blowup(self):
        """E8's core fact: the 2-level scheme moves orders of magnitude
        fewer bytes per rank than fine-mesh replication."""
        multi = multi_level_comm_per_rank(LARGE, 16, 4096)
        single = single_level_comm_per_rank(LARGE, 16, 4096)
        assert single.total_bytes > 50 * multi.total_bytes

    def test_single_level_aggregate_quadraticish(self):
        per_rank_1k = single_level_comm_per_rank(LARGE, 16, 1024).total_bytes
        per_rank_4k = single_level_comm_per_rank(LARGE, 16, 4096).total_bytes
        # per-rank volume ~constant => aggregate grows linearly in R,
        # i.e. quadratically in problem+machine scaling together
        assert per_rank_4k == pytest.approx(per_rank_1k, rel=0.01)

    def test_pool_model_ordering(self):
        pm = PoolTimingModel()
        for n in (100, 1000, 5000):
            assert pm.local_comm_time(n, "locked") > pm.local_comm_time(n, "waitfree")

    def test_pool_model_validation(self):
        with pytest.raises(ReproError):
            PoolTimingModel().local_comm_time(-1, "waitfree")
        with pytest.raises(ReproError):
            PoolTimingModel().local_comm_time(10, "spinlock")

    def test_ray_work_modes(self):
        fixed = RayWorkModel(roi_mode="fixed")
        pb = RayWorkModel(roi_mode="patch_based")
        # fixed: identical work for all patch sizes
        assert fixed.steps_per_ray(LARGE, 16) == fixed.steps_per_ray(LARGE, 64)
        # patch-based: bigger patches march farther on the fine level
        assert pb.steps_per_ray(LARGE, 64) > pb.steps_per_ray(LARGE, 16)
        with pytest.raises(ReproError):
            RayWorkModel(roi_mode="adaptive").steps_per_ray(LARGE, 16)


class TestClusterSimulator:
    @pytest.fixture(scope="class")
    def sim(self):
        return ClusterSimulator()

    def test_strong_scaling_decreases(self, sim):
        t = [
            sim.simulate_timestep(LARGE, 16, g).total_time
            for g in (512, 1024, 2048, 4096, 8192, 16384)
        ]
        assert t == sorted(t, reverse=True)

    def test_paper_efficiency_band(self, sim):
        """Figure 3's quoted strong-scaling efficiencies: 96% for
        4096->8192 and 89% for 4096->16384 — model must land within
        +-10 points."""
        study = StrongScalingStudy(sim)
        series = study.run(LARGE, [16], [4096, 8192, 16384])[16]
        e1 = series.efficiency(4096, 8192)
        e2 = series.efficiency(4096, 16384)
        assert 0.86 <= e1 <= 1.0
        assert 0.79 <= e2 <= 1.0
        assert e2 <= e1

    def test_small_patches_slower(self, sim):
        """Figure 2/3 message: 16^3 patches starve the GPU."""
        t16 = sim.simulate_timestep(LARGE, 16, 512).total_time
        t32 = sim.simulate_timestep(LARGE, 32, 512).total_time
        t64 = sim.simulate_timestep(LARGE, 64, 512).total_time
        assert t16 > 3 * t32
        assert t64 <= t32 * 1.05

    def test_series_end_where_patches_run_out(self, sim):
        """MEDIUM at 64^3 has only 64 patches: the series must stop."""
        study = StrongScalingStudy(sim)
        res = study.run(MEDIUM, [16, 64], [64, 128, 256])
        assert res[64].gpu_counts == [64]
        assert res[16].gpu_counts == [64, 128, 256]

    def test_table1_band(self, sim):
        """Table I: locked/wait-free speedups within the paper's 2-4.5x
        band, decreasing-magnitude times as nodes grow."""
        speedups = []
        befores = []
        for nodes in (512, 1024, 2048, 4096, 8192, 16384):
            tb = sim.simulate_timestep(
                LARGE, 8, nodes, SimOptions(pool="locked")
            ).local_comm_time
            ta = sim.simulate_timestep(
                LARGE, 8, nodes, SimOptions(pool="waitfree")
            ).local_comm_time
            befores.append(tb)
            speedups.append(tb / ta)
        assert befores == sorted(befores, reverse=True)
        assert all(2.0 <= s <= 5.0 for s in speedups)

    def test_level_db_ablation_traffic(self, sim):
        """E7: disabling the GPU level DB multiplies H2D traffic by
        roughly patches-per-GPU (the radiation kernel itself stays
        compute-bound, so the cost shows as PCIe bytes + memory)."""
        with_db = sim.simulate_timestep(
            LARGE, 16, 2048, SimOptions(use_level_db=True)
        )
        without = sim.simulate_timestep(
            LARGE, 16, 2048, SimOptions(use_level_db=False)
        )
        assert without.h2d_bytes > 5 * with_db.h2d_bytes
        assert without.total_time >= with_db.total_time
        assert with_db.gpu_memory_ok

    def test_level_db_ablation_time_when_pcie_bound(self, sim):
        """With a cheap kernel (1 ray/cell) the redundant coarse
        uploads dominate the pipeline and the slowdown is visible in
        wall-clock, not just traffic."""
        # RR 2 => a 256^3 coarse level (400 MB): redundant uploads hurt
        cheap = RMCRTProblem(fine_cells=512, refinement_ratio=2, rays_per_cell=1)
        with_db = sim.simulate_timestep(
            cheap, 32, 512, SimOptions(use_level_db=True)
        )
        without = sim.simulate_timestep(
            cheap, 32, 512, SimOptions(use_level_db=False)
        )
        assert without.pipeline_time > 2 * with_db.pipeline_time

    def test_gpu_memory_infeasible_without_level_db(self, sim):
        """At high patches-in-flight the legacy per-task coarse copies
        exceed K20X memory — the problem contribution (ii) fixed."""
        opts = SimOptions(use_level_db=False, max_in_flight=64)
        b = sim.simulate_timestep(LARGE, 16, 512, opts)
        assert not b.gpu_memory_ok
        ok = sim.simulate_timestep(
            LARGE, 16, 512, SimOptions(use_level_db=True, max_in_flight=64)
        )
        assert ok.gpu_memory_ok

    def test_over_decomposition_hides_copies(self, sim):
        """Multiple patches in flight overlap PCIe with kernels."""
        serial = sim.simulate_timestep(
            MEDIUM, 32, 64, SimOptions(max_in_flight=1)
        ).pipeline_time
        pipelined = sim.simulate_timestep(
            MEDIUM, 32, 64, SimOptions(max_in_flight=8)
        ).pipeline_time
        assert pipelined < serial

    def test_validation(self, sim):
        with pytest.raises(ReproError):
            sim.simulate_timestep(LARGE, 16, 0)
        with pytest.raises(ReproError):
            sim.simulate_timestep(LARGE, 16, 10 ** 6)

    def test_idle_gpus_beyond_patch_count(self, sim):
        b = sim.simulate_timestep(MEDIUM, 64, 512)
        assert b.active_gpus == 64
        assert b.patches_per_gpu == 1


class TestCampaignSimulation:
    """Failure-aware campaign pricing: checkpoints, deaths, rework."""

    @pytest.fixture
    def problem(self):
        return RMCRTProblem(fine_cells=128, rays_per_cell=10)

    def test_fault_free_campaign(self, problem):
        from repro.dessim import simulate_campaign

        r = simulate_campaign(problem, 16, 64, num_steps=6, checkpoint_every=2)
        assert r.deaths == 0 and r.final_gpus == 64
        assert r.checkpoints == 3
        assert r.recovery_s == 0.0 and r.rework_s == 0.0
        assert r.compute_s > 0 and r.checkpoint_s > 0
        assert r.total_s == pytest.approx(r.compute_s + r.checkpoint_s)

    def test_death_costs_restart_and_rework(self, problem):
        from repro.dessim import simulate_campaign
        from repro.resilience import FaultEvent, FaultPlan

        plan = FaultPlan([FaultEvent(kind="rank-death", step=5, target=3)])
        r = simulate_campaign(
            problem, 16, 64, num_steps=6, fault_plan=plan,
            checkpoint_every=3, restart_cost_s=25.0,
        )
        assert r.deaths == 1 and r.final_gpus == 63
        assert r.recovery_s == pytest.approx(25.0)
        # death at step 5 with checkpoint at 3: one step replayed
        assert r.rework_s > 0
        baseline = simulate_campaign(problem, 16, 64, num_steps=6, checkpoint_every=3)
        assert r.total_s > baseline.total_s
        assert 0 < r.overhead_fraction < 1

    def test_cadence_tradeoff(self, problem):
        """More frequent checkpoints cost more write time but bound
        the rework a death can cause — the E14 experiment's axis."""
        from repro.dessim import simulate_campaign
        from repro.resilience import FaultEvent, FaultPlan

        plan = FaultPlan([FaultEvent(kind="rank-death", step=8, target=0)])
        tight = simulate_campaign(
            problem, 16, 64, num_steps=10, fault_plan=plan, checkpoint_every=1
        )
        loose = simulate_campaign(
            problem, 16, 64, num_steps=10, fault_plan=plan, checkpoint_every=8
        )
        assert tight.checkpoint_s > loose.checkpoint_s
        assert tight.rework_s < loose.rework_s

    def test_event_log_and_dict(self, problem):
        import json

        from repro.dessim import simulate_campaign
        from repro.resilience import FaultEvent, FaultPlan

        plan = FaultPlan([FaultEvent(kind="rank-death", step=2, target=1)])
        r = simulate_campaign(problem, 16, 8, num_steps=4, fault_plan=plan)
        kinds = {e.kind for e in r.events}
        assert kinds == {"rank-death", "checkpoint"}
        json.dumps(r.as_dict())  # artifact-ready

    def test_validation(self, problem):
        from repro.dessim import simulate_campaign

        with pytest.raises(ReproError):
            simulate_campaign(problem, 16, 8, num_steps=0)
        with pytest.raises(ReproError):
            simulate_campaign(problem, 16, 8, num_steps=2, checkpoint_every=0)
        with pytest.raises(ReproError):
            simulate_campaign(problem, 16, 8, num_steps=2, pfs_bandwidth=0)
