"""The crash-consistency analyzer: seeded defects caught, real tree
clean, suppressions honored, effect extraction sane."""

import pytest

from repro.check.cli import REPO_ROOT, run_check
from repro.check.fs import (
    FIXTURE_RULES,
    RULES,
    SEEDED_FIXTURES,
    check_paths,
    check_source,
    default_scope,
    role_from_text,
    run_fs_fixture,
    summarize_source,
)


def rule_names(findings):
    return sorted(f.rule for f in findings)


class TestPathRoles:
    def test_suffix_roles(self):
        assert role_from_text("outbox/abc.json") == "sidecar"
        assert role_from_text("outbox/abc.npz") == "payload"
        assert role_from_text(".result.npz.tmp") == "tmp"
        assert role_from_text("/tmp/staging") == "tmp"
        assert role_from_text("claimed/shard-0/t.ups") == "claim"
        assert role_from_text("step_0004/manifest.json") == "marker"
        assert role_from_text("data.bin") is None


class TestEffectExtraction:
    def test_write_and_rename_ordered(self):
        src = (
            "import os\n"
            "def publish(target, data):\n"
            "    tmp = target.parent / f'.{target.name}.tmp'\n"
            "    tmp.write_bytes(data)\n"
            "    os.replace(tmp, target)\n"
        )
        (summary,) = summarize_source(src, "service/x.py")
        kinds = [(e.kind, e.role) for e in summary.effects]
        assert kinds == [("write", "tmp"), ("rename", "final")]
        assert summary.effects[1].src_role == "tmp"

    def test_atomic_helpers_are_publications_not_writes(self):
        src = (
            "from repro.util.atomic import atomic_write_text\n"
            "def publish(outbox, ticket, meta):\n"
            "    atomic_write_text(outbox / f'{ticket}.json', meta)\n"
        )
        (summary,) = summarize_source(src, "service/x.py")
        assert [(e.kind, e.role) for e in summary.effects] == [
            ("atomic_publish", "sidecar")]

    def test_buffer_writes_ignored(self):
        src = (
            "import io\n"
            "import numpy as np\n"
            "def pack(arr):\n"
            "    buf = io.BytesIO()\n"
            "    np.save(buf, arr)\n"
            "    return buf.getvalue()\n"
        )
        (summary,) = summarize_source(src, "service/x.py")
        assert summary.effects == []


class TestSeededDefects:
    @pytest.mark.parametrize("fixture", sorted(SEEDED_FIXTURES))
    def test_fixture_trips_its_rule(self, fixture):
        findings = run_fs_fixture(fixture)
        assert FIXTURE_RULES[fixture] in rule_names(findings)

    def test_every_rule_has_a_fixture(self):
        assert set(FIXTURE_RULES.values()) == set(RULES)

    def test_payload_before_sidecar_is_clean(self):
        """The correct ordering of the seeded defect's scenario."""
        src = (
            "from repro.util.atomic import atomic_savez, "
            "atomic_write_text\n"
            "def publish_result(outbox, ticket, divq, meta_text):\n"
            "    atomic_savez(outbox / f'{ticket}.npz', divq=divq)\n"
            "    atomic_write_text(outbox / f'{ticket}.json', meta_text)\n"
        )
        findings, _ = check_source(src, "service/x.py")
        assert findings == []

    def test_tmp_leak_fixed_by_cleanup(self):
        src = (
            "import os\n"
            "def publish(target, data):\n"
            "    tmp = target.parent / f'.{target.name}.tmp'\n"
            "    try:\n"
            "        tmp.write_bytes(data)\n"
            "        os.replace(tmp, target)\n"
            "    except OSError:\n"
            "        tmp.unlink()\n"
            "        raise\n"
        )
        findings, _ = check_source(src, "service/x.py")
        assert "fs-tmp-leak" not in rule_names(findings)

    def test_settle_after_publish_is_clean(self):
        src = (
            "from repro.util.atomic import atomic_write_text\n"
            "def settle(outbox, ticket, claimed_path, meta_text):\n"
            "    atomic_write_text(outbox / f'{ticket}.json', meta_text)\n"
            "    claimed_path.unlink()\n"
        )
        findings, _ = check_source(src, "service/x.py")
        assert findings == []

    def test_suppression_honored(self):
        src = (
            "def publish(outbox, ticket, meta):\n"
            "    target = outbox / f'{ticket}.json'\n"
            "    target.write_text(meta)"
            "  # repro: allow(fs-non-atomic-publish)\n"
        )
        findings, suppressed = check_source(src, "service/x.py")
        assert findings == []
        assert suppressed == 1


class TestInterprocedural:
    def test_defect_through_helper(self):
        """The misordering spans two functions; the finding lands on
        the caller's call site."""
        src = (
            "from repro.util.atomic import atomic_savez, "
            "atomic_write_text\n"
            "def emit_sidecar(outbox, ticket, meta):\n"
            "    atomic_write_text(outbox / f'{ticket}.json', meta)\n"
            "def publish(outbox, ticket, divq, meta):\n"
            "    emit_sidecar(outbox, ticket, meta)\n"
            "    atomic_savez(outbox / f'{ticket}.npz', divq=divq)\n"
        )
        findings, _ = check_source(src, "service/x.py")
        hits = [f for f in findings
                if f.rule == "fs-sidecar-before-payload"]
        assert len(hits) == 1
        assert hits[0].line == 5  # the emit_sidecar() call site


class TestRealTree:
    def test_scope_is_the_persistence_layers(self):
        scoped = {p.name for p in default_scope(REPO_ROOT)}
        assert scoped == {"service", "fabric", "resilience", "util"}

    def test_real_tree_is_clean(self):
        findings, suppressed, stats = check_paths(
            default_scope(REPO_ROOT), root=REPO_ROOT)
        assert findings == [], "\n".join(
            f.format() for f in findings)
        assert stats["files_scanned"] >= 20
        assert stats["effects"] >= 50
        # the deliberate keep: the chunk-corruption fault injector in
        # resilience/orchestrator.py models storage-layer damage
        assert suppressed >= 1


class TestCLI:
    def test_fs_subcommand_clean(self, capsys):
        assert run_check(["fs"]) == 0
        assert "repro check fs" in capsys.readouterr().out

    def test_fs_seeded_defects_gate(self, capsys):
        assert run_check(["fs", "--seeded-defects"]) == 1
        out = capsys.readouterr().out
        assert "fs-non-atomic-publish" in out
        assert "fs-sidecar-before-payload" in out
