"""Tests for the task-graph trace simulator: analytic ground truths on
constructed graphs, plus strong scaling of the real RMCRT pipeline."""

import numpy as np
import pytest

from repro.grid import Box, Grid, LoadBalancer, decompose_level
from repro.dw import cc
from repro.dessim import (
    RMCRTProblem,
    TaskGraphTraceSimulator,
    rmcrt_task_cost,
)
from repro.machine import NetworkModel
from repro.core import DistributedRMCRT, benchmark_property_init
from repro.radiation import BurnsChristonBenchmark
from repro.runtime import Computes, Requires, Task, TaskGraph
from repro.util.errors import SchedulerError

PHI = cc("phi")
PSI = cc("psi")


def noop(ctx):
    pass


def chain_graph(num_patches=4, num_ranks=1):
    """init -> copy chains, one per patch."""
    grid = Grid()
    level = grid.add_level(Box.cube(4 * num_patches), (1.0,) * 3)
    decompose_level(level, (4, 4 * num_patches, 4 * num_patches))
    tg = TaskGraph(grid)
    tg.add_task(Task("init", noop, computes=[Computes(PHI)]), 0)
    tg.add_task(
        Task("copy", noop, requires=[Requires(PHI)], computes=[Computes(PSI)]), 0
    )
    assignment = {p.patch_id: p.patch_id % num_ranks for p in level.patches}
    return tg.compile(assignment=assignment, num_ranks=num_ranks)


class TestAnalyticCases:
    def test_serial_chain_sums(self):
        """One rank, 4 independent init->copy chains at unit cost:
        makespan = 8 (everything serializes on one executor)."""
        graph = chain_graph(num_patches=4, num_ranks=1)
        sim = TaskGraphTraceSimulator()
        report = sim.simulate(graph, lambda dt: 1.0)
        assert report.makespan == pytest.approx(8.0)
        assert report.parallel_efficiency == pytest.approx(1.0)

    def test_perfect_parallelism(self):
        """4 ranks, one chain each: makespan = 2 (no cross-rank deps)."""
        graph = chain_graph(num_patches=4, num_ranks=4)
        sim = TaskGraphTraceSimulator(NetworkModel(latency_s=0.0))
        report = sim.simulate(graph, lambda dt: 1.0)
        assert report.makespan == pytest.approx(2.0)
        assert report.parallel_efficiency == pytest.approx(1.0)
        assert len(report.ranks) == 4

    def test_message_latency_exposed(self):
        """A cross-rank dependency pays the network: producer on rank 0,
        consumer on rank 1, one message in between."""
        grid = Grid()
        level = grid.add_level(Box.cube(4), (1.0,) * 3)
        decompose_level(level, (4, 4, 4))
        tg = TaskGraph(grid)
        tg.add_task(Task("init", noop, computes=[Computes(PHI)]), 0)
        tg.add_level_task(
            Task("consume", noop, requires=[Requires(PHI)],
                 computes=[Computes(PSI)]),
            0,
        )
        # put the level task's pseudo patch on rank 1 via assignment
        graph = tg.compile(assignment={0: 0, -1000 - 1: 1}, num_ranks=2)
        slow_net = NetworkModel(latency_s=5.0)
        report = TaskGraphTraceSimulator(slow_net).simulate(graph, lambda dt: 1.0)
        # init ends at 1, message arrives ~6+, consume ends ~7+
        assert report.makespan > 7.0
        consume = [t for t in report.traces if t.name == "consume"][0]
        assert consume.ready > 6.0

    def test_wait_time_accounting(self):
        """Two unit tasks ready at 0 on one rank: the second waits 1."""
        graph = chain_graph(num_patches=2, num_ranks=1)
        report = TaskGraphTraceSimulator().simulate(graph, lambda dt: 1.0)
        inits = sorted(
            (t for t in report.traces if t.name == "init"), key=lambda t: t.start
        )
        assert inits[0].wait == 0.0
        assert inits[1].wait == pytest.approx(1.0)

    def test_negative_cost_rejected(self):
        graph = chain_graph(2, 1)
        with pytest.raises(SchedulerError):
            TaskGraphTraceSimulator().simulate(graph, lambda dt: -1.0)

    def test_critical_rank(self):
        graph = chain_graph(num_patches=4, num_ranks=2)
        report = TaskGraphTraceSimulator().simulate(
            graph, lambda dt: 2.0 if dt.rank == 1 else 1.0
        )
        assert report.critical_rank() == 1


class TestRMCRTTrace:
    """The real 3-task pipeline, traced at several rank counts."""

    @pytest.fixture(scope="class")
    def setup(self):
        bench = BurnsChristonBenchmark(resolution=32)
        grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
        drm = DistributedRMCRT(
            grid, benchmark_property_init(bench), rays_per_cell=100, halo=4
        )
        problem = RMCRTProblem(fine_cells=32, refinement_ratio=4, halo=4)
        cost = rmcrt_task_cost(problem, patch_size=8)
        return grid, drm, cost

    def trace_at(self, setup, ranks):
        grid, drm, cost = setup
        lb = LoadBalancer(ranks)
        assignment = lb.assign(grid.finest_level.patches)
        graph = drm.build_graph(assignment=assignment, num_ranks=ranks)
        return TaskGraphTraceSimulator().simulate(graph, cost)

    def test_strong_scaling_from_real_graph(self, setup):
        """Makespans from the REAL dependency structure strong-scale."""
        times = [self.trace_at(setup, r).makespan for r in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)
        # near-ideal from 1 -> 4 ranks (64 patches, plenty of slack)
        assert times[0] / times[2] > 3.0

    def test_coarsen_serializes_on_its_rank(self, setup):
        """The single coarsen task is a known serialization point: every
        trace task's ready time is after it completes."""
        report = self.trace_at(setup, 4)
        coarsen_end = [t for t in report.traces if t.name == "rmcrt.coarsen"][0].end
        for t in report.traces:
            if t.name == "rmcrt.trace":
                assert t.ready >= coarsen_end

    def test_messages_counted(self, setup):
        report = self.trace_at(setup, 4)
        assert report.messages_sent > 0
        assert report.message_bytes > 0

    def test_single_rank_has_no_messages(self, setup):
        report = self.trace_at(setup, 1)
        assert report.messages_sent == 0
        assert report.parallel_efficiency == pytest.approx(1.0)

    def test_task_counts(self, setup):
        report = self.trace_at(setup, 4)
        names = [t.name for t in report.traces]
        assert names.count("rmcrt.initProperties") == 64
        assert names.count("rmcrt.trace") == 64
        assert names.count("rmcrt.coarsen") == 1
