"""Tests for the SimulationController: multi-timestep execution with
DataWarehouse generation swapping, validated against a direct solution
of an explicit diffusion problem."""

import numpy as np
import pytest

from repro.grid import Box, Grid, decompose_level
from repro.dw import cc
from repro.runtime import (
    Computes,
    GPUScheduler,
    Requires,
    SerialScheduler,
    SimulationController,
    Task,
    TaskGraph,
    ThreadedScheduler,
)
from repro.util.errors import SchedulerError

T = cc("temperature")
N = 8
DX = 1.0 / N
ALPHA = 0.05
DT = 0.2 * DX * DX / ALPHA / 6.0


def initial_field():
    t = np.zeros((N, N, N))
    t[N // 2, N // 2, N // 2] = 1000.0
    return t


def init_cb(ctx):
    full = initial_field()
    ctx.compute(T, full[ctx.patch.box.slices()])


def diffuse_cb(ctx):
    """Explicit 7-point diffusion: new T from OLD T with 1 ghost."""
    t = ctx.require(T, default=0.0)  # adiabatic modelled as 0-pad? no:
    # zero-padding at walls leaks heat; this test uses interior spikes
    # far from boundaries over few steps so the wall condition is moot
    core = t[1:-1, 1:-1, 1:-1]
    lap = (
        t[2:, 1:-1, 1:-1] + t[:-2, 1:-1, 1:-1]
        + t[1:-1, 2:, 1:-1] + t[1:-1, :-2, 1:-1]
        + t[1:-1, 1:-1, 2:] + t[1:-1, 1:-1, :-2]
        - 6.0 * core
    ) / DX ** 2
    ctx.compute(T, core + DT * ALPHA * lap)


def build(patch=4):
    grid = Grid()
    level = grid.add_level(Box.cube(N), (DX,) * 3)
    decompose_level(level, (patch,) * 3)
    init_tg = TaskGraph(grid)
    init_tg.add_task(Task("init", init_cb, computes=[Computes(T)]), 0)
    step_tg = TaskGraph(grid)
    step_tg.add_task(
        Task(
            "diffuse",
            diffuse_cb,
            requires=[Requires(T, dw="old", num_ghost=1)],
            computes=[Computes(T)],
        ),
        0,
    )
    return grid, init_tg.compile(), step_tg.compile()


def gather(grid, dw):
    out = np.zeros((N, N, N))
    for p in grid.level(0).patches:
        out[p.box.slices()] = dw.get(T, p.patch_id).view(p.box)
    return out


def direct_solution(steps):
    t = initial_field()
    for _ in range(steps):
        padded = np.pad(t, 1)
        lap = (
            padded[2:, 1:-1, 1:-1] + padded[:-2, 1:-1, 1:-1]
            + padded[1:-1, 2:, 1:-1] + padded[1:-1, :-2, 1:-1]
            + padded[1:-1, 1:-1, 2:] + padded[1:-1, 1:-1, :-2]
            - 6.0 * t
        ) / DX ** 2
        t = t + DT * ALPHA * lap
    return t


class TestController:
    def test_matches_direct_solution(self):
        grid, init_graph, step_graph = build()
        ctrl = SimulationController(step_graph, initial_graph=init_graph)
        dw = ctrl.run(num_steps=5, dt=DT)
        np.testing.assert_allclose(gather(grid, dw), direct_solution(5), atol=1e-10)
        assert ctrl.steps_taken == 5
        assert np.isclose(ctrl.time, 5 * DT)

    def test_old_dw_is_previous_new(self):
        grid, init_graph, step_graph = build()
        ctrl = SimulationController(step_graph, initial_graph=init_graph)
        dw0 = ctrl.initialize()
        dw1 = ctrl.advance(DT)
        assert ctrl.dw_manager.old_dw is dw0
        assert dw1 is not dw0
        assert dw1.generation == 1

    def test_generation_increments(self):
        grid, init_graph, step_graph = build()
        ctrl = SimulationController(step_graph, initial_graph=init_graph)
        ctrl.run(3, DT)
        assert [r.dw_generation for r in ctrl.reports] == [1, 2, 3]

    def test_threaded_scheduler_same_answer(self):
        grid, init_graph, step_graph = build()
        serial = SimulationController(step_graph, initial_graph=init_graph)
        dw_s = serial.run(4, DT)
        grid2, init2, step2 = build()
        threaded = SimulationController(
            step2, scheduler=ThreadedScheduler(num_threads=4), initial_graph=init2
        )
        dw_t = threaded.run(4, DT)
        np.testing.assert_allclose(gather(grid, dw_s), gather(grid2, dw_t))

    def test_gpu_scheduler_compatible(self):
        grid, init_graph, step_graph = build()
        ctrl = SimulationController(
            step_graph, scheduler=GPUScheduler(), initial_graph=init_graph
        )
        dw = ctrl.run(2, DT)
        np.testing.assert_allclose(gather(grid, dw), direct_solution(2), atol=1e-10)

    def test_energy_conserved_in_interior(self):
        """Away from boundaries, explicit diffusion conserves the sum."""
        grid, init_graph, step_graph = build()
        ctrl = SimulationController(step_graph, initial_graph=init_graph)
        dw = ctrl.run(3, DT)
        assert np.isclose(gather(grid, dw).sum(), 1000.0, rtol=1e-6)

    def test_advance_before_initialize_rejected(self):
        _, init_graph, step_graph = build()
        ctrl = SimulationController(step_graph, initial_graph=init_graph)
        with pytest.raises(SchedulerError):
            ctrl.advance(DT)

    def test_double_initialize_rejected(self):
        _, init_graph, step_graph = build()
        ctrl = SimulationController(step_graph, initial_graph=init_graph)
        ctrl.initialize()
        with pytest.raises(SchedulerError):
            ctrl.initialize()

    def test_bad_dt_rejected(self):
        _, init_graph, step_graph = build()
        ctrl = SimulationController(step_graph, initial_graph=init_graph)
        ctrl.initialize()
        with pytest.raises(SchedulerError):
            ctrl.advance(0.0)

    def test_bad_scheduler_rejected(self):
        _, _, step_graph = build()
        with pytest.raises(SchedulerError):
            SimulationController(step_graph, scheduler=object())


class TestCheckpointing:
    """The controller's resilience hooks: cadence snapshots through an
    attached Checkpointer and bit-identical from_checkpoint resume."""

    def test_advance_checkpoints_on_cadence(self, tmp_path):
        from repro.resilience import Checkpointer

        _, init_graph, step_graph = build()
        ckpt = Checkpointer(tmp_path, every_steps=2)
        ctrl = SimulationController(
            step_graph, initial_graph=init_graph, checkpointer=ckpt
        )
        ctrl.run(5, DT)
        assert ckpt.steps() == [2, 4]

    def test_checkpoint_requires_checkpointer(self):
        _, init_graph, step_graph = build()
        ctrl = SimulationController(step_graph, initial_graph=init_graph)
        with pytest.raises(SchedulerError):
            ctrl.checkpoint()

    def test_from_checkpoint_bit_identical(self, tmp_path):
        from repro.resilience import Checkpointer

        grid, init_graph, step_graph = build()
        gold_ctrl = SimulationController(step_graph, initial_graph=init_graph)
        gold = gather(grid, gold_ctrl.run(5, DT))

        ckpt = Checkpointer(tmp_path, every_steps=3)
        ctrl = SimulationController(
            step_graph, initial_graph=init_graph, checkpointer=ckpt
        )
        ctrl.run(3, DT)
        del ctrl  # crash here

        resumed = SimulationController.from_checkpoint(step_graph, ckpt)
        assert resumed.step == 3
        dw = resumed.run(2, DT)
        assert resumed.step == 5
        np.testing.assert_array_equal(gather(grid, dw), gold)

    def test_from_checkpoint_pinned_step(self, tmp_path):
        from repro.resilience import Checkpointer

        _, init_graph, step_graph = build()
        ckpt = Checkpointer(tmp_path, every_steps=1)
        ctrl = SimulationController(
            step_graph, initial_graph=init_graph, checkpointer=ckpt
        )
        ctrl.run(3, DT)
        resumed = SimulationController.from_checkpoint(step_graph, ckpt, step=2)
        assert resumed.step == 2 and resumed.time == pytest.approx(2 * DT)
