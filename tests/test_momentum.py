"""Verification tests for the incompressible momentum solver."""

import numpy as np
import pytest

from repro.arches import SmagorinskyModel
from repro.arches.momentum import MomentumSolver, taylor_green
from repro.util.errors import ReproError


class TestFourierModeDecay:
    def test_viscous_decay_rate_exact(self):
        """u = (0, sin x, 0) is divergence-free with zero advection
        (u.grad u = 0): it must decay at exactly exp(-nu t) (k = 1)."""
        n, nu = 32, 0.05
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)
        X = np.meshgrid(x, x, x, indexing="ij")[0]
        vel = (np.zeros((n, n, n)), np.sin(X), np.zeros((n, n, n)))
        solver = MomentumSolver((2 * np.pi / n,) * 3, viscosity=nu, rk_order=3)
        dt = 0.02
        steps = 25
        for _ in range(steps):
            vel, _ = solver.step(vel, dt)
        # discrete laplacian eigenvalue: -2(1-cos(k dx))/dx^2 ~ -k^2
        dxv = 2 * np.pi / n
        k_eff2 = 2 * (1 - np.cos(dxv)) / dxv ** 2
        expected = np.sin(X) * np.exp(-nu * k_eff2 * dt * steps)
        np.testing.assert_allclose(vel[1], expected, atol=2e-4)
        assert np.abs(vel[0]).max() < 1e-10


class TestTaylorGreen:
    @pytest.fixture(scope="class")
    def run(self):
        nu = 0.02
        vel, dx = taylor_green(24)
        solver = MomentumSolver(dx, viscosity=nu, rk_order=2)
        ke = [solver.kinetic_energy(vel)]
        div = []
        dt = 0.25 * solver.stable_dt(vel)
        t = 0.0
        for _ in range(30):
            vel, _ = solver.step(vel, dt)
            ke.append(solver.kinetic_energy(vel))
            div.append(solver.max_divergence(vel))
            t += dt
        return vel, ke, div, t, nu

    def test_kinetic_energy_decays_monotonically(self, run):
        _, ke, _, _, _ = run
        assert all(b < a for a, b in zip(ke, ke[1:]))

    def test_decay_bounded_by_viscous_and_numerical(self, run):
        """KE decay at least the viscous rate (exp(-4 nu t) in energy),
        at most a few times it (upwind dissipation is finite)."""
        _, ke, _, t, nu = run
        exact_ratio = np.exp(-4 * nu * t)
        measured_ratio = ke[-1] / ke[0]
        assert measured_ratio <= exact_ratio * 1.01
        assert measured_ratio > exact_ratio * 0.5

    def test_stays_divergence_free(self, run):
        _, _, div, _, _ = run
        vel0, dx = taylor_green(24)
        raw = MomentumSolver(dx).max_divergence(vel0)
        assert all(d < max(0.05, raw) for d in div)

    def test_vortex_shape_preserved(self, run):
        """The Taylor-Green mode is an eigen-solution: the flow pattern
        stays correlated with the initial condition."""
        vel, _, _, _, _ = run
        init, _ = taylor_green(24)
        corr = np.corrcoef(vel[0].ravel(), init[0].ravel())[0, 1]
        assert corr > 0.99

    def test_w_stays_zero(self, run):
        vel, _, _, _, _ = run
        assert np.abs(vel[2]).max() < 1e-8


class TestMechanics:
    def test_smagorinsky_increases_dissipation(self):
        vel, dx = taylor_green(16)
        plain = MomentumSolver(dx, viscosity=0.01)
        les = MomentumSolver(dx, viscosity=0.01, smagorinsky=SmagorinskyModel())
        dt = 0.2 * plain.stable_dt(vel)
        v1, _ = plain.step(tuple(c.copy() for c in vel), dt)
        v2, _ = les.step(tuple(c.copy() for c in vel), dt)
        assert les.kinetic_energy(v2) < plain.kinetic_energy(v1)

    def test_momentum_drift_small(self):
        """Advective (non-conservative) form + approximate projection:
        total momentum is not exactly conserved, but per-step drift
        must stay below 1% — the level expected of the scheme."""
        rng = np.random.default_rng(0)
        n = 12
        vel = tuple(rng.standard_normal((n, n, n)) for _ in range(3))
        solver = MomentumSolver((1.0 / n,) * 3, viscosity=1e-3)
        # project first so we start divergence-free-ish
        vel, _ = solver.step(vel, 1e-4)
        before = np.array([c.sum() for c in vel])
        vel, _ = solver.step(vel, 1e-4)
        after = np.array([c.sum() for c in vel])
        np.testing.assert_allclose(after, before, rtol=0.01)

    def test_stable_dt_positive(self):
        vel, dx = taylor_green(8)
        s = MomentumSolver(dx, viscosity=0.01)
        assert 0 < s.stable_dt(vel) < np.inf

    def test_validation(self):
        with pytest.raises(ReproError):
            MomentumSolver((0.1,) * 3, viscosity=-1)
        s = MomentumSolver((0.1,) * 3)
        vel, _ = taylor_green(8)
        with pytest.raises(ReproError):
            s.step(vel, dt=0.0)
        with pytest.raises(ReproError):
            s.step((vel[0], vel[1], np.zeros((2, 2, 2))), dt=0.1)
