"""Unit + property tests for integer box region algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.box import Box, union_volume
from repro.util.errors import GridError


def boxes(max_coord=12, max_extent=8):
    lo = st.tuples(*[st.integers(-max_coord, max_coord)] * 3)
    ext = st.tuples(*[st.integers(0, max_extent)] * 3)
    return st.builds(lambda l, e: Box.from_extent(l, e), lo, ext)


class TestConstruction:
    def test_from_extent(self):
        b = Box.from_extent((1, 2, 3), (4, 5, 6))
        assert b.lo == (1, 2, 3)
        assert b.hi == (5, 7, 9)
        assert b.extent == (4, 5, 6)
        assert b.volume == 120

    def test_cube(self):
        b = Box.cube(8, lo=(2, 2, 2))
        assert b.extent == (8, 8, 8)
        assert b.volume == 512

    def test_empty(self):
        assert Box((0, 0, 0), (0, 5, 5)).empty
        assert Box((3, 3, 3), (2, 5, 5)).empty
        assert not Box((0, 0, 0), (1, 1, 1)).empty

    def test_bad_vector_rejected(self):
        with pytest.raises(GridError):
            Box((0, 0), (1, 1, 1))

    def test_hashable_and_equal(self):
        assert Box.cube(3) == Box.cube(3)
        assert len({Box.cube(3), Box.cube(3), Box.cube(4)}) == 2


class TestQueries:
    def test_contains_point(self):
        b = Box((0, 0, 0), (4, 4, 4))
        assert b.contains_point((0, 0, 0))
        assert b.contains_point((3, 3, 3))
        assert not b.contains_point((4, 0, 0))
        assert not b.contains_point((-1, 0, 0))

    def test_contains_box(self):
        outer = Box.cube(10)
        assert outer.contains_box(Box((2, 2, 2), (5, 5, 5)))
        assert not outer.contains_box(Box((8, 8, 8), (11, 11, 11)))
        # empty boxes are contained everywhere
        assert outer.contains_box(Box((100, 100, 100), (100, 100, 100)))

    def test_negative_extent_clamps_to_zero_volume(self):
        b = Box((5, 5, 5), (3, 9, 9))
        assert b.extent == (0, 4, 4)
        assert b.volume == 0


class TestAlgebra:
    def test_intersection(self):
        a = Box((0, 0, 0), (4, 4, 4))
        b = Box((2, 2, 2), (6, 6, 6))
        assert a.intersect(b) == Box((2, 2, 2), (4, 4, 4))

    def test_disjoint_intersection_empty(self):
        a = Box.cube(2)
        b = Box.cube(2, lo=(5, 5, 5))
        assert a.intersect(b).empty
        assert not a.intersects(b)

    def test_subtract_interior_hole(self):
        outer = Box.cube(4)
        hole = Box((1, 1, 1), (3, 3, 3))
        pieces = outer.subtract(hole)
        assert sum(p.volume for p in pieces) == outer.volume - hole.volume
        for p in pieces:
            assert not p.intersects(hole)

    def test_subtract_no_overlap_returns_self(self):
        a = Box.cube(3)
        assert a.subtract(Box.cube(2, lo=(10, 10, 10))) == [a]

    def test_subtract_full_cover_returns_empty(self):
        a = Box.cube(3)
        assert a.subtract(Box.cube(5, lo=(-1, -1, -1))) == []

    def test_grow(self):
        b = Box.cube(4).grow(2)
        assert b == Box((-2, -2, -2), (6, 6, 6))
        assert Box.cube(4).grow((1, 0, 2)) == Box((-1, 0, -2), (5, 4, 6))

    def test_shift(self):
        assert Box.cube(2).shift((1, -1, 3)) == Box((1, -1, 3), (3, 1, 5))

    def test_coarsen_covers(self):
        b = Box((1, 1, 1), (7, 7, 7))
        c = b.coarsen(4)
        assert c == Box((0, 0, 0), (2, 2, 2))

    def test_coarsen_negative_indices(self):
        b = Box((-3, -3, -3), (3, 3, 3))
        c = b.coarsen(2)
        assert c == Box((-2, -2, -2), (2, 2, 2))

    def test_refine_then_coarsen_roundtrip(self):
        b = Box((1, 2, 3), (4, 5, 6))
        assert b.refine(4).coarsen(4) == b

    def test_bad_ratio(self):
        with pytest.raises(GridError):
            Box.cube(4).coarsen(0)
        with pytest.raises(GridError):
            Box.cube(4).refine((1, -1, 1))


class TestSlices:
    def test_slices_identity_origin(self):
        b = Box((1, 2, 3), (4, 5, 6))
        arr = np.zeros((10, 10, 10))
        arr[b.slices()] = 1
        assert arr.sum() == b.volume

    def test_slices_with_origin(self):
        b = Box((4, 4, 4), (6, 6, 6))
        outer = b.grow(1)
        arr = np.zeros(outer.extent)
        arr[b.slices(origin=outer.lo)] = 1
        assert arr.sum() == 8
        assert arr[0, 0, 0] == 0
        assert arr[1, 1, 1] == 1

    def test_cells_iteration(self):
        b = Box((0, 0, 0), (2, 2, 1))
        assert list(b.cells()) == [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 0)]


class TestProperties:
    @given(boxes(), boxes())
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(boxes(), boxes())
    def test_intersection_contained(self, a, b):
        inter = a.intersect(b)
        if not inter.empty:
            assert a.contains_box(inter)
            assert b.contains_box(inter)

    @given(boxes(), boxes())
    @settings(max_examples=200)
    def test_subtract_partitions(self, a, b):
        """a = (a \\ b) + (a & b): volumes add up and pieces are disjoint."""
        pieces = a.subtract(b)
        inter = a.intersect(b)
        assert sum(p.volume for p in pieces) + inter.volume == a.volume
        for i, p in enumerate(pieces):
            assert a.contains_box(p)
            assert not p.intersects(b)
            for q in pieces[i + 1:]:
                assert not p.intersects(q)

    @given(boxes(), st.integers(1, 4))
    def test_coarsen_covers_property(self, b, r):
        """The coarsened box, refined back, always covers the original."""
        if b.empty:
            return
        assert b.coarsen(r).refine(r).contains_box(b)

    @given(boxes(), st.integers(0, 3))
    def test_grow_volume(self, b, g):
        if b.empty:
            return
        e = b.extent
        grown = b.grow(g)
        assert grown.volume == (e[0] + 2 * g) * (e[1] + 2 * g) * (e[2] + 2 * g)

    @given(st.lists(boxes(max_coord=6, max_extent=5), max_size=6))
    @settings(max_examples=100)
    def test_union_volume_against_rasterization(self, bs):
        """Sweep-based union volume equals brute-force voxel count."""
        expected = len({c for b in bs for c in b.cells()})
        assert union_volume(bs) == expected


class TestUnionVolume:
    def test_empty(self):
        assert union_volume([]) == 0

    def test_disjoint(self):
        assert union_volume([Box.cube(2), Box.cube(3, lo=(10, 0, 0))]) == 8 + 27

    def test_nested(self):
        assert union_volume([Box.cube(4), Box.cube(2, lo=(1, 1, 1))]) == 64

    def test_overlapping(self):
        a = Box((0, 0, 0), (2, 1, 1))
        b = Box((1, 0, 0), (3, 1, 1))
        assert union_volume([a, b]) == 3
