"""Tests for the UPS input-file front end and the CLI."""

import numpy as np
import pytest

from repro.ups import GridSpec, ProblemSpec, parse_ups, run_ups
from repro.util.errors import ReproError

MINIMAL = """
<Uintah_specification>
  <Grid><resolution> 8 </resolution><levels> 1 </levels></Grid>
  <RMCRT><nDivQRays> 4 </nDivQRays></RMCRT>
</Uintah_specification>
"""

FULL = """
<Uintah_specification>
  <Grid>
    <resolution>16</resolution>
    <levels>2</levels>
    <refinement_ratio>4</refinement_ratio>
    <patch_size>8</patch_size>
  </Grid>
  <RMCRT>
    <nDivQRays>8</nDivQRays>
    <Threshold>0.001</Threshold>
    <halo>2</halo>
    <allowReflect>false</allowReflect>
    <CCRays>false</CCRays>
    <randomSeed>7</randomSeed>
  </RMCRT>
  <Scheduler type="distributed" ranks="2" pool="waitfree" threads="4"/>
</Uintah_specification>
"""


class TestParsing:
    def test_minimal(self):
        spec = parse_ups(MINIMAL)
        assert spec.grid.resolution == 8
        assert spec.grid.levels == 1
        assert spec.rmcrt.n_divq_rays == 4
        assert spec.scheduler.type == "serial"  # defaults

    def test_full(self):
        spec = parse_ups(FULL)
        assert spec.grid.patch_size == 8
        assert spec.rmcrt.threshold == 0.001
        assert spec.rmcrt.random_seed == 7
        assert spec.scheduler.type == "distributed"
        assert spec.scheduler.ranks == 2

    def test_file_path(self, tmp_path):
        p = tmp_path / "in.ups"
        p.write_text(MINIMAL)
        assert parse_ups(str(p)).grid.resolution == 8

    def test_wrong_root(self):
        with pytest.raises(ReproError):
            parse_ups("<Wrong><Grid/></Wrong>")

    def test_malformed_xml(self):
        with pytest.raises(ReproError):
            parse_ups("<Uintah_specification><Grid>")

    def test_unknown_section(self):
        with pytest.raises(ReproError):
            parse_ups("<Uintah_specification><Physics/></Uintah_specification>")

    def test_unknown_grid_tag(self):
        with pytest.raises(ReproError):
            parse_ups(
                "<Uintah_specification><Grid><cells>8</cells></Grid>"
                "</Uintah_specification>"
            )

    def test_unknown_rmcrt_tag(self):
        with pytest.raises(ReproError):
            parse_ups(
                "<Uintah_specification><RMCRT><rays>8</rays></RMCRT>"
                "</Uintah_specification>"
            )

    def test_unknown_scheduler_attr(self):
        with pytest.raises(ReproError):
            parse_ups(
                '<Uintah_specification><Scheduler type="serial" gpus="4"/>'
                "</Uintah_specification>"
            )

    def test_bad_bool(self):
        with pytest.raises(ReproError):
            parse_ups(
                "<Uintah_specification><RMCRT><CCRays>maybe</CCRays></RMCRT>"
                "</Uintah_specification>"
            )

    def test_validation_rules(self):
        with pytest.raises(ReproError):
            parse_ups(
                "<Uintah_specification><Grid><levels>3</levels></Grid>"
                "</Uintah_specification>"
            )
        with pytest.raises(ReproError):
            parse_ups(
                "<Uintah_specification><RMCRT><Threshold>2.0</Threshold>"
                "</RMCRT></Uintah_specification>"
            )
        with pytest.raises(ReproError):
            # distributed without patch size
            parse_ups(
                '<Uintah_specification><Scheduler type="distributed"/>'
                "</Uintah_specification>"
            )


class TestRun:
    def test_serial_single_level(self):
        result = run_ups(parse_ups(MINIMAL))
        assert result.divq.shape == (8, 8, 8)
        assert (result.divq > 0).all()

    def test_distributed_matches_serial_pipeline(self):
        spec = parse_ups(FULL)
        dist = run_ups(spec)
        serial_spec = parse_ups(FULL)
        serial_spec.scheduler.type = "threaded"
        thr = run_ups(serial_spec)
        np.testing.assert_array_equal(dist.divq, thr.divq)

    def test_cli_end_to_end(self, tmp_path, capsys):
        from repro.__main__ import main

        p = tmp_path / "in.ups"
        p.write_text(MINIMAL)
        assert main([str(p), "--centerline"]) == 0
        out = capsys.readouterr().out
        assert "rays traced" in out
        assert "divQ" in out

    def test_cli_error_path(self, tmp_path, capsys):
        from repro.__main__ import main

        p = tmp_path / "bad.ups"
        p.write_text("<nope/>")
        assert main([str(p)]) == 1
        assert "error:" in capsys.readouterr().err
