"""Tests for Patch, Level, Grid, and decomposition."""

import numpy as np
import pytest

from repro.grid import (
    Box,
    Grid,
    Level,
    Patch,
    build_single_level_grid,
    build_two_level_grid,
    decompose_level,
    patch_count,
    tile_box,
)
from repro.util.errors import GridError


class TestPatch:
    def test_basic(self):
        p = Patch(0, 0, Box.cube(8))
        assert p.num_cells == 512
        assert p.lo == (0, 0, 0)

    def test_ghost_box(self):
        p = Patch(0, 0, Box.cube(4, lo=(4, 4, 4)))
        g = p.ghost_box(2)
        assert g == Box((2, 2, 2), (10, 10, 10))

    def test_ghost_region_volume(self):
        p = Patch(0, 0, Box.cube(4))
        region = p.ghost_region(1)
        assert sum(b.volume for b in region) == 6 ** 3 - 4 ** 3
        for b in region:
            assert not b.intersects(p.box)

    def test_centroid(self):
        p = Patch(0, 0, Box.cube(4, lo=(2, 2, 2)))
        assert p.centroid_index() == (4.0, 4.0, 4.0)


class TestLevel:
    def make_level(self):
        return Level(0, Box.cube(16), dx=(1 / 16,) * 3)

    def test_add_and_lookup(self):
        lvl = self.make_level()
        p = Patch(5, 0, Box.cube(8))
        lvl.add_patch(p)
        assert lvl.patch(5) is p
        assert lvl.num_patches == 1

    def test_overlap_rejected(self):
        lvl = self.make_level()
        lvl.add_patch(Patch(0, 0, Box.cube(8)))
        with pytest.raises(GridError):
            lvl.add_patch(Patch(1, 0, Box.cube(8, lo=(4, 4, 4))))

    def test_outside_domain_rejected(self):
        lvl = self.make_level()
        with pytest.raises(GridError):
            lvl.add_patch(Patch(0, 0, Box.cube(8, lo=(12, 0, 0))))

    def test_wrong_level_index_rejected(self):
        lvl = self.make_level()
        with pytest.raises(GridError):
            lvl.add_patch(Patch(0, 3, Box.cube(4)))

    def test_duplicate_id_rejected(self):
        lvl = self.make_level()
        lvl.add_patch(Patch(0, 0, Box.cube(4)))
        with pytest.raises(GridError):
            lvl.add_patch(Patch(0, 0, Box.cube(4, lo=(8, 8, 8))))

    def test_cell_position_roundtrip(self):
        lvl = self.make_level()
        for cell in [(0, 0, 0), (7, 3, 15), (15, 15, 15)]:
            pos = lvl.cell_position(cell)
            assert lvl.cell_index(pos) == cell

    def test_cell_centers(self):
        lvl = Level(0, Box.cube(4), dx=(0.25,) * 3)
        x, y, z = lvl.cell_centers()
        assert np.allclose(x, [0.125, 0.375, 0.625, 0.875])

    def test_physical_bounds(self):
        lvl = Level(0, Box.cube(4), dx=(0.25,) * 3)
        assert np.allclose(lvl.physical_lower, 0)
        assert np.allclose(lvl.physical_upper, 1)

    def test_map_to_coarser(self):
        lvl = Level(1, Box.cube(16), dx=(1 / 16,) * 3, refinement_ratio=(4, 4, 4))
        assert lvl.map_cell_to_coarser((7, 8, 15)) == (1, 2, 3)
        assert lvl.map_box_to_coarser(Box((2, 2, 2), (9, 9, 9))) == Box(
            (0, 0, 0), (3, 3, 3)
        )

    def test_containing_patch(self):
        lvl = self.make_level()
        decompose_level(lvl, (8, 8, 8))
        p = lvl.containing_patch((9, 1, 1))
        assert p is not None and p.box.contains_point((9, 1, 1))
        assert lvl.containing_patch((99, 0, 0)) is None


class TestDecomposition:
    def test_tile_exact(self):
        boxes = tile_box(Box.cube(8), (4, 4, 4))
        assert len(boxes) == 8
        assert sum(b.volume for b in boxes) == 512

    def test_tile_indivisible_rejected(self):
        with pytest.raises(GridError):
            tile_box(Box.cube(10), (4, 4, 4))

    def test_tile_remainder(self):
        boxes = tile_box(Box.cube(10), (4, 4, 4), allow_remainder=True)
        assert sum(b.volume for b in boxes) == 1000
        assert len(boxes) == 27

    def test_decompose_level_registers(self):
        lvl = Level(0, Box.cube(16), dx=(1.0,) * 3)
        patches = decompose_level(lvl, (8, 8, 8))
        assert len(patches) == 8
        assert lvl.is_fully_tiled()

    def test_decompose_twice_rejected(self):
        lvl = Level(0, Box.cube(16), dx=(1.0,) * 3)
        decompose_level(lvl, (8, 8, 8))
        with pytest.raises(GridError):
            decompose_level(lvl, (4, 4, 4))

    def test_patch_count(self):
        assert patch_count(256, 16) == 16 ** 3
        assert patch_count(256, 64) == 64
        with pytest.raises(GridError):
            patch_count(256, 48)


class TestGrid:
    def test_two_level_benchmark_grid(self):
        grid = build_two_level_grid(64, refinement_ratio=4, fine_patch_size=16)
        assert grid.num_levels == 2
        coarse, fine = grid.levels
        assert coarse.domain_box == Box.cube(16)
        assert fine.domain_box == Box.cube(64)
        assert fine.num_patches == 64
        assert grid.total_cells == 64 ** 3 + 16 ** 3

    def test_levels_share_physical_domain(self):
        grid = build_two_level_grid(32, refinement_ratio=4)
        for lvl in grid.levels:
            assert np.allclose(lvl.physical_lower, 0)
            assert np.allclose(lvl.physical_upper, 1)

    def test_paper_problem_sizes(self):
        """The MEDIUM (17.04M) and LARGE (136.31M) cell counts from Section V."""
        medium = build_two_level_grid(256, refinement_ratio=4)
        assert medium.total_cells == 256 ** 3 + 64 ** 3 == 17_039_360
        large = build_two_level_grid(512, refinement_ratio=4)
        assert large.total_cells == 512 ** 3 + 128 ** 3 == 136_314_880

    def test_inconsistent_ratio_rejected(self):
        grid = Grid()
        grid.add_level(Box.cube(16), (1 / 16,) * 3)
        with pytest.raises(GridError):
            grid.add_level(Box.cube(50), (1 / 50,) * 3, refinement_ratio=(4, 4, 4))

    def test_inconsistent_dx_rejected(self):
        grid = Grid()
        grid.add_level(Box.cube(16), (1 / 16,) * 3)
        with pytest.raises(GridError):
            # domain refines correctly but dx does not match ratio
            grid.add_level(Box.cube(64), (1 / 128,) * 3, refinement_ratio=(4, 4, 4))

    def test_single_level_grid(self):
        grid = build_single_level_grid(32, patch_size=16)
        assert grid.num_levels == 1
        assert grid.finest_level.num_patches == 8

    def test_empty_grid_guards(self):
        grid = Grid()
        with pytest.raises(GridError):
            _ = grid.finest_level
        with pytest.raises(GridError):
            grid.level(0)

    def test_indivisible_fine_cells_rejected(self):
        with pytest.raises(GridError):
            build_two_level_grid(30, refinement_ratio=4)

    def test_all_patches_spans_levels(self):
        grid = build_two_level_grid(
            32, refinement_ratio=4, fine_patch_size=16, coarse_patch_size=8
        )
        ids = [p.patch_id for p in grid.all_patches()]
        assert len(ids) == len(set(ids))
        assert grid.total_patches == 8 + 1
