"""Tests for labels, variables, the host DW, and the GPU DW level DB."""

import numpy as np
import pytest

from repro.grid import Box, Level, decompose_level
from repro.dw import (
    CCVariable,
    DataWarehouse,
    DataWarehouseManager,
    GPUDataWarehouse,
    ReductionVariable,
    VarKind,
    VarLabel,
    cc,
    per_level,
    reduction,
)
from repro.util.errors import DataWarehouseError


class TestLabels:
    def test_kinds(self):
        assert cc("x").kind is VarKind.CELL_CENTERED
        assert per_level("x").kind is VarKind.PER_LEVEL
        assert reduction("x").kind is VarKind.REDUCTION

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            VarLabel("")

    def test_hashable(self):
        assert len({cc("a"), cc("a"), cc("b")}) == 2


class TestCCVariable:
    def test_zero_init(self):
        v = CCVariable(Box.cube(4))
        assert v.data.shape == (4, 4, 4)
        assert v.nbytes == 64 * 8

    def test_shape_mismatch(self):
        with pytest.raises(DataWarehouseError):
            CCVariable(Box.cube(4), data=np.zeros((3, 3, 3)))

    def test_empty_box_rejected(self):
        with pytest.raises(DataWarehouseError):
            CCVariable(Box((0, 0, 0), (0, 1, 1)))

    def test_view_offset(self):
        v = CCVariable(Box.cube(4, lo=(10, 10, 10)))
        region = Box.cube(2, lo=(11, 11, 11))
        v.view(region)[...] = 7
        assert v.data[1, 1, 1] == 7
        assert v.data[0, 0, 0] == 0

    def test_view_outside_rejected(self):
        v = CCVariable(Box.cube(4))
        with pytest.raises(DataWarehouseError):
            v.view(Box.cube(2, lo=(3, 3, 3)))

    def test_copy_region_from(self):
        a = CCVariable(Box.cube(4), data=np.ones((4, 4, 4)))
        b = CCVariable(Box.cube(4))
        b.copy_region_from(a, Box.cube(2, lo=(1, 1, 1)))
        assert b.data.sum() == 8


class TestReductionVariable:
    def test_ops(self):
        assert ReductionVariable(2.0, "sum").combine(ReductionVariable(3.0, "sum")).value == 5.0
        assert ReductionVariable(2.0, "min").combine(ReductionVariable(3.0, "min")).value == 2.0
        assert ReductionVariable(2.0, "max").combine(ReductionVariable(3.0, "max")).value == 3.0

    def test_bad_op(self):
        with pytest.raises(DataWarehouseError):
            ReductionVariable(0.0, "mean")

    def test_mixed_ops_rejected(self):
        with pytest.raises(DataWarehouseError):
            ReductionVariable(1.0, "sum").combine(ReductionVariable(1.0, "min"))


class TestHostDW:
    def setup_method(self):
        self.level = Level(0, Box.cube(8), dx=(1 / 8,) * 3)
        self.patches = decompose_level(self.level, (4, 4, 4))
        self.dw = DataWarehouse()
        self.phi = cc("phi")

    def test_put_get(self):
        v = CCVariable(self.patches[0].box)
        self.dw.put(self.phi, 0, v)
        assert self.dw.get(self.phi, 0) is v
        assert self.dw.exists(self.phi, 0)
        assert not self.dw.exists(self.phi, 1)

    def test_double_compute_rejected(self):
        self.dw.put(self.phi, 0, CCVariable(self.patches[0].box))
        with pytest.raises(DataWarehouseError):
            self.dw.put(self.phi, 0, CCVariable(self.patches[0].box))

    def test_missing_get(self):
        with pytest.raises(DataWarehouseError):
            self.dw.get(self.phi, 3)

    def test_wrong_kind_rejected(self):
        with pytest.raises(DataWarehouseError):
            self.dw.put(per_level("x"), 0, CCVariable(self.patches[0].box))
        with pytest.raises(DataWarehouseError):
            self.dw.put_level(cc("x"), 0, np.zeros(3))

    def test_get_region_assembles_across_patches(self):
        for p in self.patches:
            data = np.full(p.box.extent, float(p.patch_id))
            self.dw.put(self.phi, p.patch_id, CCVariable(p.box, data))
        region = Box((2, 2, 2), (6, 6, 6))  # spans all 8 patches
        out = self.dw.get_region(self.phi, self.level, region)
        assert out.shape == (4, 4, 4)
        assert out[0, 0, 0] == self.patches[0].patch_id
        assert len(np.unique(out)) == 8

    def test_get_region_missing_raises(self):
        self.dw.put(self.phi, 0, CCVariable(self.patches[0].box))
        with pytest.raises(DataWarehouseError):
            self.dw.get_region(self.phi, self.level, Box.cube(8))

    def test_get_region_default_fills_wall_ring(self):
        for p in self.patches:
            self.dw.put(self.phi, p.patch_id, CCVariable(p.box, np.ones(p.box.extent)))
        out = self.dw.get_region(self.phi, self.level, Box.cube(8).grow(1), default=-5.0)
        assert out[0, 0, 0] == -5.0
        assert out[1, 1, 1] == 1.0

    def test_foreign_pieces_cover_remote_data(self):
        # only patch 0 is local; a foreign piece covers the one remote
        # cell the region touches
        self.dw.put(self.phi, 0, CCVariable(self.patches[0].box, np.ones((4, 4, 4))))
        foreign_box = Box((4, 3, 3), (5, 4, 4))
        self.dw.add_foreign(
            self.phi, 4, CCVariable(foreign_box, np.full((1, 1, 1), 9.0))
        )
        region = Box((3, 3, 3), (5, 4, 4))
        out = self.dw.get_region(self.phi, self.level, region)
        assert out[0, 0, 0] == 1.0
        assert out[1, 0, 0] == 9.0

    def test_level_vars(self):
        lbl = per_level("coarse_abskg")
        arr = np.ones((4, 4, 4))
        self.dw.put_level(lbl, 0, arr)
        assert self.dw.get_level(lbl, 0) is arr
        assert self.dw.has_level(lbl, 0)
        with pytest.raises(DataWarehouseError):
            self.dw.put_level(lbl, 0, arr)
        with pytest.raises(DataWarehouseError):
            self.dw.get_level(lbl, 1)

    def test_reductions_combine(self):
        lbl = reduction("max_temp")
        self.dw.put_reduction(lbl, ReductionVariable(5.0, "max"))
        self.dw.put_reduction(lbl, ReductionVariable(9.0, "max"))
        self.dw.put_reduction(lbl, ReductionVariable(7.0, "max"))
        assert self.dw.get_reduction(lbl).value == 9.0

    def test_nbytes_and_names(self):
        self.dw.put(self.phi, 0, CCVariable(self.patches[0].box))
        self.dw.put_level(per_level("lv"), 0, np.zeros(10))
        assert self.dw.nbytes == 64 * 8 + 80
        assert self.dw.variable_names() == ["lv", "phi"]


class TestDWManager:
    def test_advance_swaps(self):
        mgr = DataWarehouseManager()
        first = mgr.new_dw
        assert mgr.old_dw is None
        mgr.advance()
        assert mgr.old_dw is first
        assert mgr.new_dw is not first
        assert mgr.new_dw.generation == 1


class TestGPUDW:
    def make_var(self, n=8):
        return CCVariable(Box.cube(n))

    def test_upload_accounting(self):
        gpu = GPUDataWarehouse(capacity_bytes=10 ** 6)
        v = self.make_var()
        gpu.upload_patch_var(cc("phi"), 0, v)
        assert gpu.usage == v.nbytes
        assert gpu.stats.h2d_bytes == v.nbytes
        assert gpu.stats.h2d_transfers == 1

    def test_reupload_free(self):
        gpu = GPUDataWarehouse(capacity_bytes=10 ** 6)
        v = self.make_var()
        gpu.upload_patch_var(cc("phi"), 0, v)
        gpu.upload_patch_var(cc("phi"), 0, v)
        assert gpu.stats.h2d_transfers == 1

    def test_capacity_enforced(self):
        gpu = GPUDataWarehouse(capacity_bytes=1000)
        with pytest.raises(DataWarehouseError):
            gpu.upload_patch_var(cc("phi"), 0, self.make_var(8))  # 4 KiB

    def test_release_returns_bytes(self):
        gpu = GPUDataWarehouse(capacity_bytes=10 ** 6)
        gpu.upload_patch_var(cc("phi"), 0, self.make_var())
        gpu.release_patch_var(cc("phi"), 0)
        assert gpu.usage == 0
        with pytest.raises(DataWarehouseError):
            gpu.release_patch_var(cc("phi"), 0)

    def test_download_counts(self):
        gpu = GPUDataWarehouse(capacity_bytes=10 ** 6)
        v = self.make_var()
        gpu.upload_patch_var(cc("divq"), 0, v)
        gpu.download_patch_var(cc("divq"), 0)
        assert gpu.stats.d2h_bytes == v.nbytes

    def test_level_db_shares_single_copy(self):
        """The paper's fix: N tasks sharing one coarse-level copy pay
        one transfer and one allocation."""
        gpu = GPUDataWarehouse(capacity_bytes=10 ** 6, use_level_db=True)
        lbl = per_level("coarse_abskg")
        data = np.ones((16, 16, 16))
        for task in range(10):
            gpu.upload_level_var(lbl, 0, data, task_id=task)
        assert gpu.stats.h2d_transfers == 1
        assert gpu.usage == data.nbytes
        assert gpu.get_level_var(lbl, 0) is data

    def test_legacy_mode_copies_per_task(self):
        """Without the level DB each task pays its own copy — 10 tasks
        cost 10x the memory and traffic (what blew the 6 GB budget)."""
        gpu = GPUDataWarehouse(capacity_bytes=10 ** 7, use_level_db=False)
        lbl = per_level("coarse_abskg")
        data = np.ones((16, 16, 16))
        for task in range(10):
            gpu.upload_level_var(lbl, 0, data, task_id=task)
        assert gpu.stats.h2d_transfers == 10
        assert gpu.usage == 10 * data.nbytes
        gpu.release_task(3)
        assert gpu.usage == 9 * data.nbytes

    def test_legacy_mode_ooms_where_level_db_fits(self):
        """The crux of contribution (ii) at miniature scale."""
        data = np.ones((32, 32, 32))  # 256 KiB
        budget = int(2.5 * data.nbytes)
        lbl = per_level("coarse")
        ok = GPUDataWarehouse(capacity_bytes=budget, use_level_db=True)
        for task in range(8):
            ok.upload_level_var(lbl, 0, data, task_id=task)
        legacy = GPUDataWarehouse(capacity_bytes=budget, use_level_db=False)
        with pytest.raises(DataWarehouseError):
            for task in range(8):
                legacy.upload_level_var(lbl, 0, data, task_id=task)

    def test_legacy_requires_task_id(self):
        gpu = GPUDataWarehouse(use_level_db=False)
        with pytest.raises(DataWarehouseError):
            gpu.upload_level_var(per_level("x"), 0, np.zeros(4))

    def test_level_var_kind_enforced(self):
        gpu = GPUDataWarehouse()
        with pytest.raises(DataWarehouseError):
            gpu.upload_level_var(cc("x"), 0, np.zeros(4))

    def test_clear_level_db(self):
        gpu = GPUDataWarehouse()
        gpu.upload_level_var(per_level("x"), 0, np.zeros(100))
        gpu.clear_level_db()
        assert gpu.usage == 0
        assert gpu.peak_usage == 800

    def test_resident_summary(self):
        gpu = GPUDataWarehouse()
        gpu.upload_patch_var(cc("phi"), 0, self.make_var())
        gpu.upload_level_var(per_level("x"), 0, np.zeros(8))
        s = gpu.resident_summary()
        assert s["patch_vars"] == 1
        assert s["level_db_entries"] == 1
