"""Tests for the boundary-flux (radiometer) task in the distributed
RMCRT pipeline — the boiler wall heat flux, computed multi-level."""

import numpy as np
import pytest

from repro.grid import Box
from repro.core import (
    DistributedRMCRT,
    LevelFields,
    VirtualRadiometer,
    benchmark_property_init,
)
from repro.core.boundary_flux import incident_flux_multilevel
from repro.radiation import BurnsChristonBenchmark, RadiativeProperties
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def pipeline():
    bench = BurnsChristonBenchmark(resolution=16)
    grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
    drm = DistributedRMCRT(
        grid, benchmark_property_init(bench),
        rays_per_cell=4, halo=2, seed=11,
        compute_boundary_flux=True, flux_rays_per_face=32,
    )
    return bench, grid, drm, drm.solve("serial")


class TestPipelineBoundaryFlux:
    def test_flux_only_in_wall_adjacent_cells(self, pipeline):
        _, _, _, result = pipeline
        wf = result.wall_flux
        assert wf is not None and wf.shape == (16, 16, 16)
        interior_core = wf[1:-1, 1:-1, 1:-1]
        assert np.allclose(interior_core, 0.0)
        faces = [wf[0], wf[-1], wf[:, 0], wf[:, -1], wf[:, :, 0], wf[:, :, -1]]
        for f in faces:
            assert (f > 0).all()

    def test_flux_physical_bounds(self, pipeline):
        """Hot unit-emissive medium, cold black walls: incident flux in
        (0, sigma_t4 = 1); corners collect up to 3 walls' worth."""
        _, _, _, result = pipeline
        wf = result.wall_flux
        face_center = wf[0, 8, 8]
        assert 0.0 < face_center < 1.0
        # corners see three walls: sum of three face fluxes
        assert wf[0, 0, 0] > face_center

    def test_distributed_matches_serial(self, pipeline):
        _, _, drm, serial = pipeline
        dist = drm.solve("distributed", num_ranks=4)
        np.testing.assert_array_equal(dist.wall_flux, serial.wall_flux)
        np.testing.assert_array_equal(dist.divq, serial.divq)

    def test_threaded_matches_serial(self, pipeline):
        _, _, drm, serial = pipeline
        thr = drm.solve("threaded", num_threads=4)
        np.testing.assert_array_equal(thr.wall_flux, serial.wall_flux)

    def test_graph_gains_flux_tasks(self, pipeline):
        _, grid, drm, _ = pipeline
        graph = drm.build_graph()
        names = [t.task.name for t in graph.detailed_tasks]
        assert names.count("rmcrt.boundaryFlux") == 8  # every patch touches walls

    def test_disabled_by_default(self):
        bench = BurnsChristonBenchmark(resolution=16)
        grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
        drm = DistributedRMCRT(
            grid, benchmark_property_init(bench), rays_per_cell=2, halo=2
        )
        result = drm.solve("serial")
        assert result.wall_flux is None

    def test_agrees_with_single_level_radiometer(self, pipeline):
        """The multi-level pipeline flux statistically matches the
        single-level VirtualRadiometer on the same physics."""
        bench, grid, _, result = pipeline
        grid1 = bench.single_level_grid()
        props = bench.properties_for_level(grid1.finest_level)
        fields = LevelFields.from_properties(grid1.finest_level, props)
        direct = VirtualRadiometer(rays_per_face=256, seed=5).incident_flux(
            fields, 0, 0
        )
        pipeline_face = result.wall_flux[0]  # x- wall
        rel = abs(pipeline_face.mean() - direct.mean()) / direct.mean()
        # boundary rays are the onion's worst case: every ray crosses
        # the entire domain, almost all of it on the (here extremely
        # coarse, 4^3) radiation level — a real systematic coarsening
        # error of O(10%) at this toy resolution, shrinking with the
        # coarse mesh like any onion error
        assert rel < 0.25


class TestMultilevelRadiometerUnit:
    def make_fields(self, n=8, kappa=1.0):
        box = Box.cube(n)
        props = RadiativeProperties.from_fields(
            box, abskg=np.full(box.extent, kappa), sigma_t4=np.ones(box.extent)
        )
        return LevelFields(
            abskg=props.abskg, sigma_t4=props.sigma_t4, cell_type=props.cell_type,
            interior=box, dx=(1.0 / n,) * 3, anchor=(0.0,) * 3,
        )

    def test_single_level_list_matches_radiometer(self):
        """With one level and no ROI the multilevel helper reduces to
        the plain radiometer math (same estimator, same bounds)."""
        fields = self.make_fields(8, kappa=200.0)
        face = Box((0, 0, 0), (1, 8, 8))
        rng = np.random.default_rng(3)
        q = incident_flux_multilevel([fields], 0, 0, face, 64, rng)
        assert q.shape == (8, 8)
        assert np.allclose(q, 1.0, rtol=0.1)  # optically thick -> blackbody

    def test_invalid_wall(self):
        fields = self.make_fields()
        with pytest.raises(ReproError):
            incident_flux_multilevel(
                [fields], 5, 0, Box((0, 0, 0), (1, 8, 8)), 4,
                np.random.default_rng(0),
            )

    def test_empty_face_box(self):
        fields = self.make_fields()
        with pytest.raises(ReproError):
            incident_flux_multilevel(
                [fields], 0, 0, Box((0, 0, 0), (0, 8, 8)), 4,
                np.random.default_rng(0),
            )
