"""Tests for inter-level transfer operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.grid.refinement import (
    coarsen_average,
    coarsen_max,
    project_properties,
    refine_inject,
)
from repro.util.errors import GridError


def small_fields(n=8):
    return arrays(
        dtype=np.float64,
        shape=(n, n, n),
        elements=st.floats(0, 100, allow_nan=False, width=32),
    )


class TestCoarsenAverage:
    def test_constant_preserved(self):
        fine = np.full((8, 8, 8), 3.5)
        assert np.allclose(coarsen_average(fine, 2), 3.5)

    def test_block_means(self):
        fine = np.zeros((4, 4, 4))
        fine[:2, :2, :2] = 8.0
        coarse = coarsen_average(fine, 2)
        assert coarse.shape == (2, 2, 2)
        assert coarse[0, 0, 0] == 8.0
        assert coarse[1, 1, 1] == 0.0

    def test_anisotropic_ratio(self):
        fine = np.arange(2 * 4 * 8, dtype=float).reshape(2, 4, 8)
        coarse = coarsen_average(fine, (1, 2, 4))
        assert coarse.shape == (2, 2, 2)
        assert np.isclose(coarse[0, 0, 0], fine[0, :2, :4].mean())

    def test_indivisible_rejected(self):
        with pytest.raises(GridError):
            coarsen_average(np.zeros((5, 4, 4)), 2)

    def test_bad_ratio_rejected(self):
        with pytest.raises(GridError):
            coarsen_average(np.zeros((4, 4, 4)), 0)

    @given(small_fields())
    @settings(max_examples=50)
    def test_conservation(self, fine):
        """Global mean is invariant under conservative restriction."""
        for r in (2, 4):
            coarse = coarsen_average(fine, r)
            assert np.isclose(coarse.mean(), fine.mean(), rtol=1e-10, atol=1e-12)

    @given(small_fields())
    @settings(max_examples=50)
    def test_bounds(self, fine):
        coarse = coarsen_average(fine, 2)
        assert coarse.min() >= fine.min() - 1e-12
        assert coarse.max() <= fine.max() + 1e-12


class TestCoarsenMax:
    def test_any_solid_marks_coarse(self):
        ct = np.zeros((4, 4, 4), dtype=np.int8)
        ct[3, 3, 3] = 2  # one intrusion cell
        coarse = coarsen_max(ct, 2)
        assert coarse[1, 1, 1] == 2
        assert coarse[0, 0, 0] == 0

    @given(small_fields(n=4))
    def test_max_dominates_average(self, fine):
        assert np.all(coarsen_max(fine, 2) >= coarsen_average(fine, 2) - 1e-12)


class TestRefineInject:
    def test_shape(self):
        out = refine_inject(np.ones((2, 3, 4)), (2, 1, 3))
        assert out.shape == (4, 3, 12)

    def test_children_copy_parent(self):
        coarse = np.arange(8, dtype=float).reshape(2, 2, 2)
        fine = refine_inject(coarse, 2)
        assert fine[0, 0, 0] == fine[1, 1, 1] == coarse[0, 0, 0]
        assert fine[2, 2, 2] == coarse[1, 1, 1]

    @given(small_fields(n=4), st.integers(1, 3))
    @settings(max_examples=50)
    def test_coarsen_is_left_inverse(self, coarse, r):
        """coarsen_average(refine_inject(x)) == x exactly."""
        assert np.allclose(coarsen_average(refine_inject(coarse, r), r), coarse)


class TestProjectProperties:
    def test_bundle(self):
        fields = {
            "abskg": np.random.default_rng(0).random((4, 4, 4)),
            "sigma_t4": np.ones((4, 4, 4)),
            "cell_type": np.zeros((4, 4, 4), dtype=np.int8),
        }
        fields["cell_type"][0, 0, 0] = 1
        out = project_properties(fields, 2)
        assert out["abskg"].shape == (2, 2, 2)
        assert np.isclose(out["abskg"].mean(), fields["abskg"].mean())
        assert out["cell_type"][0, 0, 0] == 1  # wall survives coarsening
