"""Tests for the trace analytics engine: span-DAG construction,
critical-path extraction (and its lower-bound guarantee), wall-clock
attribution summing to the measured window, bottleneck ranking, and the
``python -m repro analyze`` CLI over both real merged traces and
tracesim timelines."""

import json

import pytest

from repro.perf.analyze import (
    ATTRIBUTION_TOLERANCE,
    analyze_events,
    analyze_trace,
    attribute_wallclock,
    build_span_dag,
    cmd_analyze,
    critical_path,
    format_analysis,
)
from repro.util.errors import PerfError


def span(name, tid, ts, dur, cat="task", pid=0, args=None):
    return {
        "name": name, "ph": "X", "ts": float(ts), "dur": float(dur),
        "pid": pid, "tid": tid, "cat": cat, "args": args or {},
    }


def flow(fid, ph, tid, ts, pid=0, args=None):
    return {
        "name": "msg", "ph": ph, "ts": float(ts), "pid": pid, "tid": tid,
        "cat": "flow", "id": fid, "args": args or {},
    }


# ----------------------------------------------------------------------
# DAG construction
# ----------------------------------------------------------------------
class TestBuildSpanDag:
    def test_rank_lanes_only(self):
        events = [
            span("a", 0, 0, 10),
            span("driver-envelope", 9, 0, 100, cat="controller"),
        ]
        dag = build_span_dag(events)
        # the driver lane has no task spans: excluded entirely
        assert [n.name for n in dag.nodes] == ["a"]
        assert dag.ranks == [0]

    def test_lane_program_order_edges(self):
        events = [span("a", 0, 0, 10), span("b", 0, 20, 10)]
        dag = build_span_dag(events)
        a, b = dag.nodes
        assert b.lane_pred == a.index
        assert a.lane_pred is None

    def test_nested_spans_dropped(self):
        events = [span("outer", 0, 0, 100), span("inner", 0, 10, 5)]
        dag = build_span_dag(events)
        assert [n.name for n in dag.nodes] == ["outer"]

    def test_multi_pid_uses_pid_as_rank(self):
        events = [span("a", 0, 0, 10, pid=0), span("b", 0, 0, 10, pid=3)]
        dag = build_span_dag(events)
        assert dag.ranks == [0, 3]

    def test_single_pid_uses_tid_as_rank(self):
        events = [span("a", 0, 0, 10), span("b", 2, 0, 10)]
        dag = build_span_dag(events)
        assert dag.ranks == [0, 2]

    def test_flow_edge_connects_sender_to_receiver(self):
        events = [
            span("send-task", 0, 0, 10),
            span("recv-task", 1, 20, 10),
            flow("m1", "s", 0, 5),
            flow("m1", "f", 1, 22),
        ]
        dag = build_span_dag(events)
        assert dag.msg_edges == 1
        recv = next(n for n in dag.nodes if n.name == "recv-task")
        send = next(n for n in dag.nodes if n.name == "send-task")
        assert send.index in recv.msg_preds

    def test_time_inconsistent_flow_rejected(self):
        # source span ends after the destination starts: not a valid
        # happens-before edge, must not poison the critical path
        events = [
            span("late-sender", 0, 0, 50),
            span("early-recv", 1, 10, 10),
            flow("m1", "s", 0, 40),
            flow("m1", "f", 1, 12),
        ]
        dag = build_span_dag(events)
        assert dag.msg_edges == 0
        assert dag.unbound_flows == 1

    def test_flow_arriving_between_spans_binds_by_dtask_id(self):
        events = [
            span("producer", 0, 0, 10, args={"dtask_id": 1}),
            span("consumer", 1, 50, 10, args={"dtask_id": 7}),
            flow("m1", "s", 0, 10),
            flow("m1", "f", 1, 20, args={"dtask_id": 7}),
        ]
        dag = build_span_dag(events)
        assert dag.msg_edges == 1
        consumer = next(n for n in dag.nodes if n.name == "consumer")
        assert len(consumer.msg_preds) == 1


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
class TestCriticalPath:
    def test_follows_message_chain_across_ranks(self):
        events = [
            span("a", 0, 0, 10),
            span("b", 1, 0, 2),
            span("c", 1, 15, 10),
            flow("m", "s", 0, 5),
            flow("m", "f", 1, 16),
        ]
        path = critical_path(build_span_dag(events))
        # c's binding predecessor is a (ends at 10) not b (ends at 2)
        assert [n.name for n in path] == ["a", "c"]

    def test_path_spans_are_time_disjoint(self):
        events = [
            span("a", 0, 0, 10), span("b", 0, 12, 10), span("c", 0, 30, 5),
        ]
        path = critical_path(build_span_dag(events))
        for prev, cur in zip(path, path[1:]):
            assert prev.end <= cur.start + 1e-9

    def test_empty_dag(self):
        assert critical_path(build_span_dag([])) == []


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------
class TestAttribution:
    def test_buckets_sum_to_wall_clock(self):
        events = [
            span("work", 0, 0, 60),
            span("comm.send", 0, 60, 10, cat="comm"),
            span("work", 1, 0, 30),
            span("comm.recv", 1, 40, 20, cat="comm"),
        ]
        att = attribute_wallclock(build_span_dag(events))
        assert att["wall_s"] == pytest.approx(70 / 1e6)
        for row in att["per_rank"]:
            total = row["compute_s"] + row["comm_wait_s"] + row["idle_s"]
            assert total == pytest.approx(att["wall_s"], rel=1e-9)
        r1 = next(r for r in att["per_rank"] if r["rank"] == 1)
        assert r1["idle_s"] == pytest.approx(20 / 1e6)
        assert att["buckets_sum_ok"]

    def test_comm_spans_split_from_compute(self):
        events = [span("comm.recv", 0, 0, 10, cat="comm"), span("t", 0, 20, 10)]
        att = attribute_wallclock(build_span_dag(events))
        row = att["per_rank"][0]
        assert row["comm_wait_s"] == pytest.approx(10 / 1e6)
        assert row["compute_s"] == pytest.approx(10 / 1e6)


# ----------------------------------------------------------------------
# full analysis: synthetic + real pipelines
# ----------------------------------------------------------------------
class TestAnalyzeEvents:
    def test_empty_trace_raises(self):
        with pytest.raises(PerfError):
            analyze_events([], source="empty")

    def test_report_shape_and_bounds(self):
        events = [
            span("a", 0, 0, 40),
            span("b", 1, 0, 10),
            span("c", 1, 50, 40),
            flow("m", "s", 0, 5),
            flow("m", "f", 1, 55),
        ]
        report = analyze_events(events, source="synthetic")
        sb = report["speedup_bound"]
        assert sb["bound_holds"]
        assert sb["critical_path_s"] <= report["makespan_s"] * (1 + 1e-6)
        assert sb["total_work_s"] == pytest.approx(90 / 1e6)
        assert report["attribution"]["buckets_sum_ok"]
        text = format_analysis(report)
        assert "critical path" in text
        assert "attribution" in text

    def test_bottleneck_ranking(self):
        events = [
            span("cheap", 0, 0, 1),
            span("expensive", 0, 10, 100),
            span("expensive", 1, 0, 90),
        ]
        report = analyze_events(events, top_k=2)
        tasks = report["bottlenecks"]["tasks"]
        assert tasks[0]["name"] == "expensive"
        assert tasks[0]["count"] == 2


@pytest.fixture(scope="module")
def tracesim_events():
    from repro.perf.analyze import _tracesim_events

    return _tracesim_events(ranks=4, resolution=12, rays_per_cell=2)


class TestAnalyzeTracesim:
    def test_critical_path_bounds_simulated_makespan(self, tracesim_events):
        events, sim_report = tracesim_events
        report = analyze_events(events, source="tracesim")
        cp = report["speedup_bound"]["critical_path_s"]
        assert cp <= sim_report.makespan * (1 + 1e-6)
        assert report["speedup_bound"]["bound_holds"]

    def test_attribution_sums_within_tolerance(self, tracesim_events):
        events, _ = tracesim_events
        report = analyze_events(events, source="tracesim")
        att = report["attribution"]
        assert att["buckets_sum_ok"]
        assert att["max_residual_frac"] <= ATTRIBUTION_TOLERANCE
        for row in att["per_rank"]:
            total = row["compute_s"] + row["comm_wait_s"] + row["idle_s"]
            assert total == pytest.approx(att["wall_s"], rel=1e-6)

    def test_flow_edges_recovered(self, tracesim_events):
        events, sim_report = tracesim_events
        report = analyze_events(events, source="tracesim")
        assert report["flow_edges"] > 0
        assert report["ranks"] == len(sim_report.ranks)


class TestAnalyzeProfilePipeline:
    """The acceptance-criteria path: profile -> merge -> analyze."""

    @pytest.fixture(scope="class")
    def merged_trace(self, tmp_path_factory):
        from repro.perf.profile import run_profile

        tmp = tmp_path_factory.mktemp("analyze_profile")
        run_profile(
            steps=1,
            resolution=12,
            rays_per_cell=2,
            num_ranks=2,
            trace_path=str(tmp / "trace.json"),
            metrics_path=str(tmp / "metrics.json"),
            merge=True,
            rank_trace_dir=str(tmp),
        )
        return tmp / "trace.json"

    def test_merged_trace_analysis(self, merged_trace):
        report = analyze_trace(merged_trace)
        assert report["ranks"] == 2
        assert report["flow_edges"] > 0
        assert report["attribution"]["buckets_sum_ok"]
        assert report["speedup_bound"]["bound_holds"]
        # comm wait is attributed, not folded into compute
        assert any(
            row["comm_wait_s"] > 0 for row in report["attribution"]["per_rank"]
        )

    def test_unreadable_trace_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(PerfError):
            analyze_trace(bad)
        notalist = tmp_path / "obj.json"
        notalist.write_text("{}")
        with pytest.raises(PerfError):
            analyze_trace(notalist)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestAnalyzeCli:
    def test_requires_exactly_one_mode(self, capsys):
        assert cmd_analyze([]) == 2
        assert cmd_analyze(["t.json", "--tracesim"]) == 2

    def test_tracesim_mode_writes_report(self, tmp_path, capsys):
        out = tmp_path / "analysis_report.json"
        rc = cmd_analyze(
            [
                "--tracesim", "--ranks", "2", "--resolution", "8",
                "--rays-per-cell", "2", "--out", str(out),
            ]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["attribution"]["buckets_sum_ok"]
        assert report["speedup_bound"]["bound_holds"]
        assert "simulated_makespan_s" in report
        assert (
            report["speedup_bound"]["critical_path_s"]
            <= report["simulated_makespan_s"] * (1 + 1e-6)
        )
        assert "critical path" in capsys.readouterr().out

    def test_trace_file_mode(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps([
            span("a", 0, 0, 10), span("b", 1, 20, 10),
        ]))
        out = tmp_path / "report.json"
        assert cmd_analyze([str(trace), "--out", str(out)]) == 0
        assert json.loads(out.read_text())["spans"] == 2

    def test_main_dispatch(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        rc = main(
            [
                "analyze", "--tracesim", "--ranks", "2", "--resolution", "8",
                "--rays-per-cell", "2",
            ]
        )
        assert rc == 0
        assert (tmp_path / "analysis_report.json").exists()
