"""Tests for ray generation: isotropy, origins, reproducibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import Box
from repro.core import (
    LevelFields,
    cell_ray_origins,
    cosine_hemisphere_directions,
    generate_patch_rays,
    isotropic_directions,
    region_cells,
)
from repro.radiation import RadiativeProperties


def make_fields(n=8, kappa=1.0):
    box = Box.cube(n)
    props = RadiativeProperties.from_fields(
        box, abskg=np.full(box.extent, kappa), sigma_t4=np.ones(box.extent)
    )
    return LevelFields(
        abskg=props.abskg,
        sigma_t4=props.sigma_t4,
        cell_type=props.cell_type,
        interior=box,
        dx=(1.0 / n,) * 3,
        anchor=(0.0, 0.0, 0.0),
    )


class TestIsotropicDirections:
    def test_unit_norm(self):
        d = isotropic_directions(np.random.default_rng(0), 1000)
        assert np.allclose(np.linalg.norm(d, axis=1), 1.0)

    def test_first_moment_vanishes(self):
        d = isotropic_directions(np.random.default_rng(1), 200_000)
        assert np.abs(d.mean(axis=0)).max() < 5e-3

    def test_cos_theta_uniform(self):
        """cos(theta) of isotropic directions is U(-1,1): check moments."""
        d = isotropic_directions(np.random.default_rng(2), 200_000)
        cz = d[:, 2]
        assert abs(cz.mean()) < 5e-3
        assert abs((cz ** 2).mean() - 1 / 3) < 5e-3

    def test_octant_occupancy(self):
        d = isotropic_directions(np.random.default_rng(3), 80_000)
        octants = (d[:, 0] > 0).astype(int) * 4 + (d[:, 1] > 0) * 2 + (d[:, 2] > 0)
        counts = np.bincount(octants, minlength=8)
        assert counts.min() > 0.9 * 80_000 / 8

    def test_deterministic(self):
        a = isotropic_directions(np.random.default_rng(7), 10)
        b = isotropic_directions(np.random.default_rng(7), 10)
        assert np.array_equal(a, b)


class TestOrigins:
    def test_jittered_inside_cells(self):
        fields = make_fields(4)
        cells = np.array([[0, 0, 0], [3, 3, 3]])
        o = cell_ray_origins(fields, cells, 50, np.random.default_rng(0))
        assert o.shape == (100, 3)
        dx = 0.25
        first = o[:50]
        assert (first >= 0).all() and (first <= dx).all()
        last = o[50:]
        assert (last >= 3 * dx).all() and (last <= 1.0).all()

    def test_centered(self):
        fields = make_fields(4)
        cells = np.array([[1, 2, 3]])
        o = cell_ray_origins(fields, cells, 3, np.random.default_rng(0), centered=True)
        assert np.allclose(o, fields.cell_center(np.array([1, 2, 3])))

    def test_grouped_by_cell(self):
        fields = make_fields(4)
        cells = np.array([[0, 0, 0], [1, 0, 0]])
        o = cell_ray_origins(fields, cells, 4, np.random.default_rng(0), centered=True)
        assert np.allclose(o[:4], o[0])
        assert not np.allclose(o[4], o[0])


class TestRegionCells:
    def test_order_matches_reshape(self):
        box = Box((1, 1, 1), (3, 4, 5))
        cells = region_cells(box)
        assert cells.shape == (box.volume, 3)
        arr = np.arange(box.volume).reshape(box.extent)
        for row, cell in enumerate(cells):
            idx = tuple(cell[d] - box.lo[d] for d in range(3))
            assert arr[idx] == row

    def test_generate_patch_rays_shapes(self):
        fields = make_fields(4)
        cells, o, d = generate_patch_rays(
            fields, Box.cube(2), 5, np.random.default_rng(0)
        )
        assert cells.shape == (8, 3)
        assert o.shape == d.shape == (40, 3)


class TestCosineHemisphere:
    @pytest.mark.parametrize("axis,side", [(0, 0), (1, 1), (2, 0)])
    def test_points_inward(self, axis, side):
        d = cosine_hemisphere_directions(np.random.default_rng(0), 5000, axis, side)
        comp = d[:, axis]
        assert (comp > 0).all() if side == 0 else (comp < 0).all()

    def test_unit_norm(self):
        d = cosine_hemisphere_directions(np.random.default_rng(0), 1000, 0, 0)
        assert np.allclose(np.linalg.norm(d, axis=1), 1.0)

    def test_cosine_distribution(self):
        """E[cos theta] = 2/3 for cosine-weighted sampling."""
        d = cosine_hemisphere_directions(np.random.default_rng(1), 200_000, 2, 0)
        assert abs(d[:, 2].mean() - 2 / 3) < 3e-3
