"""Edge-path tests across modules: results accounting, series errors,
scheduler guards, field validation, and workload result helpers."""

import numpy as np
import pytest

from repro.grid import Box
from repro.comm.driver import WorkloadResult
from repro.core import LevelFields, RMCRTResult, SingleLevelRMCRT
from repro.dessim import (
    LARGE,
    MEDIUM,
    ClusterSimulator,
    RMCRTProblem,
    ScalingSeries,
    SimOptions,
)
from repro.dw import DataWarehouse, cc
from repro.radiation import BurnsChristonBenchmark, RadiativeProperties
from repro.runtime import SerialScheduler, gather_cc
from repro.util import TimerRegistry
from repro.util.errors import GridError, ReproError, SchedulerError


class TestRMCRTResult:
    def test_total_emission(self):
        from repro.util.timing import TimerRegistry

        res = RMCRTResult(
            divq=np.full((2, 2, 2), 3.0), rays_traced=8, timers=TimerRegistry()
        )
        assert res.total_emission == 24.0


class TestScalingSeries:
    def test_efficiency_missing_point(self):
        s = ScalingSeries(patch_size=16, gpu_counts=[64, 128], times=[2.0, 1.0])
        assert s.efficiency(64, 128) == 1.0
        with pytest.raises(ReproError):
            s.efficiency(64, 999)

    def test_efficiency_sublinear(self):
        s = ScalingSeries(patch_size=16, gpu_counts=[64, 128], times=[2.0, 1.5])
        assert s.efficiency(64, 128) == pytest.approx(2.0 / 3.0)


class TestProblemConstants:
    def test_module_level_problem_dicts(self):
        from repro.radiation import LARGE_PROBLEM, MEDIUM_PROBLEM

        assert MEDIUM_PROBLEM["fine_cells"] == 256
        assert LARGE_PROBLEM["fine_cells"] == 512
        assert MEDIUM.rays_per_cell == LARGE.rays_per_cell == 100

    def test_problem_bad_ratio(self):
        with pytest.raises(ReproError):
            RMCRTProblem(fine_cells=100, refinement_ratio=3)

    def test_patch_roi_bytes(self):
        p = RMCRTProblem(fine_cells=128, halo=4)
        assert p.patch_roi_bytes(16) == 24 ** 3 * 3 * 8
        assert p.patch_divq_bytes(16) == 16 ** 3 * 8


class TestLevelFieldsValidation:
    def test_shape_check(self):
        box = Box.cube(4)
        with pytest.raises(GridError):
            LevelFields(
                abskg=np.zeros((4, 4, 4)),  # missing ring
                sigma_t4=np.zeros((6, 6, 6)),
                cell_type=np.zeros((6, 6, 6), dtype=np.int8),
                interior=box,
                dx=(0.25,) * 3,
                anchor=(0.0,) * 3,
            )

    def test_from_properties_level_mismatch(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.single_level_grid()
        other = BurnsChristonBenchmark(resolution=16)
        other_grid = other.single_level_grid()
        props = other.properties_for_level(other_grid.finest_level)
        with pytest.raises(GridError):
            LevelFields.from_properties(grid.finest_level, props)

    def test_position_to_cell_nudge(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.single_level_grid()
        props = bench.properties_for_level(grid.finest_level)
        fields = LevelFields.from_properties(grid.finest_level, props)
        # a point exactly on a face lands downstream with the nudge
        pos = np.array([[0.5, 0.3, 0.3]])
        plus = fields.position_to_cell(pos, nudge_dir=np.array([[1.0, 0, 0]]))
        minus = fields.position_to_cell(pos, nudge_dir=np.array([[-1.0, 0, 0]]))
        assert plus[0, 0] == 4 and minus[0, 0] == 3


class TestWorkloadResult:
    def test_throughput_and_clean(self):
        r = WorkloadResult(
            wall_time=2.0, processed=100, expected=100,
            leaked_buffers=0, leaked_bytes=0, races_observed=0, num_threads=4,
        )
        assert r.throughput == 50.0
        assert r.clean
        dirty = WorkloadResult(
            wall_time=2.0, processed=100, expected=100,
            leaked_buffers=3, leaked_bytes=300, races_observed=3, num_threads=4,
        )
        assert not dirty.clean

    def test_zero_wall_time(self):
        r = WorkloadResult(
            wall_time=0.0, processed=10, expected=10,
            leaked_buffers=0, leaked_bytes=0, races_observed=0, num_threads=1,
        )
        assert r.throughput == float("inf")


class TestGatherErrors:
    def test_gather_detects_holes(self):
        from repro.runtime import Computes, Task, TaskGraph
        from repro.grid import Grid, decompose_level

        grid = Grid()
        level = grid.add_level(Box.cube(8), (1 / 8,) * 3)
        decompose_level(level, (4, 4, 4))
        tg = TaskGraph(grid)
        tg.add_task(Task("noop", lambda ctx: None, computes=[Computes(cc("phi"))]), 0)
        graph = tg.compile()
        # nothing was actually computed: the DW is empty
        with pytest.raises(Exception):
            gather_cc(graph, {0: DataWarehouse()}, cc("phi"), 0)


class TestTimersMore:
    def test_running_flag_and_report_order(self):
        reg = TimerRegistry()
        t = reg("slow")
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        with reg("fast"):
            pass
        report = reg.report()
        assert report.index("slow") < report.index("fast") or t.elapsed >= 0
        reg.reset()
        assert reg("slow").count == 0

    def test_iteration(self):
        reg = TimerRegistry()
        reg("a")
        reg("b")
        assert {t.name for t in reg} == {"a", "b"}


class TestSimulatorMemoryFlag:
    def test_single_level_would_not_fit(self):
        """The direct statement of 'intractable': a single-level LARGE
        replica plus baseline state exceeds the K20X."""
        sim = ClusterSimulator()
        opts = SimOptions()
        replica = LARGE.fine_level_bytes
        assert replica + opts.base_device_bytes > sim.spec.gpu_memory_bytes

    def test_breakdown_str(self):
        sim = ClusterSimulator()
        b = sim.simulate_timestep(MEDIUM, 32, 64)
        s = str(b)
        assert "GPUs" in s and "total" in s


class TestScalarBackendGuards:
    def test_whole_domain_patch_fallback(self):
        """An undecomposed level is treated as one patch."""
        bench = BurnsChristonBenchmark(resolution=6)
        grid = bench.single_level_grid()  # no patches
        props = bench.properties_for_level(grid.finest_level)
        res = SingleLevelRMCRT(rays_per_cell=2, seed=0).solve(grid, props)
        assert res.divq.shape == (6, 6, 6)

    def test_per_patch_results_optional(self):
        bench = BurnsChristonBenchmark(resolution=6)
        grid = bench.single_level_grid()
        props = bench.properties_for_level(grid.finest_level)
        res = SingleLevelRMCRT(rays_per_cell=2, seed=0).solve(grid, props)
        assert res.per_patch == {}
