"""The allocator checker: scripted defect fixtures must light up the
matching rule, the clean fixtures and the RMCRT small-object workload
must be silent, and recycled addresses must not false-positive."""

import pytest

from repro.check import CheckedAllocator, run_leak_fixture
from repro.check.leaks import LEAK_FIXTURES, check_workload
from repro.memory.arena import ArenaAllocator
from repro.memory.pool import SizeClassPool


def rules(alloc):
    return sorted(f.rule for f in alloc.findings)


class TestFixtures:
    def test_clean_fixture_is_silent(self):
        alloc = run_leak_fixture("clean")
        assert alloc.findings == []
        assert alloc.allocs == alloc.frees == 64

    def test_double_free_caught(self):
        alloc = run_leak_fixture("double-free")
        assert rules(alloc) == ["alloc-double-free"]
        f = alloc.findings[0]
        assert "double free" in f.message
        assert f.file.endswith("leaks.py") and f.line > 0

    def test_use_after_retire_caught(self):
        alloc = run_leak_fixture("use-after-retire")
        assert rules(alloc) == ["alloc-use-after-retire"]

    def test_leak_caught_at_teardown(self):
        alloc = run_leak_fixture("leak")
        assert rules(alloc) == ["alloc-leak"] * 4
        assert alloc.live_count == 4

    def test_unknown_fixture_rejected(self):
        with pytest.raises(ValueError, match="unknown leak fixture"):
            run_leak_fixture("nope")

    def test_fixture_names_stable(self):
        assert LEAK_FIXTURES == ("clean", "double-free",
                                 "use-after-retire", "leak")


class TestCheckedAllocator:
    def test_recycled_address_is_not_a_double_free(self):
        """Size-class free lists hand retired addresses straight back;
        the shadow state must resurrect them, not flag the next free."""
        alloc = CheckedAllocator(SizeClassPool())
        a = alloc.malloc(64)
        alloc.free(a)
        b = alloc.malloc(64)
        assert b == a  # LIFO free list recycles the address
        alloc.touch(b)
        alloc.free(b)
        assert alloc.check_teardown() == []

    def test_invalid_free_caught(self):
        alloc = CheckedAllocator(SizeClassPool())
        alloc.free(0xDEAD)
        assert rules(alloc) == ["alloc-invalid-free"]

    def test_violations_do_not_corrupt_inner_state(self):
        """A checked double free never reaches the pool, so the pool's
        own AllocationError guard is never tripped."""
        alloc = CheckedAllocator(SizeClassPool())
        a = alloc.malloc(32)
        alloc.free(a)
        alloc.free(a)
        alloc.free(a)
        assert rules(alloc) == ["alloc-double-free"] * 2
        assert alloc.inner.live_objects == 0

    def test_wraps_the_arena_too(self):
        alloc = CheckedAllocator(ArenaAllocator(), name="arena")
        a = alloc.malloc(1 << 20)
        alloc.free(a)
        assert alloc.check_teardown() == []

    def test_max_findings_cap(self):
        alloc = CheckedAllocator(SizeClassPool(), max_findings=3)
        for _ in range(10):
            alloc.free(0xBAD)
        assert len(alloc.findings) == 3


class TestWorkload:
    def test_rmcrt_small_object_workload_is_clean(self):
        alloc = check_workload()
        assert alloc.findings == []
        assert alloc.allocs == alloc.frees > 0
        assert alloc.live_count == 0
