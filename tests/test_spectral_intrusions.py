"""Tests for the spectral band loop (the paper's future-work feature)
and intrusion-geometry handling."""

import numpy as np
import pytest

from repro.grid import Box, CellType
from repro.core import LevelFields, RMCRTSolver, SingleLevelRMCRT, RayBatch, march
from repro.core.dda import RayStatus
from repro.arches import BoilerScenario
from repro.radiation import (
    COMBUSTION_3_BAND,
    BurnsChristonBenchmark,
    RadiativeProperties,
    SpectralBand,
    SpectralRMCRT,
    band_properties,
    validate_bands,
)
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def bench_setup():
    bench = BurnsChristonBenchmark(resolution=10)
    grid = bench.single_level_grid()
    props = bench.properties_for_level(grid.finest_level)
    return grid, props


class TestSpectralBands:
    def test_band_validation(self):
        with pytest.raises(ReproError):
            SpectralBand(weight=1.5, kappa_scale=1.0)
        with pytest.raises(ReproError):
            SpectralBand(weight=0.5, kappa_scale=-1.0)
        with pytest.raises(ReproError):
            validate_bands([])
        with pytest.raises(ReproError):
            validate_bands([SpectralBand(0.5, 1.0), SpectralBand(0.4, 1.0)])
        validate_bands(COMBUSTION_3_BAND)

    def test_band_properties_scaling(self, bench_setup):
        _, props = bench_setup
        band = SpectralBand(weight=0.25, kappa_scale=2.0)
        bp = band_properties(props, band)
        assert np.allclose(
            bp.interior_view("abskg"), 2.0 * props.interior_view("abskg")
        )
        assert np.allclose(bp.interior_view("sigma_t4"), 0.25)
        # wall emissivity stays grey
        assert bp.abskg[0, 5, 5] == props.abskg[0, 5, 5]
        # original untouched
        assert np.allclose(props.interior_view("sigma_t4"), 1.0)

    def test_single_grey_band_matches_grey_solver(self, bench_setup):
        grid, props = bench_setup
        grey = SingleLevelRMCRT(rays_per_cell=8, seed=2)
        reference = grey.solve(grid, props)
        spectral = SpectralRMCRT(SingleLevelRMCRT(rays_per_cell=8, seed=2))
        result = spectral.solve(grid, props)
        np.testing.assert_array_equal(result.divq, reference.divq)

    def test_three_band_physical(self, bench_setup):
        grid, props = bench_setup
        spectral = SpectralRMCRT(
            SingleLevelRMCRT(rays_per_cell=16, seed=3), COMBUSTION_3_BAND
        )
        result = spectral.solve(grid, props)
        assert result.divq.shape == (10, 10, 10)
        assert (result.divq > 0).all()  # hot medium, cold walls, all bands
        assert result.rays_traced == 3 * 10 ** 3 * 16

    def test_band_decomposition_consistency(self, bench_setup):
        """Splitting the grey gas into n identical sub-bands is the
        identity: same kappa, weights sum to 1 => statistically the grey
        answer (different streams, so compare means)."""
        grid, props = bench_setup
        bands = [SpectralBand(weight=0.25, kappa_scale=1.0)] * 4
        spectral = SpectralRMCRT(SingleLevelRMCRT(rays_per_cell=32, seed=4), bands)
        result = spectral.solve(grid, props)
        grey = SingleLevelRMCRT(rays_per_cell=32, seed=4).solve(grid, props)
        rel = abs(result.divq.mean() - grey.divq.mean()) / grey.divq.mean()
        assert rel < 0.02

    def test_transparent_band_contributes_little(self, bench_setup):
        """An optically thin band emits ~4*kappa*w per cell; the thick
        band dominates del.q."""
        grid, props = bench_setup
        thin = SpectralRMCRT(
            SingleLevelRMCRT(rays_per_cell=16, seed=5),
            [SpectralBand(1.0, 0.01)],
        ).solve(grid, props)
        thick = SpectralRMCRT(
            SingleLevelRMCRT(rays_per_cell=16, seed=5),
            [SpectralBand(1.0, 1.0)],
        ).solve(grid, props)
        assert thin.divq.mean() < 0.05 * thick.divq.mean()

    def test_solver_seed_restored(self, bench_setup):
        grid, props = bench_setup
        grey = SingleLevelRMCRT(rays_per_cell=4, seed=42)
        SpectralRMCRT(grey, COMBUSTION_3_BAND).solve(grid, props)
        assert grey.seed == 42

    def test_bad_grey_solver_rejected(self):
        with pytest.raises(ReproError):
            SpectralRMCRT(object())

    def test_facade_solver_works(self, bench_setup):
        grid, props = bench_setup
        spectral = SpectralRMCRT(RMCRTSolver(rays_per_cell=4, seed=1),
                                 COMBUSTION_3_BAND)
        result = spectral.solve(grid, props)
        assert (result.divq > 0).all()


def make_fields_with_block(n=10, kappa=0.5, block=None, block_st4=0.0):
    box = Box.cube(n)
    ct = np.zeros(box.extent, dtype=np.int8)
    st4 = np.ones(box.extent)
    ab = np.full(box.extent, kappa)
    if block is not None:
        sl = block.slices()
        ct[sl] = CellType.INTRUSION
        st4[sl] = block_st4
        ab[sl] = 1.0  # black surface
    props = RadiativeProperties.from_fields(
        box, abskg=ab, sigma_t4=st4, cell_type=ct
    )
    fields = LevelFields(
        abskg=props.abskg,
        sigma_t4=props.sigma_t4,
        cell_type=props.cell_type,
        interior=box,
        dx=(1.0 / n,) * 3,
        anchor=(0.0, 0.0, 0.0),
    )
    return props, fields


class TestIntrusions:
    def test_ray_terminates_at_intrusion(self):
        block = Box((6, 4, 4), (8, 6, 6))
        _, fields = make_fields_with_block(block=block)
        origin = fields.cell_center(np.array([2, 5, 5]))
        batch = RayBatch.fresh(origin[None, :], np.array([[1.0, 0.0, 0.0]]))
        march(fields=fields, batch=batch, threshold=1e-12)
        assert batch.status[0] == RayStatus.WALL_HIT
        # terminated at the block face, not the far wall: optical depth
        # = kappa * distance to x=0.6
        expected_tau = 0.5 * (0.6 - origin[0])
        assert np.isclose(batch.tau[0], expected_tau, rtol=1e-10)

    def test_intrusion_divq_zeroed(self):
        block = Box((4, 4, 4), (6, 6, 6))
        bench = BurnsChristonBenchmark(resolution=10)
        grid = bench.single_level_grid()
        props, _ = make_fields_with_block(block=block)
        result = SingleLevelRMCRT(rays_per_cell=4, seed=0).solve(grid, props)
        assert np.allclose(result.divq[block.slices()], 0.0)
        outside = result.divq.copy()
        outside[block.slices()] = np.nan
        assert np.nanmin(outside) > 0

    def test_hot_intrusion_heats_neighbors(self):
        """A hot block radiates: neighbouring gas cells show smaller
        net emission (or net absorption) than with a cold block."""
        block = Box((4, 4, 4), (6, 6, 6))
        bench = BurnsChristonBenchmark(resolution=10)
        grid = bench.single_level_grid()
        cold_props, _ = make_fields_with_block(block=block, block_st4=0.0)
        hot_props, _ = make_fields_with_block(block=block, block_st4=5.0)
        solver = SingleLevelRMCRT(rays_per_cell=32, seed=1)
        cold = solver.solve(grid, cold_props)
        hot = solver.solve(grid, hot_props)
        neighbor = (3, 5, 5)
        assert hot.divq[neighbor] < cold.divq[neighbor]

    def test_boiler_tube_bank_geometry(self):
        sc = BoilerScenario(resolution=16, tube_bank=True, num_tubes=2)
        level = sc.grid().finest_level
        props = sc.radiative_properties(level)
        ct = props.interior_view("cell_type")
        assert (ct == CellType.INTRUSION).sum() > 0
        tubes = sc.tube_regions(level)
        assert len(tubes) == 2
        for tube in tubes:
            assert (props.cell_type[tube.slices(origin=props.origin)]
                    == CellType.INTRUSION).all()

    def test_boiler_tubes_solve_end_to_end(self):
        sc = BoilerScenario(resolution=16, tube_bank=True, num_tubes=2)
        grid = sc.grid()
        props = sc.radiative_properties(grid.finest_level)
        result = RMCRTSolver(rays_per_cell=4, seed=2, halo=2).solve(grid, props)
        ct = props.interior_view("cell_type")
        assert np.allclose(result.divq[ct == CellType.INTRUSION], 0.0)
        assert np.isfinite(result.divq).all()

    def test_tubes_shadow_radiation(self):
        """Gas directly behind a tube (seen from the flame) receives
        less flame radiation: del.q there is HIGHER (less absorption
        of incoming intensity) than without tubes."""
        with_t = BoilerScenario(resolution=16, tube_bank=True, num_tubes=1,
                                tube_temperature=300.0)
        without = BoilerScenario(resolution=16, tube_bank=False)
        solver = RMCRTSolver(rays_per_cell=64, seed=3, halo=2)
        grid_a = with_t.grid()
        ra = solver.solve(grid_a, with_t.radiative_properties(grid_a.finest_level))
        grid_b = without.grid()
        rb = solver.solve(grid_b, without.radiative_properties(grid_b.finest_level))
        tube = with_t.tube_regions(grid_a.finest_level)[0]
        # sample just above the tube (shadowed from the flame below)
        shadow = (tube.lo[0] + 1, tube.lo[1] + 1, min(15, tube.hi[2] + 1))
        assert ra.divq[shadow] > rb.divq[shadow]

    def test_tube_validation(self):
        with pytest.raises(ReproError):
            BoilerScenario(tube_bank=True, num_tubes=0)
