"""Tests for the verification/analysis helpers."""

import numpy as np
import pytest

from repro.core import SingleLevelRMCRT
from repro.radiation import BurnsChristonBenchmark, dom_reference_divq
from repro.radiation.analysis import (
    ConvergenceStudy,
    max_error,
    monte_carlo_convergence,
    relative_l2_error,
    rms_error,
    symmetry_deviation,
)
from repro.util.errors import ReproError


class TestNorms:
    def test_rms(self):
        a = np.zeros((2, 2, 2))
        b = np.full((2, 2, 2), 3.0)
        assert rms_error(a, b) == 3.0

    def test_relative_l2(self):
        r = np.full(4, 2.0)
        f = np.full(4, 2.2)
        assert relative_l2_error(f, r) == pytest.approx(0.1)

    def test_max(self):
        assert max_error(np.array([1.0, 5.0]), np.array([1.0, 2.0])) == 3.0

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            rms_error(np.zeros(3), np.zeros(4))
        with pytest.raises(ReproError):
            relative_l2_error(np.zeros(3), np.zeros(4))
        with pytest.raises(ReproError):
            max_error(np.zeros(3), np.zeros(4))

    def test_zero_reference(self):
        with pytest.raises(ReproError):
            relative_l2_error(np.ones(3), np.zeros(3))


class TestConvergenceStudy:
    def test_exact_order(self):
        ns = [4, 16, 64, 256]
        study = ConvergenceStudy(ns, [1.0 / np.sqrt(n) for n in ns])
        assert study.order == pytest.approx(-0.5)
        assert study.monotone_decreasing
        assert study.matches_order(-0.5)
        assert not study.matches_order(-2.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            ConvergenceStudy([1.0], [1.0])
        with pytest.raises(ReproError):
            ConvergenceStudy([1.0, 2.0], [1.0])
        with pytest.raises(ReproError):
            ConvergenceStudy([1.0, -2.0], [1.0, 0.5])
        with pytest.raises(ReproError):
            ConvergenceStudy([1.0, 2.0], [1.0, 0.0])

    def test_monte_carlo_driver(self):
        """End-to-end: the library helper reproduces E4's finding."""
        bench = BurnsChristonBenchmark(resolution=10)
        grid = bench.single_level_grid()
        props = bench.properties_for_level(grid.finest_level)
        reference = dom_reference_divq(props, grid.finest_level.dx,
                                       n_polar=6, n_azimuthal=12)

        def solve(rays):
            return SingleLevelRMCRT(rays_per_cell=rays, seed=21).solve(
                grid, props
            ).divq

        study = monte_carlo_convergence(solve, reference, [4, 16, 64])
        assert study.monotone_decreasing
        assert study.matches_order(-0.5, tol=0.3)

    def test_monte_carlo_driver_validation(self):
        with pytest.raises(ReproError):
            monte_carlo_convergence(lambda n: np.zeros(3), np.zeros(3), [4])


class TestSymmetry:
    def test_symmetric_field(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.single_level_grid()
        f = bench.abskg_field(grid.finest_level)
        dev = symmetry_deviation(f)
        for v in dev.values():
            assert v < 1e-12

    def test_asymmetric_field_detected(self):
        rng = np.random.default_rng(0)
        dev = symmetry_deviation(rng.random((8, 8, 8)))
        assert all(v > 0.1 for v in dev.values())

    def test_rmcrt_solution_statistically_symmetric(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.single_level_grid()
        props = bench.properties_for_level(grid.finest_level)
        divq = SingleLevelRMCRT(rays_per_cell=64, seed=2).solve(grid, props).divq
        dev = symmetry_deviation(divq)
        for v in dev.values():
            assert v < 0.05  # MC noise only

    def test_validation(self):
        with pytest.raises(ReproError):
            symmetry_deviation(np.zeros((4, 5, 4)))
        with pytest.raises(ReproError):
            symmetry_deviation(np.zeros((4, 4, 4)))
