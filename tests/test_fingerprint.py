"""Tests for the UPS spec/scene fingerprints.

The service layer's correctness rests on the fingerprint being a true
content address: stable across processes for the same spec, distinct
for any result-affecting field change, and *insensitive* to scheduler
choice (which is execution strategy, not content — the pipeline is
bit-identical to the direct solvers on every scheduler).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.ups import (
    GridSpec,
    ProblemSpec,
    RMCRTSpec,
    SchedulerSpec,
    SpectralSpec,
    parse_ups,
    scene_fingerprint,
    spec_fingerprint,
    spec_from_dict,
    spec_to_dict,
    spec_to_ups,
)

UPS_TEXT = """
<Uintah_specification>
  <Grid>
    <resolution> 12 </resolution>
    <levels> 2 </levels>
    <refinement_ratio> 2 </refinement_ratio>
    <patch_size> 6 </patch_size>
  </Grid>
  <RMCRT>
    <nDivQRays> 5 </nDivQRays>
    <Threshold> 0.001 </Threshold>
    <halo> 2 </halo>
    <randomSeed> 3 </randomSeed>
  </RMCRT>
  <Scheduler type="serial"/>
</Uintah_specification>
"""


def base_spec() -> ProblemSpec:
    return parse_ups(UPS_TEXT)


class TestStability:
    def test_same_spec_same_fingerprint(self):
        assert spec_fingerprint(parse_ups(UPS_TEXT)) == spec_fingerprint(
            parse_ups(UPS_TEXT)
        )

    def test_fingerprint_is_hex_sha256(self):
        fp = spec_fingerprint(base_spec())
        assert len(fp) == 64
        int(fp, 16)

    def test_fingerprint_stable_across_processes(self, tmp_path):
        """The content address must not depend on process state (hash
        randomization, import order): a fresh interpreter computes the
        same digest."""
        ups = tmp_path / "fp.ups"
        ups.write_text(UPS_TEXT)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONPATH=src)
        script = (
            "import sys; from repro.ups import parse_ups, spec_fingerprint; "
            f"print(spec_fingerprint(parse_ups({str(ups)!r})))"
        )
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        assert child.stdout.strip() == spec_fingerprint(base_spec())


def _mutations():
    """(name, mutator) pairs, each changing one result-affecting field."""

    def m(**kw):
        def apply(spec):
            for attr, value in kw.items():
                obj = spec.rmcrt if hasattr(spec.rmcrt, attr) else spec.grid
                setattr(obj, attr, value)
            return spec

        return apply

    return [
        ("rays", m(n_divq_rays=7)),
        ("threshold", m(threshold=1e-3 * 2)),
        ("halo", m(halo=3)),
        ("seed", m(random_seed=4)),
        ("resolution", m(resolution=24)),
        ("levels", m(levels=1)),
        ("refinement_ratio", m(refinement_ratio=3)),
        ("patch_size", m(patch_size=12)),
        ("allow_reflect", m(allow_reflect=True)),
        ("cc_rays", m(cc_rays=True)),
    ]


class TestSensitivity:
    @pytest.mark.parametrize("name,mutate", _mutations())
    def test_any_field_change_changes_fingerprint(self, name, mutate):
        assert spec_fingerprint(mutate(base_spec())) != spec_fingerprint(
            base_spec()
        ), f"fingerprint ignored {name}"

    def test_scheduler_choice_does_not_change_fingerprint(self):
        """Execution strategy is not content: serial, threaded, and
        distributed runs of one spec are bit-identical (pinned by
        test_distributed_rmcrt), so they share a cache entry."""
        serial = base_spec()
        distributed = base_spec()
        distributed.scheduler = SchedulerSpec(
            type="distributed", ranks=4, pool="locked", threads=8
        )
        assert spec_fingerprint(serial) == spec_fingerprint(distributed)


class TestSceneKey:
    def test_param_changes_share_the_scene(self):
        """Rays/seed changes keep the scene key (same grid + properties
        -> same micro-batch), while the full fingerprint splits."""
        a, b = base_spec(), base_spec()
        b.rmcrt.n_divq_rays = 50
        b.rmcrt.random_seed = 99
        assert scene_fingerprint(a) == scene_fingerprint(b)
        assert spec_fingerprint(a) != spec_fingerprint(b)

    def test_resolution_changes_the_scene(self):
        a, b = base_spec(), base_spec()
        b.grid.resolution = 24
        assert scene_fingerprint(a) != scene_fingerprint(b)

    def test_request_carries_both_keys(self):
        from repro.service import SolveRequest

        request = SolveRequest(spec=base_spec())
        assert request.fingerprint == spec_fingerprint(base_spec())
        assert request.scene_key == scene_fingerprint(base_spec())


def gray_spec() -> ProblemSpec:
    """A single-level gray spec — the baseline the spectral variants
    must separate from (spectral transport is single-level only)."""
    spec = base_spec()
    spec.grid.levels = 1
    return spec


def spectral_spec(**kw) -> ProblemSpec:
    spec = gray_spec()
    params = dict(bands=3, temperature=1400.0, kappa_exponent=0.8,
                  emissivity="tungsten")
    params.update(kw)
    spec.spectral = SpectralSpec(**params)
    return spec


class TestSpectralSeparation:
    """The spectral block is result-affecting content: it must split
    both the full fingerprint (cache entries) and the scene key
    (per-band marching fields reshape the scene)."""

    def test_gray_vs_spectral_distinct(self):
        assert spec_fingerprint(gray_spec()) != spec_fingerprint(spectral_spec())
        assert scene_fingerprint(gray_spec()) != scene_fingerprint(spectral_spec())

    def test_gray_limit_spectral_does_not_collide_with_gray(self):
        """One full-spectrum band, no kappa shaping, identity
        emissivity is *numerically* the gray solve — but it runs the
        spectral code path, so it must still cache separately."""
        limit = spectral_spec(bands=1, kappa_exponent=0.0, emissivity="gray")
        assert spec_fingerprint(limit) != spec_fingerprint(gray_spec())

    def test_emissivity_tables_distinct(self):
        a = spectral_spec(emissivity="tungsten")
        b = spectral_spec(emissivity="steel")
        assert spec_fingerprint(a) != spec_fingerprint(b)
        assert scene_fingerprint(a) != scene_fingerprint(b)

    @pytest.mark.parametrize(
        "name,kw",
        [
            ("bands", dict(bands=4)),
            ("temperature", dict(temperature=1500.0)),
            ("kappa_exponent", dict(kappa_exponent=0.4)),
            ("band_edges", dict(band_edges_um=(0.0, 2.0, 6.0, float("inf")))),
        ],
    )
    def test_model_field_changes_split_the_fingerprint(self, name, kw):
        assert spec_fingerprint(spectral_spec(**kw)) != spec_fingerprint(
            spectral_spec()
        ), f"fingerprint ignored spectral {name}"

    def test_ray_params_still_share_the_spectral_scene(self):
        a, b = spectral_spec(), spectral_spec()
        b.rmcrt.n_divq_rays = 50
        b.rmcrt.random_seed = 99
        assert scene_fingerprint(a) == scene_fingerprint(b)
        assert spec_fingerprint(a) != spec_fingerprint(b)

    def test_ups_round_trip_preserves_fingerprint(self):
        spec = spectral_spec(band_edges_um=(0.0, 2.0, 6.0, float("inf")))
        assert spec_fingerprint(parse_ups(spec_to_ups(spec))) == spec_fingerprint(
            spec
        )

    def test_dict_round_trip_preserves_fingerprint(self):
        import json

        spec = spectral_spec(band_edges_um=(0.0, 2.0, 6.0, float("inf")))
        doc = json.loads(json.dumps(spec_to_dict(spec)))
        assert spec_fingerprint(spec_from_dict(doc)) == spec_fingerprint(spec)
