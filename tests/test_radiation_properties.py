"""Tests for radiative property bundles and their coarsening."""

import numpy as np
import pytest

from repro.grid import Box, CellType
from repro.radiation import (
    SIGMA_SB,
    T_UNIT_EMISSION,
    BurnsChristonBenchmark,
    RadiativeProperties,
    burns_christon_abskg,
)
from repro.util.errors import GridError


def make_props(n=8, kappa=0.5, st4=1.0, wall_t=0.0):
    box = Box.cube(n)
    return RadiativeProperties.from_fields(
        box,
        abskg=np.full(box.extent, kappa),
        sigma_t4=np.full(box.extent, st4),
        wall_temperature=wall_t,
    )


class TestConstruction:
    def test_ring_layout(self):
        props = make_props(4)
        assert props.abskg.shape == (6, 6, 6)
        assert props.origin == (-1, -1, -1)
        assert props.num_interior_cells == 64

    def test_wall_ring_values(self):
        props = make_props(4, wall_t=100.0)
        assert props.cell_type[0, 0, 0] == CellType.WALL
        assert np.isclose(props.sigma_t4[0, 0, 0], SIGMA_SB * 100.0 ** 4)
        assert props.abskg[0, 0, 0] == 1.0  # wall emissivity

    def test_temperature_to_sigma_t4(self):
        box = Box.cube(2)
        props = RadiativeProperties.from_fields(
            box,
            abskg=np.ones(box.extent),
            temperature=np.full(box.extent, T_UNIT_EMISSION),
        )
        assert np.allclose(props.interior_view("sigma_t4"), 1.0)

    def test_both_temperature_and_st4_rejected(self):
        box = Box.cube(2)
        with pytest.raises(GridError):
            RadiativeProperties.from_fields(
                box,
                abskg=np.ones(box.extent),
                temperature=np.ones(box.extent),
                sigma_t4=np.ones(box.extent),
            )

    def test_neither_rejected(self):
        box = Box.cube(2)
        with pytest.raises(GridError):
            RadiativeProperties.from_fields(box, abskg=np.ones(box.extent))

    def test_shape_mismatch_rejected(self):
        box = Box.cube(4)
        with pytest.raises(GridError):
            RadiativeProperties.from_fields(
                box, abskg=np.ones((3, 3, 3)), sigma_t4=np.ones(box.extent)
            )

    def test_interior_cell_type_override(self):
        box = Box.cube(4)
        ct = np.zeros(box.extent, dtype=np.int8)
        ct[1, 1, 1] = CellType.INTRUSION
        props = RadiativeProperties.from_fields(
            box, abskg=np.ones(box.extent), sigma_t4=np.ones(box.extent), cell_type=ct
        )
        assert props.interior_view("cell_type")[1, 1, 1] == CellType.INTRUSION

    def test_interior_view_is_view(self):
        props = make_props(4)
        view = props.interior_view("abskg")
        view[0, 0, 0] = 99.0
        assert props.abskg[1, 1, 1] == 99.0

    def test_nbytes(self):
        props = make_props(4)
        assert props.nbytes == props.abskg.nbytes + props.sigma_t4.nbytes + props.cell_type.nbytes


class TestCoarsen:
    def test_constant_fields_unchanged(self):
        props = make_props(8, kappa=0.3, st4=2.0)
        coarse = props.coarsen(2)
        assert coarse.interior == Box.cube(4)
        assert np.allclose(coarse.interior_view("abskg"), 0.3)
        assert np.allclose(coarse.interior_view("sigma_t4"), 2.0)

    def test_conservation(self):
        rng = np.random.default_rng(5)
        box = Box.cube(8)
        props = RadiativeProperties.from_fields(
            box, abskg=rng.random(box.extent), sigma_t4=rng.random(box.extent)
        )
        coarse = props.coarsen(4)
        assert np.isclose(
            coarse.interior_view("abskg").mean(), props.interior_view("abskg").mean()
        )

    def test_intrusion_survives(self):
        box = Box.cube(8)
        ct = np.zeros(box.extent, dtype=np.int8)
        ct[5, 5, 5] = CellType.INTRUSION
        props = RadiativeProperties.from_fields(
            box, abskg=np.ones(box.extent), sigma_t4=np.ones(box.extent), cell_type=ct
        )
        coarse = props.coarsen(2)
        assert coarse.interior_view("cell_type")[2, 2, 2] == CellType.INTRUSION

    def test_wall_ring_projected(self):
        box = Box.cube(8)
        props = RadiativeProperties.from_fields(
            box,
            abskg=np.ones(box.extent),
            sigma_t4=np.ones(box.extent),
            wall_temperature=50.0,
        )
        coarse = props.coarsen(2)
        wall_st4 = SIGMA_SB * 50.0 ** 4
        # face centres of the ring (not corners) carry the projection
        assert np.allclose(coarse.sigma_t4[0, 1:-1, 1:-1], wall_st4)
        assert coarse.cell_type[0, 2, 2] == CellType.WALL

    def test_indivisible_rejected(self):
        with pytest.raises(GridError):
            make_props(6).coarsen(4)

    def test_bad_ratio_rejected(self):
        with pytest.raises(GridError):
            make_props(4).coarsen(0)


class TestBurnsChriston:
    def test_abskg_analytic_values(self):
        # centre of the cube: kappa = 0.9 * 1 * 1 * 1 + 0.1 = 1.0
        assert np.isclose(burns_christon_abskg(0.5, 0.5, 0.5), 1.0)
        # corner: kappa -> 0.1
        assert np.isclose(burns_christon_abskg(0.0, 0.0, 0.0), 0.1)
        assert np.isclose(burns_christon_abskg(1.0, 1.0, 1.0), 0.1)

    def test_field_symmetry(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.single_level_grid()
        f = bench.abskg_field(grid.finest_level)
        assert np.allclose(f, f[::-1, :, :])
        assert np.allclose(f, np.transpose(f, (2, 0, 1)))

    def test_properties_bundle(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.single_level_grid()
        props = bench.properties_for_level(grid.finest_level)
        assert np.allclose(props.interior_view("sigma_t4"), 1.0)
        assert np.allclose(props.sigma_t4[0, :, :], 0.0)  # cold walls
        assert props.abskg[0, 4, 4] == 1.0  # black walls

    def test_centerline_odd(self):
        bench = BurnsChristonBenchmark(resolution=5)
        divq = np.arange(125, dtype=float).reshape(5, 5, 5)
        x, line = bench.centerline(divq)
        assert x.shape == line.shape == (5,)
        assert np.allclose(line, divq[:, 2, 2])

    def test_centerline_even(self):
        bench = BurnsChristonBenchmark(resolution=4)
        divq = np.random.default_rng(0).random((4, 4, 4))
        x, line = bench.centerline(divq)
        expected = 0.25 * (
            divq[:, 1, 1] + divq[:, 1, 2] + divq[:, 2, 1] + divq[:, 2, 2]
        )
        assert np.allclose(line, expected)

    def test_centerline_rejects_noncube(self):
        with pytest.raises(GridError):
            BurnsChristonBenchmark().centerline(np.zeros((4, 4, 5)))

    def test_two_level_grid_shapes(self):
        bench = BurnsChristonBenchmark(resolution=32)
        grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=16)
        assert grid.level(0).domain_box == Box.cube(8)
        assert grid.level(1).num_patches == 8
