"""Recovery edge cases: damaged checkpoints, drills, double deaths,
and journal recovery under a torn service fleet."""

import json

import numpy as np
import pytest

from repro.resilience import (
    Checkpointer,
    FaultEvent,
    FaultPlan,
    RadiationCampaign,
    RecoveryOrchestrator,
    ResilienceError,
)

CAMPAIGN = dict(resolution=12, fine_patch_size=6, rays_per_cell=2, seed=1)


def checkpoint_steps(tmp_path, steps, **kw):
    """Run a serial campaign, checkpointing at each step in ``steps``."""
    ckpt = Checkpointer(tmp_path, **kw)
    campaign = RadiationCampaign(**CAMPAIGN)
    for s in steps:
        campaign.run(s)
        ckpt.save(campaign.capture())
    return ckpt, campaign


class TestFallback:
    def test_corrupt_manifest_falls_back(self, tmp_path):
        ckpt, _ = checkpoint_steps(tmp_path, [1, 2])
        doc = json.loads(ckpt.manifest_path(2).read_text())
        doc["payload"]["time"] = 1e9  # tamper: hash no longer matches
        ckpt.manifest_path(2).write_text(json.dumps(doc))
        state, step = ckpt.load_latest_valid()
        assert step == 1 and state.step == 1

    def test_truncated_manifest_falls_back(self, tmp_path):
        ckpt, _ = checkpoint_steps(tmp_path, [1, 2])
        raw = ckpt.manifest_path(2).read_bytes()
        ckpt.manifest_path(2).write_bytes(raw[: len(raw) // 3])
        _, step = ckpt.load_latest_valid()
        assert step == 1

    def test_torn_chunk_falls_back(self, tmp_path):
        ckpt, _ = checkpoint_steps(tmp_path, [1, 2])
        # tear a chunk referenced only by the newest manifest (the
        # emissive field differs between steps; abskg chunks are shared)
        old = {
            i["sha256"]
            for i in json.loads(ckpt.manifest_path(1).read_text())["payload"][
                "chunks"
            ].values()
        }
        new = json.loads(ckpt.manifest_path(2).read_text())["payload"]["chunks"]
        unique = next(i["sha256"] for i in new.values() if i["sha256"] not in old)
        path = ckpt.chunk_path(unique)
        path.write_bytes(path.read_bytes()[:10])
        _, step = ckpt.load_latest_valid()
        assert step == 1

    def test_no_valid_checkpoint_raises(self, tmp_path):
        ckpt, _ = checkpoint_steps(tmp_path, [1])
        ckpt.manifest_path(1).write_text("not json")
        with pytest.raises(ResilienceError, match="no valid checkpoint"):
            ckpt.load_latest_valid()

    def test_before_bound_skips_newer(self, tmp_path):
        ckpt, _ = checkpoint_steps(tmp_path, [1, 2, 3])
        _, step = ckpt.load_latest_valid(before=2)  # inclusive bound
        assert step == 2
        _, step = ckpt.load_latest_valid(before=1)
        assert step == 1


class TestFailureDuringRestore:
    def test_interrupted_restore_can_retry(self, tmp_path):
        """A crash mid-restore must leave the checkpoint readable: the
        restore path never mutates the store, so a second attempt from
        the same manifest succeeds."""
        ckpt, campaign = checkpoint_steps(tmp_path, [2])
        gold = RadiationCampaign(**CAMPAIGN).run(4)

        class Boom(RuntimeError):
            pass

        victim = RadiationCampaign(**CAMPAIGN)
        state, _ = ckpt.load_latest_valid()
        orig = victim.restore
        calls = {"n": 0}

        def flaky_restore(st):
            calls["n"] += 1
            if calls["n"] == 1:
                raise Boom("died mid-restore")
            return orig(st)

        victim.restore = flaky_restore
        with pytest.raises(Boom):
            victim.restore(state)
        # retry against a freshly loaded state — still intact on disk
        state2, step2 = ckpt.load_latest_valid()
        victim.restore(state2)
        assert step2 == 2
        np.testing.assert_array_equal(victim.run(4), gold)


class TestDrill:
    def test_scripted_death_recovers_bit_identical(self, tmp_path):
        gold = RadiationCampaign(**CAMPAIGN).run(5)
        plan = FaultPlan([FaultEvent(kind="rank-death", step=3, target=2)])
        campaign = RadiationCampaign(num_ranks=4, **CAMPAIGN)
        orch = RecoveryOrchestrator(
            campaign, Checkpointer(tmp_path, every_steps=2), fault_plan=plan
        )
        report = orch.run(5)
        assert report.final_step == 5
        assert report.final_ranks == 3
        assert len(report.recoveries) == 1
        rec = report.recoveries[0]
        assert rec.dead_ranks == [2]
        assert rec.restored_step == 2
        np.testing.assert_array_equal(campaign.emissive, gold)

    def test_double_death_between_checkpoints(self, tmp_path):
        """Two separate deaths in one checkpoint interval: the second
        recovery restores the same checkpoint onto an even smaller
        machine, and the answer still matches the gold run."""
        gold = RadiationCampaign(**CAMPAIGN).run(6)
        plan = FaultPlan(
            [
                FaultEvent(kind="rank-death", step=4, target=1),
                FaultEvent(kind="rank-death", step=5, target=3),
            ]
        )
        campaign = RadiationCampaign(num_ranks=4, **CAMPAIGN)
        orch = RecoveryOrchestrator(
            campaign, Checkpointer(tmp_path, every_steps=3), fault_plan=plan
        )
        report = orch.run(6)
        assert report.final_step == 6
        assert report.final_ranks == 2
        assert [r.restored_step for r in report.recoveries] == [3, 3]
        np.testing.assert_array_equal(campaign.emissive, gold)

    def test_seeded_drill_with_corruption(self, tmp_path):
        """The CLI drill's exact shape: seeded plan, chunk corruption,
        death, recovery from an older checkpoint, bit-identical finish."""
        gold = RadiationCampaign(**CAMPAIGN).run(6)
        plan = FaultPlan.seeded(
            seed=1, num_steps=6, num_ranks=4, deaths=1, checkpoint_every=2
        )
        campaign = RadiationCampaign(num_ranks=4, **CAMPAIGN)
        orch = RecoveryOrchestrator(
            campaign, Checkpointer(tmp_path, every_steps=2), fault_plan=plan
        )
        report = orch.run(6)
        assert report.final_step == 6
        assert len(report.recoveries) == 1
        np.testing.assert_array_equal(campaign.emissive, gold)

    def test_serial_campaign_cannot_lose_ranks(self, tmp_path):
        plan = FaultPlan([FaultEvent(kind="rank-death", step=2, target=0)])
        campaign = RadiationCampaign(**CAMPAIGN)  # one rank
        orch = RecoveryOrchestrator(
            campaign, Checkpointer(tmp_path, every_steps=2), fault_plan=plan
        )
        report = orch.run(3)
        # a 1-rank campaign has no survivors to fail over to; the
        # orchestrator ignores the death rather than deadlocking
        assert report.final_step == 3
        assert not report.recoveries


class TestTornFleetJournal:
    """Service-journal recovery when a fabric shard dies: entries
    re-homed by the supervisor must replay on the survivor (or on the
    respawned shard) and settle — zero accepted solves lost."""

    @staticmethod
    def spec(seed):
        from repro.ups import GridSpec, ProblemSpec, RMCRTSpec

        return ProblemSpec(
            grid=GridSpec(resolution=8, levels=1),
            rmcrt=RMCRTSpec(n_divq_rays=1, random_seed=seed),
        )

    @staticmethod
    def make_fleet(tmp_path, n):
        from repro.fabric.shard import ShardHandle
        from repro.fabric.supervisor import Fleet, FleetSupervisor

        fleet = Fleet()
        for i in range(n):
            shard = ShardHandle(f"shard{i}", tmp_path / "shards" / f"shard{i}")
            shard.paths.ensure()
            fleet.add(shard)
        return fleet, FleetSupervisor(fleet, tmp_path / "shards")

    def test_rehomed_journal_replays_on_survivor(self, tmp_path):
        from repro.service.journal import RequestJournal
        from repro.service.service import RadiationService, ServiceConfig
        from repro.ups import run_ups, spec_fingerprint

        fleet, sup = self.make_fleet(tmp_path, 2)
        dead, survivor = fleet.shards["shard0"], fleet.shards["shard1"]
        spec = self.spec(seed=7)
        fp = spec_fingerprint(spec)
        RequestJournal(dead.paths.journal).record(fp, spec)

        record = sup._rehome(dead, reason="died")
        assert record["journal_rehomed"] == 1
        assert (survivor.paths.journal / f"{fp}.json").exists()

        config = ServiceConfig(
            workers=1, journal_dir=str(survivor.paths.journal),
            cache_dir=str(survivor.paths.cache),
        )
        with RadiationService(config) as svc:
            recovered = svc.recover_journal()
            assert recovered["replayed"] == 1
            results = [h.result(timeout=120) for h in recovered["handles"]]
            np.testing.assert_array_equal(results[0].divq, run_ups(spec).divq)
            # settling the replay must clear the re-homed entry too
            assert len(svc.journal) == 0

    def test_chained_deaths_accumulate_on_final_survivor(self, tmp_path):
        """shard0 dies into shard1, then shard1 dies into shard2: the
        last survivor replays *both* inherited journals."""
        from repro.service.journal import RequestJournal
        from repro.service.service import RadiationService, ServiceConfig
        from repro.ups import spec_fingerprint

        fleet, sup = self.make_fleet(tmp_path, 3)
        s0, s1, s2 = (fleet.shards[f"shard{i}"] for i in range(3))
        spec_a, spec_b = self.spec(seed=1), self.spec(seed=2)
        RequestJournal(s0.paths.journal).record(spec_fingerprint(spec_a), spec_a)
        RequestJournal(s1.paths.journal).record(spec_fingerprint(spec_b), spec_b)

        sup._rehome(s0, reason="died")
        fleet.remove("shard0")
        rec = sup._rehome(s1, reason="died")
        assert rec["target"] == "shard2"
        assert len(list(s2.paths.journal.glob("*.json"))) == 2

        config = ServiceConfig(
            workers=1, journal_dir=str(s2.paths.journal),
            cache_dir=str(s2.paths.cache),
        )
        with RadiationService(config) as svc:
            recovered = svc.recover_journal()
            assert recovered["replayed"] == 2
            for handle in recovered["handles"]:
                handle.result(timeout=120)
            assert len(svc.journal) == 0

    def test_claimed_request_outlives_journal_rehoming(self, tmp_path):
        """The zero-loss invariant: a request that was claimed *and*
        journaled when the shard died appears exactly once on the
        survivor — as an inbox file — and its journal entry rides
        along rather than duplicating the work."""
        from repro.service.journal import RequestJournal
        from repro.service.spool import embed_ctx
        from repro.ups import spec_fingerprint, spec_to_ups

        fleet, sup = self.make_fleet(tmp_path, 2)
        dead, survivor = fleet.shards["shard0"], fleet.shards["shard1"]
        spec = self.spec(seed=3)
        claim = dead.paths.claim_dir("shard0")
        claim.mkdir(parents=True)
        (claim / "t0.ups").write_text(embed_ctx(spec_to_ups(spec), None))
        RequestJournal(dead.paths.journal).record(spec_fingerprint(spec), spec)

        record = sup._rehome(dead, reason="died")
        assert record["claims_released"] == 1
        assert record["requests_rehomed"] == 1
        assert record["journal_rehomed"] == 1
        assert survivor.paths.inbox_depth() == 1
        # one spool file, one journal entry — not two solves
        assert len(list(survivor.paths.journal.glob("*.json"))) == 1
        assert dead.paths.inbox_depth() == 0
        assert dead.paths.claimed_depth() == 0
