"""Tests for the request pools: wait-free correctness under real
threads, the legacy race reproduction, and Algorithm 1 semantics."""

import threading
import time

import pytest

from repro.comm import (
    BufferLedger,
    CommNode,
    LockedVectorCommPool,
    WaitFreeCommPool,
    make_pool,
    run_comm_workload,
)
from repro.runtime.mpi import SimMPI
from repro.util.errors import CommError


def completed_node(payload=b"data", nbytes=64):
    fabric = SimMPI(2)
    fabric.comm(0).isend(payload, dest=1, tag=0)
    req = fabric.comm(1).irecv(source=0, tag=0)
    assert req.test()
    return CommNode(req, nbytes=nbytes)


def pending_node():
    fabric = SimMPI(2)
    req = fabric.comm(1).irecv(source=0, tag=0)
    return CommNode(req, nbytes=64), fabric


class TestCommNode:
    def test_finish_once(self):
        node = completed_node()
        ledger = BufferLedger()
        ledger.allocate(node.nbytes)
        assert node.finish_communication(ledger)
        assert not node.finish_communication(ledger)  # second caller loses
        assert ledger.outstanding == 0

    def test_callback_invoked_with_data(self):
        got = []
        node = completed_node(payload=b"hello")
        node.on_finish = got.append
        node.finish_communication()
        assert got == [b"hello"]

    def test_ledger_accounting(self):
        ledger = BufferLedger()
        ledger.allocate(100)
        ledger.allocate(50)
        ledger.free(100)
        assert ledger.outstanding == 1
        assert ledger.outstanding_bytes == 50


class TestWaitFreePool:
    def test_insert_find_erase(self):
        pool = WaitFreeCommPool(capacity=4)
        node = completed_node()
        pool.insert(node)
        assert len(pool) == 1
        it = pool.find_any(lambda n: n.test())
        assert it and it.value is node
        it.erase()
        assert len(pool) == 0

    def test_find_any_none_when_pending(self):
        pool = WaitFreeCommPool(capacity=4)
        node, _fabric = pending_node()
        pool.insert(node)
        assert pool.find_any(lambda n: n.test()) is None

    def test_iterator_uniqueness(self):
        """While one iterator holds a slot, find_any cannot return it."""
        pool = WaitFreeCommPool(capacity=4)
        pool.insert(completed_node())
        it1 = pool.find_any(lambda n: True)
        assert it1 is not None
        assert pool.find_any(lambda n: True) is None  # slot is claimed
        it1.release()
        assert pool.find_any(lambda n: True) is not None

    def test_iterator_invalidated_after_use(self):
        pool = WaitFreeCommPool(capacity=4)
        pool.insert(completed_node())
        it = pool.find_any(lambda n: True)
        it.erase()
        with pytest.raises(CommError):
            _ = it.value
        with pytest.raises(CommError):
            it.erase()

    def test_iterator_context_manager_releases(self):
        pool = WaitFreeCommPool(capacity=4)
        pool.insert(completed_node())
        with pool.find_any(lambda n: True) as it:
            assert it.valid
        assert pool.find_any(lambda n: True) is not None  # released

    def test_growth_beyond_capacity(self):
        pool = WaitFreeCommPool(capacity=2, growth_chunk=2)
        for _ in range(7):
            pool.insert(completed_node())
        assert len(pool) == 7
        assert pool.capacity >= 7

    def test_process_ready_processes_all_completed(self):
        pool = WaitFreeCommPool(capacity=16)
        for _ in range(5):
            pool.insert(completed_node())
        pending, _fabric = pending_node()
        pool.insert(pending)
        assert pool.process_ready() == 5
        assert len(pool) == 1  # the pending one remains
        assert pool.ledger.outstanding == 0

    def test_bad_capacity(self):
        with pytest.raises(CommError):
            WaitFreeCommPool(capacity=0)

    def test_concurrent_claim_race(self):
        """Many threads fighting over few completed records: every record
        processed exactly once, nothing leaked."""
        pool = WaitFreeCommPool(capacity=64)
        n = 40
        for _ in range(n):
            pool.insert(completed_node())
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            while pool.processed < n:
                pool.process_ready()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert pool.processed == n
        assert pool.ledger.outstanding == 0
        assert pool.ledger.allocated == n


class TestLockedPool:
    def test_safe_mode_processes_all(self):
        pool = LockedVectorCommPool(mode="safe")
        for _ in range(5):
            pool.insert(completed_node())
        assert pool.process_ready() == 5
        assert pool.ledger.outstanding == 0
        assert len(pool) == 0

    def test_pending_stay(self):
        pool = LockedVectorCommPool(mode="safe")
        node, _fabric = pending_node()
        pool.insert(node)
        assert pool.process_ready() == 0
        assert len(pool) == 1

    def test_bad_mode(self):
        with pytest.raises(CommError):
            LockedVectorCommPool(mode="yolo")

    def test_racy_mode_single_thread_is_clean(self):
        pool = LockedVectorCommPool(mode="racy")
        for _ in range(5):
            pool.insert(completed_node())
        assert pool.process_ready() == 5
        assert pool.ledger.outstanding == 0


class TestPoolStats:
    def test_waitfree_counts_scans_and_retired(self):
        pool = WaitFreeCommPool(capacity=16)
        for _ in range(5):
            pool.insert(completed_node())
        assert pool.process_ready() == 5
        assert pool.stats.retired == 5
        assert pool.stats.passes == 1
        assert pool.stats.slot_scans >= 5  # at least one scan per record

    def test_waitfree_counts_claim_failures(self):
        pool = WaitFreeCommPool(capacity=4)
        pool.insert(completed_node())
        it = pool.find_any(lambda n: True)  # holds the slot's try-lock
        assert it is not None
        assert pool.find_any(lambda n: True) is None
        assert pool.stats.claim_failures >= 1
        it.release()

    def test_waitfree_counts_grows(self):
        pool = WaitFreeCommPool(capacity=2, growth_chunk=2)
        for _ in range(5):
            pool.insert(completed_node())
        assert pool.stats.grows >= 1

    def test_pools_report_comparable_retired_counts(self):
        """Same workload through the locked and wait-free pools: both
        designs must retire exactly every completed request — the
        paper's change is about contention, not about what gets done."""
        n = 12
        waitfree = WaitFreeCommPool(capacity=32)
        locked = LockedVectorCommPool(mode="safe")
        for _ in range(n):
            waitfree.insert(completed_node())
            locked.insert(completed_node())
        while waitfree.process_ready():
            pass
        while locked.process_ready():
            pass
        assert waitfree.stats.retired == n
        assert locked.stats.retired == n
        assert waitfree.stats.retired == locked.stats.retired
        assert waitfree.stats.slot_scans >= n
        assert locked.stats.slot_scans >= n

    def test_publish_metrics_delta_flush(self):
        from repro.perf.metrics import MetricsRegistry

        registry = MetricsRegistry()
        pool = WaitFreeCommPool(capacity=16)
        for _ in range(3):
            pool.insert(completed_node())
        pool.process_ready()
        pool.publish_metrics(registry, pool="waitfree")
        assert registry.value("comm.pool.retired", pool="waitfree") == 3
        # publishing again without new work must not double-count
        pool.publish_metrics(registry, pool="waitfree")
        assert registry.value("comm.pool.retired", pool="waitfree") == 3
        pool.insert(completed_node())
        pool.process_ready()
        pool.publish_metrics(registry, pool="waitfree")
        assert registry.value("comm.pool.retired", pool="waitfree") == 4


class TestWorkloads:
    @pytest.mark.parametrize("kind", ["waitfree", "locked"])
    @pytest.mark.parametrize("threads", [1, 4])
    def test_clean_under_concurrency(self, kind, threads):
        pool = make_pool(kind)
        result = run_comm_workload(pool, num_threads=threads, num_messages=300)
        assert result.clean, (
            f"{kind}/{threads}t: processed={result.processed}, "
            f"leaked={result.leaked_buffers}, races={result.races_observed}"
        )

    def test_legacy_racy_leaks_under_concurrency(self):
        """The Section IV.A bug: with several threads, the legacy pool
        double-processes completions and leaks buffers. The race is
        probabilistic; drive enough messages that it fires."""
        leaked = 0
        races = 0
        for attempt in range(6):
            pool = make_pool("legacy-racy", unpack_delay=1e-5)
            result = run_comm_workload(
                pool, num_threads=8, num_messages=400, overlapped_sends=True
            )
            leaked += result.leaked_buffers
            races += result.races_observed
            assert result.processed == result.expected  # each msg processed once
            if leaked > 0:
                break
        assert leaked > 0 and races > 0, "race did not manifest in 2400 messages"
        assert leaked == races  # one leaked buffer per lost race

    def test_make_pool_unknown(self):
        with pytest.raises(CommError):
            make_pool("mystery")

    def test_workload_validation(self):
        with pytest.raises(CommError):
            run_comm_workload(make_pool("waitfree"), num_threads=0)
