"""Tests for the distributed scheduler's per-rank ExecTimes — the
executable-runtime counterpart of Figure 1's measured local
communication time."""

import numpy as np
import pytest

from repro.core import DistributedRMCRT, benchmark_property_init
from repro.grid import LoadBalancer
from repro.radiation import BurnsChristonBenchmark
from repro.runtime import DistributedScheduler


@pytest.fixture(scope="module")
def executed():
    bench = BurnsChristonBenchmark(resolution=16)
    grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
    drm = DistributedRMCRT(
        grid, benchmark_property_init(bench), rays_per_cell=4, halo=2, seed=8
    )
    assignment = LoadBalancer(4).assign(grid.finest_level.patches)
    graph = drm.build_graph(assignment=assignment, num_ranks=4)
    sched = DistributedScheduler(4)
    sched.execute(graph)
    return graph, sched


class TestRankStats:
    def test_all_ranks_reported(self, executed):
        _, sched = executed
        assert set(sched.rank_stats) == {0, 1, 2, 3}

    def test_task_counts_sum_to_graph(self, executed):
        graph, sched = executed
        total = sum(s.tasks_executed for s in sched.rank_stats.values())
        assert total == len(graph.detailed_tasks)

    def test_exec_time_positive(self, executed):
        _, sched = executed
        for s in sched.rank_stats.values():
            assert s.task_exec_time > 0.0
            assert s.local_comm_time >= 0.0

    def test_message_accounting_matches_graph(self, executed):
        graph, sched = executed
        sent = sum(s.messages_sent for s in sched.rank_stats.values())
        assert sent == len(graph.messages)
        nbytes = sum(s.bytes_sent for s in sched.rank_stats.values())
        assert nbytes == graph.total_message_bytes

    def test_local_comm_is_minor_share(self, executed):
        """For a compute-heavy radiation graph, local comm is a small
        fraction of task execution — the regime the paper's fix put
        Uintah back into."""
        _, sched = executed
        exec_total = sum(s.task_exec_time for s in sched.rank_stats.values())
        comm_total = sum(s.local_comm_time for s in sched.rank_stats.values())
        assert comm_total < exec_total

    def test_stats_reset_per_execute(self, executed):
        graph, _ = executed
        sched = DistributedScheduler(4)
        assert sched.rank_stats == {}
        sched.execute(graph)
        first = sum(s.tasks_executed for s in sched.rank_stats.values())
        # re-execution on fresh warehouses resets the counters
        sched.execute(graph)
        second = sum(s.tasks_executed for s in sched.rank_stats.values())
        assert first == second == len(graph.detailed_tasks)
