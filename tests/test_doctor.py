"""Tests for the fabric event log and the root-cause doctor: event
emit/read ordering (incl. torn tails and supervisor drill ordering),
evidence collection from synthetic roots, the causal rules vs known
ground truth, incident read/write/render, summarize_live, the CLI,
and the detection-aware status verdicts."""

import json

import pytest

from repro.fabric.events import EVENT_KINDS, EventLog, read_events
from repro.perf.detect import CACHE_HIT_RATIO
from repro.perf.doctor import (
    Evidence,
    collect_evidence,
    diagnose,
    format_incident,
    rank_hypotheses,
    summarize_live,
    write_incident,
)
from repro.perf.tsdb import TimeSeriesStore


# ----------------------------------------------------------------------
# event log
# ----------------------------------------------------------------------
class TestEventLog:
    def test_emit_and_read_ordered(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("spawn", shard="shard0")
        log.emit("death", shard="shard0", reason="process-exit")
        log.emit("respawn", shard="shard0")
        records = log.read()
        assert [r["kind"] for r in records] == ["spawn", "death", "respawn"]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert all("t" in r for r in records)

    def test_seq_survives_reopen(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventLog(path).emit("spawn", shard="a")
        # control-loop restart: a fresh log continues the sequence
        second = EventLog(path)
        rec = second.emit("death", shard="a")
        assert rec["seq"] == 1

    def test_unknown_kind_rejected(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        with pytest.raises(ValueError):
            log.emit("explosion", shard="a")

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("spawn", shard="a")
        with path.open("a") as fh:
            fh.write('{"t": 1.0, "seq": 99, "ki')  # crash mid-append
        assert [r["kind"] for r in read_events(path)] == ["spawn"]
        # and the next writer keeps emitting after the torn line
        assert EventLog(path).emit("death", shard="a")["seq"] == 1

    def test_filters(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("spawn", shard="a")
        log.emit("steal", src="a", dst="b", moved=2)
        log.emit("death", shard="b")
        assert [r["kind"] for r in log.read(kinds=("death",))] == ["death"]
        assert len(log.tail(2)) == 2
        assert log.read(t0=float("inf")) == []

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []

    def test_every_emitted_kind_is_known(self):
        for kind in ("spawn", "death", "rehome", "respawn", "steal",
                     "autoscale", "reap", "retire"):
            assert kind in EVENT_KINDS


class TestSupervisorEventOrdering:
    def test_recover_emits_death_rehome_respawn_in_order(self, tmp_path):
        from repro.fabric.shard import ShardHandle
        from repro.fabric.supervisor import Fleet, FleetSupervisor

        fleet = Fleet()
        shards = {}
        for name in ("shard0", "shard1"):
            handle = ShardHandle(name, tmp_path / "shards" / name)
            handle.paths.ensure()
            # stub the process layer: this test is about the event
            # protocol, not subprocesses
            handle.spawn = lambda: None
            handle.kill = lambda: None
            handle.wait = lambda timeout=None: None
            handle.process_dead = lambda: True
            shards[name] = fleet.add(handle)
        log = EventLog(tmp_path / "events.jsonl")
        sup = FleetSupervisor(fleet, tmp_path / "shards", event_log=log)

        sup.recover("shard0")

        records = log.read()
        kinds = [r["kind"] for r in records]
        assert kinds == ["death", "rehome", "respawn"]
        # the drill's events land in order: seq is strictly monotone
        # and each stage references the same victim
        assert [r["seq"] for r in records] == sorted(r["seq"] for r in records)
        assert all(r["shard"] == "shard0" for r in records)
        assert records[0]["reason"] == "process-exit"
        assert records[1]["target"] == "shard1"


# ----------------------------------------------------------------------
# synthetic roots for evidence collection
# ----------------------------------------------------------------------
def make_death_root(tmp_path):
    """A fabric root whose telemetry says: shard0 died and recovered."""
    root = tmp_path / "fabroot"
    root.mkdir()
    (root / "fabric_status.json").write_text("{}")
    log = EventLog(root / "events.jsonl")
    log.emit("spawn", shard="shard0")
    log.emit("spawn", shard="shard1")
    log.emit("death", shard="shard0", reason="heartbeat-stale", restarts=0)
    log.emit("rehome", shard="shard0", target="shard1",
             claims_released=2, requests_rehomed=3, journal_rehomed=1)
    log.emit("respawn", shard="shard0", pid=4242, restarts=1)
    # fleet backlog spikes when the re-homed work lands on the survivor
    store = TimeSeriesStore(root / "tsdb", rank=0, retention=256)
    for i in range(10):
        store.append({"fabric.backlog": 1.0}, t=float(i))
    for i in range(10, 14):
        store.append({"fabric.backlog": 40.0}, t=float(i))
    return root


def make_poison_root(tmp_path):
    """A spool whose telemetry says: the hit ratio collapsed."""
    root = tmp_path / "spool"
    root.mkdir()
    store = TimeSeriesStore(root / "tsdb", rank=0, retention=256)
    hits = 0.0
    for i in range(10):
        hits += 2.0
        store.append({"service.cache.hits{tier=disk}": hits,
                      "service.cache.misses": 0.0}, t=float(i))
    misses = 0.0
    for i in range(10, 18):
        misses += 2.0
        store.append({"service.cache.hits{tier=disk}": hits,
                      "service.cache.misses": misses}, t=float(i))
    (root / "status.json").write_text(json.dumps({
        "heartbeat_t": 18.0, "degraded": False, "breaches": [],
        "queue_depth": 0,
        "shard": {"stats": {"cache_hits_memory": 0.0,
                            "cache_hits_disk": 0.0,
                            "cache_misses": 16.0, "solves": 16.0,
                            "requests": 16.0}},
    }))
    return root


def make_slowdown_root(tmp_path):
    """A spool whose telemetry says: latency quantiles drifted up."""
    root = tmp_path / "slowspool"
    root.mkdir()
    store = TimeSeriesStore(root / "tsdb", rank=0, retention=256)
    for i in range(8):
        store.append({"slo.solve.p95_s": 0.04, "slo.solve.p99_s": 0.05},
                     t=float(i))
    for i in range(8, 14):
        store.append({"slo.solve.p95_s": 0.45, "slo.solve.p99_s": 0.5},
                     t=float(i))
    return root


class TestCollectEvidence:
    def test_death_root_yields_events_and_detections(self, tmp_path):
        root = make_death_root(tmp_path)
        evidence = collect_evidence(root)
        kinds = {e.kind for e in evidence}
        assert "event" in kinds and "detection" in kinds
        assert [e.t for e in evidence] == sorted(e.t for e in evidence)
        deaths = [e for e in evidence
                  if e.kind == "event" and e.data["kind"] == "death"]
        assert deaths and "shard0" in deaths[0].summary

    def test_window_restricts_events(self, tmp_path):
        import time

        root = make_death_root(tmp_path)
        # a window entirely in the future excludes everything recorded
        recent = collect_evidence(root, window_s=1.0,
                                  now=time.time() + 1e6)
        assert [e for e in recent if e.kind == "event"] == []

    def test_empty_root_yields_nothing(self, tmp_path):
        root = tmp_path / "empty"
        root.mkdir()
        assert collect_evidence(root) == []


# ----------------------------------------------------------------------
# the rules vs ground truth
# ----------------------------------------------------------------------
class TestRules:
    def test_death_root_blames_shard_death(self, tmp_path):
        incident = diagnose(make_death_root(tmp_path))
        assert incident["cause"] == "shard-death"
        assert incident["subject"] == "shard0"
        top = incident["hypotheses"][0]
        assert top["confidence"] > 0.5
        # the evidence chain links the detection AND the fabric event
        linked = {incident["evidence"][i]["kind"] for i in top["evidence"]}
        assert "event" in linked

    def test_poison_root_blames_cache(self, tmp_path):
        incident = diagnose(make_poison_root(tmp_path))
        assert incident["cause"] == "cache-poison"
        top = incident["hypotheses"][0]
        assert "result-cache" in top["subject"]
        linked = {incident["evidence"][i]["kind"] for i in top["evidence"]}
        assert "detection" in linked and "status" in linked

    def test_slowdown_root_blames_worker(self, tmp_path):
        incident = diagnose(make_slowdown_root(tmp_path))
        assert incident["cause"] == "worker-slowdown"

    def test_death_discounts_slowdown(self):
        # same latency drift, but with a death in evidence the doctor
        # must blame the death, not invent a slow worker
        drift = Evidence(
            kind="detection", t=5.0, source="root:slo.solve.p95_s",
            summary="[critical] drift",
            data={"detector": "quantile-drift", "series": "slo.solve.p95_s",
                  "severity": "critical", "scope": "root",
                  "evidence": {"ratio": 9.0}})
        death = Evidence(
            kind="event", t=4.0, source="events.jsonl",
            summary="shard shard1 died",
            data={"kind": "death", "shard": "shard1", "seq": 0})
        alone = rank_hypotheses([drift])
        assert alone[0].cause == "worker-slowdown"
        together = rank_hypotheses([drift, death])
        assert together[0].cause == "shard-death"

    def test_queue_overload_only_without_upstream_cause(self):
        backlog = Evidence(
            kind="detection", t=1.0, source="root:fabric.backlog",
            summary="[warn] backlog band break",
            data={"detector": "ewma-band", "series": "fabric.backlog",
                  "severity": "warn", "scope": "root", "evidence": {}})
        alone = rank_hypotheses([backlog])
        assert alone[0].cause == "queue-overload"
        death = Evidence(
            kind="event", t=0.5, source="events.jsonl",
            summary="shard shard0 died",
            data={"kind": "death", "shard": "shard0", "seq": 0})
        together = rank_hypotheses([backlog, death])
        assert together[0].cause == "shard-death"

    def test_confidences_normalize(self, tmp_path):
        incident = diagnose(make_death_root(tmp_path))
        total = sum(h["confidence"] for h in incident["hypotheses"])
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_no_evidence_no_hypotheses(self):
        assert rank_hypotheses([]) == []


# ----------------------------------------------------------------------
# incidents: write / render / live summary
# ----------------------------------------------------------------------
class TestIncident:
    def test_write_and_reload(self, tmp_path):
        incident = diagnose(make_death_root(tmp_path))
        path = write_incident(tmp_path / "incident.json", incident)
        loaded = json.loads(path.read_text())
        assert loaded["cause"] == "shard-death"
        assert loaded["counts"]["events"] >= 5

    def test_format_renders_timeline_and_ranking(self, tmp_path):
        incident = diagnose(make_death_root(tmp_path))
        text = format_incident(incident)
        assert "timeline:" in text
        assert "hypotheses (ranked):" in text
        assert "shard-death" in text
        assert "shard0 died" in text

    def test_format_handles_healthy_root(self, tmp_path):
        root = tmp_path / "ok"
        root.mkdir()
        text = format_incident(diagnose(root))
        assert "nothing looks wrong" in text

    def test_summarize_live(self):
        from repro.perf.detect import Detection

        det = Detection(
            detector="ewma-band", series="fabric.backlog", t=10.0,
            severity="critical", value=50.0, window=(0.0, 10.0),
            message="fabric.backlog broke the EWMA band above")
        events = [{"kind": "death", "shard": "shard2", "seq": 0, "t": 9.0}]
        doc = summarize_live([det], events, now=11.0)
        assert doc["cause"] == "shard-death"
        assert doc["subject"] == "shard2"
        assert doc["hypotheses"][0]["evidence_summaries"]

    def test_summarize_live_healthy_is_none(self):
        assert summarize_live([], [], now=1.0) is None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestDoctorCli:
    def test_postmortem_writes_incident(self, tmp_path, capsys):
        from repro.perf.doctor import cmd_doctor

        root = make_death_root(tmp_path)
        rc = cmd_doctor(["postmortem", str(root)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "shard-death" in out
        assert (root / "incident.json").exists()

    def test_live_exit_code_reflects_findings(self, tmp_path, capsys):
        from repro.perf.doctor import cmd_doctor

        root = make_death_root(tmp_path)
        assert cmd_doctor(["live", str(root), "--window", "1e9"]) == 3
        healthy = tmp_path / "healthy"
        healthy.mkdir()
        capsys.readouterr()
        assert cmd_doctor(["live", str(healthy)]) == 0

    def test_main_dispatches_doctor(self, tmp_path, capsys):
        from repro.__main__ import main

        healthy = tmp_path / "healthy"
        healthy.mkdir()
        assert main(["doctor", "live", str(healthy)]) == 0
        assert "nothing looks wrong" in capsys.readouterr().out


# ----------------------------------------------------------------------
# status verdicts fold detections in
# ----------------------------------------------------------------------
class TestStatusDetections:
    BASE = {
        "uptime_s": 1.0, "queue_depth": 0, "degraded": False,
        "breaches": [], "policy": {}, "endpoints": {},
    }

    def _write(self, spool, extra):
        spool.mkdir(parents=True, exist_ok=True)
        doc = dict(self.BASE)
        doc.update(extra)
        (spool / "status.json").write_text(json.dumps(doc))

    def test_critical_detection_drives_exit_code(self, tmp_path, capsys):
        from repro.service.cli import cmd_status

        spool = tmp_path / "spool"
        self._write(spool, {"detections": {
            "worst": "critical",
            "active": [{"severity": "critical", "detector": "ewma-band",
                        "series": "slo.queue_depth",
                        "message": "slo.queue_depth broke the EWMA band"}],
            "observed": 10, "emitted": 1,
        }})
        rc = cmd_status(["--spool", str(spool)])
        out = capsys.readouterr().out
        assert rc == 3
        assert "DETECT [CRITICAL]" in out

    def test_warn_detection_prints_but_exits_zero(self, tmp_path, capsys):
        from repro.service.cli import cmd_status

        spool = tmp_path / "spool"
        self._write(spool, {"detections": {
            "worst": "warn",
            "active": [{"severity": "warn", "detector": "cusum",
                        "series": "fabric.backlog", "message": "drifting"}],
            "observed": 5, "emitted": 1,
        }})
        rc = cmd_status(["--spool", str(spool)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DETECT [WARN]" in out

    def test_incident_line_renders(self, tmp_path, capsys):
        from repro.service.cli import cmd_status

        spool = tmp_path / "spool"
        self._write(spool, {"incident": {
            "cause": "shard-death",
            "hypotheses": [{"cause": "shard-death", "subject": "shard0",
                            "confidence": 0.9, "summary": "it died"}],
        }})
        rc = cmd_status(["--spool", str(spool)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "INCIDENT: shard-death (shard0) confidence 90%" in out

    def test_fabric_aggregate_folds_shard_detections(self, tmp_path):
        from repro.fabric.fabric import aggregate_status

        root = tmp_path / "fab"
        shard = root / "shards" / "shard0"
        shard.mkdir(parents=True)
        doc = dict(self.BASE)
        doc["heartbeat_t"] = __import__("time").time()
        doc["detections"] = {
            "worst": "critical",
            "active": [{"severity": "critical", "detector": "ewma-band",
                        "series": "slo.queue_depth", "message": "boom"}],
            "observed": 3, "emitted": 1,
        }
        doc["shard"] = {"shard_id": "shard0", "exited": False,
                        "served": 1, "outstanding": 0, "stats": {}}
        (shard / "status.json").write_text(json.dumps(doc))
        agg = aggregate_status(root)
        row = agg["shards"]["shard0"]
        assert row["detections_worst"] == "critical"
        # an otherwise-healthy shard with a critical detection degrades
        assert row["state"] == "degraded"
        assert agg["state"] == "degraded"
