"""The check suite's shared finding format, the project linter, and
the ``python -m repro check`` CLI."""

import json

import pytest

from repro.check import CheckFinding, CheckReport, lint_paths, lint_source
from repro.check.cli import REPO_ROOT, run_check
from repro.check.findings import is_suppressed, parse_suppressions

REPRO_SRC = str(REPO_ROOT / "src" / "repro")


def rules(findings):
    return sorted(f.rule for f in findings)


class TestFindings:
    def test_format_and_dict(self):
        f = CheckFinding(
            rule="bare-except", severity="error", message="boom",
            file="x.py", line=3, check="lint",
        )
        assert f.format() == "x.py:3: error: [bare-except] boom"
        assert f.as_dict()["check"] == "lint"

    def test_severity_validated(self):
        with pytest.raises(ValueError):
            CheckFinding(rule="r", severity="fatal", message="m")

    def test_suppressions_parse(self):
        src = "a = 1\nb = q.get()  # repro: allow(blocking-call)\nc = 2  # repro: allow(*)\n"
        sup = parse_suppressions(src)
        assert sup == {2: {"blocking-call"}, 3: {"*"}}
        hit = CheckFinding(rule="blocking-call", severity="warning",
                           message="m", file="x.py", line=2)
        wild = CheckFinding(rule="anything", severity="error",
                            message="m", file="x.py", line=3)
        miss = CheckFinding(rule="bare-except", severity="error",
                            message="m", file="x.py", line=2)
        assert is_suppressed(hit, sup)
        assert is_suppressed(wild, sup)
        assert not is_suppressed(miss, sup)

    def test_report_merge_and_exit_code(self):
        a = CheckReport()
        assert a.exit_code == 0
        b = CheckReport(suppressed=2)
        b.extend([CheckFinding(rule="r", severity="warning", message="m")],
                 check="lint")
        a.merge(b)
        assert a.exit_code == 1
        assert a.suppressed == 2
        assert "1 finding(s)" in a.render_text()

    def test_report_json(self, tmp_path):
        r = CheckReport()
        r.extend([CheckFinding(rule="r", severity="error", message="m")],
                 check="lint")
        out = tmp_path / "report.json"
        r.write_json(out)
        data = json.loads(out.read_text())
        assert data["counts"] == {"total": 1, "errors": 1, "warnings": 0,
                                  "suppressed": 0}
        assert data["findings"][0]["rule"] == "r"


class TestLintRules:
    def test_unseeded_rng(self):
        findings, _ = lint_source("import random\nx = random.random()\n", "core/a.py")
        assert rules(findings) == ["unseeded-rng"]
        findings, _ = lint_source("import numpy as np\nnp.random.seed(0)\n", "core/a.py")
        assert rules(findings) == ["unseeded-rng"]
        findings, _ = lint_source("rng = np.random.default_rng()\n", "core/a.py")
        assert rules(findings) == ["unseeded-rng"]

    def test_seeded_rng_clean(self):
        src = ("rng = np.random.default_rng(7)\n"
               "r = random.Random(3)\n"
               "y = rng.random()\n")
        findings, _ = lint_source(src, "core/a.py")
        assert findings == []

    def test_rng_home_exempt(self):
        findings, _ = lint_source("x = random.random()\n", "src/repro/util/rng.py")
        assert findings == []

    def test_bare_and_overbroad_except(self):
        src = ("try:\n    f()\nexcept:\n    pass\n"
               "try:\n    g()\nexcept BaseException as e:\n    raise\n"
               "try:\n    h()\nexcept Exception:\n    pass\n")
        findings, _ = lint_source(src, "core/a.py")
        assert rules(findings) == ["bare-except", "overbroad-except",
                                   "overbroad-except"]

    def test_handled_exception_clean(self):
        src = "try:\n    f()\nexcept Exception as e:\n    log(e)\n"
        findings, _ = lint_source(src, "core/a.py")
        assert findings == []

    def test_blocking_call_scoped(self):
        src = "item = q.get()\nlock.acquire()\nev.wait()\n"
        findings, _ = lint_source(src, "comm/a.py")
        assert rules(findings) == ["blocking-call"] * 3
        # same code outside comm/service/memory scope: no findings
        findings, _ = lint_source(src, "core/a.py")
        assert findings == []

    def test_blocking_call_check_and_tsdb_scope(self):
        """The checkers and the tsdb collector live under the same
        no-untimed-blocking discipline as the layers they drive."""
        src = "item = q.get()\nlock.acquire()\n"
        findings, _ = lint_source(src, "check/a.py")
        assert rules(findings) == ["blocking-call"] * 2
        findings, _ = lint_source(src, "perf/tsdb.py")
        assert rules(findings) == ["blocking-call"] * 2
        # the rest of perf/ stays out of scope
        findings, _ = lint_source(src, "perf/metrics.py")
        assert findings == []

    def test_blocking_call_with_timeout_clean(self):
        src = ("item = q.get(timeout=0.5)\n"
               "ok = lock.acquire(timeout=1.0)\n"
               "ok = lock.acquire(blocking=False)\n"
               "ok = lock.acquire(False)\n"
               "ev.wait(0.1)\n")
        findings, _ = lint_source(src, "service/a.py")
        assert findings == []

    def test_mutable_default(self):
        src = "def f(a, b=[], c={}, d=dict()):\n    return a\n"
        findings, _ = lint_source(src, "core/a.py")
        assert rules(findings) == ["mutable-default"] * 3

    def test_unlabeled_metric(self):
        src = "m.counter('x.y').inc()\nm.gauge('z', pool='wf').set(1)\n"
        findings, _ = lint_source(src, "comm/a.py")
        assert rules(findings) == ["unlabeled-metric"]

    def test_suppression_honored(self):
        src = "item = q.get()  # repro: allow(blocking-call)\n"
        findings, suppressed = lint_source(src, "comm/a.py")
        assert findings == []
        assert suppressed == 1

    def test_syntax_error_is_a_finding(self):
        findings, _ = lint_source("def broken(:\n", "core/a.py")
        assert rules(findings) == ["syntax-error"]


class TestLintTree:
    def test_src_tree_is_clean(self):
        """The satellite guarantee: every real finding in src/ is fixed
        or carries an explicit inline suppression."""
        findings, suppressed, scanned = lint_paths([REPRO_SRC])
        assert scanned > 50
        assert findings == [], "\n".join(f.format() for f in findings)
        # the deliberate keeps: blocking acquires in memory/pool.py,
        # BaseException propagation in runtime/scheduler.py, and the
        # transparent lock shim + barrier drive in check/races.py
        assert suppressed >= 8


class TestCheckCLI:
    def test_lint_subcommand_clean(self, capsys):
        assert run_check(["lint"]) == 0
        assert "repro check lint" in capsys.readouterr().out

    def test_graph_seeded_defects_gate(self, capsys):
        assert run_check(["graph", "--seeded-defects"]) == 1
        out = capsys.readouterr().out
        assert "graph-dangling-consumer" in out
        assert "graph-write-write" in out

    def test_leaks_json_report(self, tmp_path, capsys):
        out = tmp_path / "check_report.json"
        assert run_check(["leaks", "--seeded-defects", "--json", str(out)]) == 1
        capsys.readouterr()
        data = json.loads(out.read_text())
        got = {f["rule"] for f in data["findings"]}
        assert got == {"alloc-double-free", "alloc-use-after-retire",
                       "alloc-leak"}
        assert data["counts"]["errors"] == len(data["findings"])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            run_check(["frobnicate"])


class TestListRules:
    def test_text_listing_covers_every_analyzer(self, capsys):
        assert run_check(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for check in ("lint", "graph", "races", "leaks", "fs",
                      "protocol"):
            assert f"== {check} ==" in out
        assert "fs-non-atomic-publish" in out
        assert "protocol-lost-request" in out

    def test_json_catalog(self, tmp_path, capsys):
        out = tmp_path / "rules.json"
        assert run_check(["--list-rules", "--json", str(out)]) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        rows = data["rules"]
        assert {r["check"] for r in rows} == {
            "lint", "graph", "races", "leaks", "fs", "protocol"}
        for row in rows:
            assert row["severity"] in ("error", "warning")
            assert row["description"]
        names = [r["rule"] for r in rows]
        assert len(names) == len(set(names)), "rule names must be unique"

    def test_catalogs_match_emitted_rules(self):
        """Every rule an analyzer can emit appears in its catalog."""
        from repro.check import fs, protocol
        from repro.check.cli import collect_rules

        listed = {r["rule"] for r in collect_rules()}
        assert set(fs.FIXTURE_RULES.values()) <= listed
        assert set(protocol.DEFECT_RULES.values()) <= listed
