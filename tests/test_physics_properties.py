"""Property-based physics invariants (hypothesis) spanning the RMCRT
core: path-length exactness, attenuation algebra, reciprocity-style
bounds, and decomposition invariance under random configurations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import Box
from repro.core import (
    LevelFields,
    RayBatch,
    isotropic_directions,
    march,
    march_single_ray,
)
from repro.core.dda import RayStatus
from repro.radiation import RadiativeProperties


def uniform_fields(n, kappa, st4=1.0, wall_emis=1.0):
    box = Box.cube(n)
    props = RadiativeProperties.from_fields(
        box,
        abskg=np.full(box.extent, kappa),
        sigma_t4=np.full(box.extent, st4),
        wall_emissivity=wall_emis,
    )
    return LevelFields(
        abskg=props.abskg,
        sigma_t4=props.sigma_t4,
        cell_type=props.cell_type,
        interior=box,
        dx=(1.0 / n,) * 3,
        anchor=(0.0, 0.0, 0.0),
    )


def chord_to_wall(origin, direction, eps=1e-12):
    """Exact distance from origin to the unit-cube boundary along d."""
    t = np.inf
    for k in range(3):
        d = direction[k]
        if d > eps:
            t = min(t, (1.0 - origin[k]) / d)
        elif d < -eps:
            t = min(t, -origin[k] / d)
    return t


@st.composite
def interior_rays(draw, n=8):
    """A random origin strictly inside the cube and a random direction."""
    pos = [draw(st.floats(0.05, 0.95)) for _ in range(3)]
    cos_t = draw(st.floats(-1, 1))
    phi = draw(st.floats(0, 2 * np.pi))
    sin_t = np.sqrt(max(0.0, 1 - cos_t ** 2))
    d = [sin_t * np.cos(phi), sin_t * np.sin(phi), cos_t]
    return np.array(pos), np.array(d)


class TestPathLengthExactness:
    @given(interior_rays(), st.floats(0.1, 5.0))
    @settings(max_examples=150, deadline=None)
    def test_tau_equals_kappa_times_chord(self, ray, kappa):
        """In a uniform medium the accumulated optical depth at the wall
        is exactly kappa times the geometric chord length — the sum of
        DDA segment lengths telescopes with zero drift."""
        origin, d = ray
        fields = uniform_fields(8, kappa)
        sum_i, tau, status, _ = march_single_ray(
            fields, origin, d, threshold=1e-300
        )
        expected = kappa * chord_to_wall(origin, d)
        assert status == RayStatus.WALL_HIT
        assert np.isclose(tau, expected, rtol=1e-9, atol=1e-12)

    @given(interior_rays(), st.floats(0.1, 5.0))
    @settings(max_examples=100, deadline=None)
    def test_beer_lambert_closed_form(self, ray, kappa):
        """sumI = Ib (1 - exp(-kappa L)) for a uniform hot medium and a
        cold black wall, for ANY ray."""
        origin, d = ray
        fields = uniform_fields(8, kappa)
        sum_i, _, _, _ = march_single_ray(fields, origin, d, threshold=1e-300)
        L = chord_to_wall(origin, d)
        expected = (1.0 / np.pi) * (1.0 - np.exp(-kappa * L))
        assert np.isclose(sum_i, expected, rtol=1e-9, atol=1e-12)


class TestMonotonicity:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_sum_i_monotone_in_kappa(self, seed):
        """Hot medium, cold walls: a thicker gas yields larger incoming
        intensity for the SAME geometric rays."""
        rng = np.random.default_rng(seed)
        origins = np.asarray(
            uniform_fields(6, 1.0).cell_center(rng.integers(1, 5, size=(16, 3)))
        )
        dirs = isotropic_directions(rng, 16)
        sums = []
        for kappa in (0.2, 1.0, 5.0):
            fields = uniform_fields(6, kappa)
            batch = RayBatch.fresh(origins.copy(), dirs.copy())
            march(fields=fields, batch=batch, threshold=1e-12)
            sums.append(batch.sum_i.copy())
        assert (sums[0] <= sums[1] + 1e-12).all()
        assert (sums[1] <= sums[2] + 1e-12).all()

    @given(st.floats(0.1, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_reflective_walls_bounded_by_blackbody(self, emis):
        """With reflections on, sumI can approach but never exceed the
        black-body intensity of the hot medium (Ib = 1/pi)."""
        fields = uniform_fields(6, kappa=1.0, wall_emis=emis)
        rng = np.random.default_rng(int(emis * 1e6))
        origins = np.asarray(fields.cell_center(rng.integers(1, 5, size=(32, 3))))
        dirs = isotropic_directions(rng, 32)
        batch = RayBatch.fresh(origins, dirs)
        march(fields=fields, batch=batch, reflections=True, threshold=1e-6)
        assert (batch.sum_i <= 1.0 / np.pi + 1e-9).all()
        assert (batch.sum_i >= 0).all()


class TestChunkInvariance:
    @pytest.mark.parametrize("chunk", [7, 64, 100000])
    def test_chunk_size_does_not_change_divq(self, chunk):
        """The kernel chunking is pure mechanics: any chunk size yields
        the identical answer for the same rays."""
        from repro.core import trace_patch_single_level
        from repro.radiation import BurnsChristonBenchmark

        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.single_level_grid()
        props = bench.properties_for_level(grid.finest_level)
        fields = LevelFields.from_properties(grid.finest_level, props)
        box = Box.cube(4, lo=(2, 2, 2))
        base = trace_patch_single_level(
            fields, box, 8, np.random.default_rng(5), chunk_rays=1 << 17
        )
        other = trace_patch_single_level(
            fields, box, 8, np.random.default_rng(5), chunk_rays=chunk
        )
        np.testing.assert_array_equal(base, other)


class TestEnergyBounds:
    @given(st.floats(0.2, 3.0), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_divq_bounded_by_emission(self, kappa, seed):
        """0 <= del.q <= 4 kappa sigma_t4 for hot medium + cold walls:
        a cell cannot lose more than it emits, nor gain net energy."""
        from repro.core import SingleLevelRMCRT
        from repro.grid import build_single_level_grid

        n = 6
        box = Box.cube(n)
        props = RadiativeProperties.from_fields(
            box,
            abskg=np.full(box.extent, kappa),
            sigma_t4=np.ones(box.extent),
        )
        grid = build_single_level_grid(n)
        res = SingleLevelRMCRT(rays_per_cell=8, seed=seed).solve(grid, props)
        assert (res.divq >= -1e-12).all()
        assert (res.divq <= 4.0 * kappa + 1e-9).all()
