"""Cross-validation between the executable runtime and the analytic
cost model — the two layers of the reproduction must tell the same
story about communication structure.

A compiled distributed-RMCRT task graph's actual message batches and
byte counts are compared against what
:func:`repro.dessim.multi_level_comm_per_rank` predicts for the same
(problem, patch size, rank) configuration, and the CPU-vs-GPU node
models are sanity-checked against each other.
"""

import numpy as np
import pytest

from repro.core import DistributedRMCRT, benchmark_property_init
from repro.dessim import (
    BYTES_PER_VAR,
    NUM_PROPERTY_VARS,
    ClusterSimulator,
    RMCRTProblem,
    SimOptions,
    multi_level_comm_per_rank,
)
from repro.grid import LoadBalancer
from repro.machine import OPTERON_6274, CPUNodeModel, K20X
from repro.radiation import BurnsChristonBenchmark
from repro.util.errors import ReproError


class TestGraphVsCostModel:
    @pytest.fixture(scope="class")
    def compiled(self):
        """A 32^3/RR4 benchmark graph on 8 ranks with 8^3 patches."""
        bench = BurnsChristonBenchmark(resolution=32)
        grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
        drm = DistributedRMCRT(
            grid, benchmark_property_init(bench), rays_per_cell=2, halo=2
        )
        lb = LoadBalancer(8)
        assignment = lb.assign(grid.finest_level.patches)
        return drm.build_graph(assignment=assignment, num_ranks=8)

    def test_coarse_bytes_match_model(self, compiled):
        """Level-variable traffic per rank == the model's coarse bytes
        (3 property arrays x coarse volume x remote fraction)."""
        problem = RMCRTProblem(fine_cells=32, refinement_ratio=4, halo=2)
        predicted = multi_level_comm_per_rank(problem, 8, 8).coarse_bytes
        level_msgs = [m for m in compiled.messages if m.src_patch_id < 0]
        # per receiving rank: 3 arrays x 8^3 cells x 8 bytes
        per_rank = {}
        for m in level_msgs:
            per_rank[m.dst_rank] = per_rank.get(m.dst_rank, 0) + m.nbytes
        expected_exact = NUM_PROPERTY_VARS * 8 ** 3 * BYTES_PER_VAR
        for rank, nbytes in per_rank.items():
            assert nbytes == expected_exact
        # model says the same to within its remote-fraction rounding
        assert predicted == pytest.approx(expected_exact, rel=0.15)

    def test_halo_bytes_same_order_as_model(self, compiled):
        """Fine ghost traffic per rank lands within 3x of the model's
        halo estimate (the model assumes a fixed off-node face fraction;
        the graph has the real SFC geometry)."""
        problem = RMCRTProblem(fine_cells=32, refinement_ratio=4, halo=2)
        predicted = multi_level_comm_per_rank(problem, 8, 8).halo_bytes
        halo_msgs = [m for m in compiled.messages if m.src_patch_id >= 0]
        per_rank = np.zeros(8)
        for m in halo_msgs:
            per_rank[m.dst_rank] += m.nbytes
        measured = per_rank.mean()
        assert measured / 3 < predicted < measured * 3

    def test_batching_reduces_wire_messages(self, compiled):
        batches = compiled.message_batches()
        assert len(batches) < len(compiled.messages)
        assert sum(len(v) for v in batches.values()) == len(compiled.messages)

    def test_rank_comm_stats_consistent(self, compiled):
        total_recv = sum(
            compiled.rank_comm_stats(r)["recv_bytes"] for r in range(8)
        )
        assert total_recv == compiled.total_message_bytes
        total_send = sum(
            compiled.rank_comm_stats(r)["send_bytes"] for r in range(8)
        )
        assert total_send == total_recv


class TestCPUNodeModel:
    def test_validation(self):
        with pytest.raises(ReproError):
            CPUNodeModel(steps_per_second_per_core=0)
        with pytest.raises(ReproError):
            CPUNodeModel(parallel_efficiency=0)
        with pytest.raises(ReproError):
            OPTERON_6274.task_time(0, 1, 1)

    def test_gpu_node_beats_cpu_node_at_saturation(self):
        """A saturated K20X out-runs the 16-core Opteron node — the
        premise of the GPU port (>90% of Titan's FLOPS on the GPUs)."""
        cells, rays, steps = 32 ** 3, 100, 150.0
        t_gpu = K20X.kernel_time(cells, rays, steps)
        # node CPU time: the patch shared across all 16 cores at best
        t_cpu = OPTERON_6274.task_time(cells, rays, steps) / OPTERON_6274.cores
        assert t_gpu < t_cpu

    def test_small_patches_erase_the_gpu_advantage(self):
        """At 16^3 the K20X runs at ~14% occupancy and the node contest
        tightens — the Section V motivation for patch-size tuning."""
        rays, steps = 100, 150.0
        ratios = []
        for ps in (16, 32):
            cells = ps ** 3
            t_gpu = K20X.kernel_time(cells, rays, steps)
            t_cpu = OPTERON_6274.task_time(cells, rays, steps) / OPTERON_6274.cores
            ratios.append(t_cpu / t_gpu)
        assert ratios[0] < ratios[1]  # GPU advantage grows with patch size


class TestClusterCPUDevice:
    def test_cpu_timestep_runs(self):
        sim = ClusterSimulator()
        problem = RMCRTProblem(fine_cells=256)
        b = sim.simulate_timestep(problem, 32, 128, SimOptions(device="cpu"))
        assert b.total_time > 0
        assert b.h2d_bytes == 0  # no PCIe stage on the CPU path
        assert b.gpu_memory_ok  # host memory is ample

    def test_gpu_vs_cpu_node_ratio(self):
        """Per the machine models, the GPU configuration wins per node
        for well-sized patches."""
        sim = ClusterSimulator()
        problem = RMCRTProblem(fine_cells=256)
        gpu = sim.simulate_timestep(problem, 32, 128, SimOptions(device="gpu"))
        cpu = sim.simulate_timestep(problem, 32, 128, SimOptions(device="cpu"))
        assert gpu.total_time < cpu.total_time
        ratio = cpu.total_time / gpu.total_time
        assert 1.2 < ratio < 20  # modest node-for-node win, not magic

    def test_unknown_device(self):
        sim = ClusterSimulator()
        with pytest.raises(ReproError):
            sim.simulate_timestep(
                RMCRTProblem(fine_cells=256), 32, 64, SimOptions(device="tpu")
            )
