"""Failure injection: randomized message delivery order/latency.

The paper's race conditions "only manifest at larger scale" because
scale randomizes message arrival. The jittered fabric brings that
nondeterminism to laptop runs: messages arrive late and in randomized
cross-channel order, and the schedulers must not care.
"""

import threading
import time

import numpy as np
import pytest

from repro.grid import Box, Grid, decompose_level
from repro.dw import cc
from repro.runtime import (
    Computes,
    DistributedScheduler,
    Requires,
    SerialScheduler,
    SimMPI,
    Task,
    TaskGraph,
    gather_cc,
)
from repro.core import DistributedRMCRT, benchmark_property_init
from repro.radiation import BurnsChristonBenchmark
from repro.util.errors import CommError


class TestJitteredFabric:
    def test_delivery_eventually_happens(self):
        fabric = SimMPI(2, delivery_jitter=2e-3, jitter_seed=1)
        a, b = fabric.comms()
        req = b.irecv(source=0, tag=5)
        a.isend("late", dest=1, tag=5)
        assert req.wait(timeout=5.0) == "late"
        fabric.shutdown()

    def test_per_channel_fifo_preserved(self):
        """Same (src, dst, tag): order preserved even under jitter —
        MPI's non-overtaking guarantee."""
        fabric = SimMPI(2, delivery_jitter=1e-3, jitter_seed=2)
        a, b = fabric.comms()
        for i in range(10):
            a.isend(i, dest=1, tag=7)
        got = [b.recv(source=0, tag=7, timeout=5.0) for _ in range(10)]
        assert got == list(range(10))
        fabric.shutdown()

    def test_cross_channel_order_randomized(self):
        """Different tags may overtake each other — and with a seeded
        shuffle, at least sometimes do."""
        fabric = SimMPI(2, delivery_jitter=5e-4, jitter_seed=3)
        a, b = fabric.comms()
        n = 20
        for i in range(n):
            a.isend(i, dest=1, tag=i)
        arrival = []
        deadline = time.monotonic() + 5.0
        while len(arrival) < n and time.monotonic() < deadline:
            for i in range(n):
                if i not in arrival and b.probe(source=0, tag=i):
                    b.recv(source=0, tag=i)
                    arrival.append(i)
        assert sorted(arrival) == list(range(n))
        assert arrival != list(range(n)), "jitter should reorder channels"
        fabric.shutdown()

    def test_quiescence_accounts_staged(self):
        fabric = SimMPI(2, delivery_jitter=50e-3, jitter_seed=4)
        fabric.comm(0).isend("x", dest=1, tag=0)
        assert not fabric.quiescent()  # still staged or undelivered
        fabric.comm(1).recv(source=0, tag=0, timeout=5.0)
        fabric.shutdown()
        assert fabric.quiescent()

    def test_negative_jitter_rejected(self):
        with pytest.raises(CommError):
            SimMPI(2, delivery_jitter=-1.0)

    def test_shutdown_idempotent(self):
        fabric = SimMPI(2, delivery_jitter=1e-4)
        fabric.shutdown()
        fabric.shutdown()


PHI = cc("phi")
PSI = cc("psi")


def stencil_graph(num_ranks):
    grid = Grid()
    level = grid.add_level(Box.cube(8), (1 / 8,) * 3)
    decompose_level(level, (4, 4, 4))

    def init_cb(ctx):
        b = ctx.patch.box
        i, j, k = np.meshgrid(
            np.arange(b.lo[0], b.hi[0]),
            np.arange(b.lo[1], b.hi[1]),
            np.arange(b.lo[2], b.hi[2]),
            indexing="ij",
        )
        ctx.compute(PHI, (i + 10.0 * j + 100.0 * k).astype(float))

    def smooth_cb(ctx):
        phi = ctx.require(PHI, default=0.0)
        ctx.compute(PSI, phi[1:-1, 1:-1, 1:-1] * 2.0)

    tg = TaskGraph(grid)
    tg.add_task(Task("init", init_cb, computes=[Computes(PHI)]), 0)
    tg.add_task(
        Task("smooth", smooth_cb, requires=[Requires(PHI, num_ghost=1)],
             computes=[Computes(PSI)]),
        0,
    )
    assignment = {p.patch_id: p.patch_id % num_ranks for p in level.patches}
    return grid, tg.compile(assignment=assignment, num_ranks=num_ranks)


class TestSchedulerUnderJitter:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stencil_correct_under_jitter(self, seed):
        grid, graph = stencil_graph(4)
        sched = DistributedScheduler(4, delivery_jitter=1e-3, jitter_seed=seed)
        rank_dws = sched.execute(graph)
        psi = gather_cc(graph, rank_dws, PSI, 0)
        grid2, serial_graph = stencil_graph(1)
        dw = SerialScheduler().execute(serial_graph)
        expected = gather_cc(serial_graph, {0: dw}, PSI, 0)
        np.testing.assert_array_equal(psi, expected)

    def test_rmcrt_pipeline_correct_under_jitter(self):
        """The full radiation pipeline survives adversarial delivery:
        bit-identical divq."""
        bench = BurnsChristonBenchmark(resolution=16)
        grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
        drm = DistributedRMCRT(
            grid, benchmark_property_init(bench), rays_per_cell=4, halo=2, seed=6
        )
        reference = drm.solve("serial")
        from repro.grid import LoadBalancer

        assignment = LoadBalancer(4).assign(grid.finest_level.patches)
        graph = drm.build_graph(assignment=assignment, num_ranks=4)
        sched = DistributedScheduler(4, delivery_jitter=2e-3, jitter_seed=9)
        rank_dws = sched.execute(graph)
        from repro.core.distributed import DIVQ

        divq = gather_cc(graph, rank_dws, DIVQ, 1)
        np.testing.assert_array_equal(divq, reference.divq)
