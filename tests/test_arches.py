"""Tests for the ARCHES-lite CFD substrate and the coupled driver."""

import numpy as np
import pytest

from repro.arches import (
    BoilerScenario,
    CoupledSimulation,
    EnergyEquation,
    PressureProjection,
    SmagorinskyModel,
    advance,
    divergence,
    gradient,
    laplacian,
    ssp_rk1,
    ssp_rk2,
    ssp_rk3,
    strain_rate_magnitude,
    upwind_advection,
)
from repro.arches.operators import pad_field
from repro.util.errors import ReproError


class TestIntegrators:
    def exact_decay(self, integrator, dt, steps=32):
        """Integrate du/dt = -u; measure error vs exp(-t)."""
        u = np.array([1.0])
        for _ in range(steps):
            u = integrator(lambda x, t: -x, u, 0.0, dt)
        return abs(u[0] - np.exp(-dt * steps))

    @pytest.mark.parametrize(
        "integ,order", [(ssp_rk1, 1), (ssp_rk2, 2), (ssp_rk3, 3)]
    )
    def test_convergence_order(self, integ, order):
        e1 = self.exact_decay(integ, dt=0.1)
        e2 = self.exact_decay(integ, dt=0.05, steps=64)
        rate = np.log2(e1 / e2)
        assert order - 0.3 < rate < order + 0.5

    def test_advance_dispatch(self):
        u = np.ones(3)
        out = advance(lambda x, t: 0 * x, u, 0.0, 0.1, order=3)
        assert np.allclose(out, u)
        with pytest.raises(ReproError):
            advance(lambda x, t: x, u, 0.0, 0.1, order=4)

    def test_ssp_linear_invariance(self):
        """All SSP schemes preserve constants exactly."""
        u = np.full(5, 7.0)
        for integ in (ssp_rk1, ssp_rk2, ssp_rk3):
            assert np.allclose(integ(lambda x, t: 0 * x, u, 0, 0.5), 7.0)


def wave_field(n, k=1):
    x = np.linspace(0, 2 * np.pi, n, endpoint=False)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    return np.sin(k * X) * np.sin(k * Y) * np.sin(k * Z), (2 * np.pi / n,) * 3


class TestOperators:
    def test_pad_modes(self):
        f = np.arange(8.0).reshape(2, 2, 2)
        assert pad_field(f, "periodic")[0, 1, 1] == f[-1, 0, 0]
        assert pad_field(f, "fixed", 9.0)[0, 0, 0] == 9.0
        assert pad_field(f, "neumann")[0, 1, 1] == f[0, 0, 0]
        with pytest.raises(ReproError):
            pad_field(f, "robin")

    def test_laplacian_eigenfunction(self):
        """lap(sin kx sin ky sin kz) = -3k^2 * field (periodic)."""
        f, dx = wave_field(32)
        lap = laplacian(f, dx, bc="periodic")
        assert np.allclose(lap, -3.0 * f, atol=0.05)

    def test_gradient_plane_wave(self):
        n = 32
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)
        f = np.sin(x)[:, None, None] * np.ones((n, n, n))
        gx, gy, gz = gradient(f, (2 * np.pi / n,) * 3, bc="periodic")
        assert np.allclose(gx, np.cos(x)[:, None, None] * np.ones_like(f), atol=0.01)
        assert np.allclose(gy, 0) and np.allclose(gz, 0)

    def test_divergence_of_gradient_field(self):
        f, dx = wave_field(32)
        gx, gy, gz = gradient(f, dx, bc="periodic")
        div = divergence(gx, gy, gz, dx, bc="periodic")
        # wide-stencil laplacian of the eigenfunction: still ~ -3f
        assert np.corrcoef(div.ravel(), f.ravel())[0, 1] < -0.99

    def test_upwind_translates_correctly(self):
        """Constant +x velocity: d(phi)/dt = -u dphi/dx with donor cell."""
        n = 16
        phi = np.zeros((n, n, n))
        phi[4, :, :] = 1.0
        vel = (np.ones_like(phi), np.zeros_like(phi), np.zeros_like(phi))
        rhs = upwind_advection(phi, vel, (1.0,) * 3)
        assert rhs[5, 0, 0] > 0       # front gains
        assert rhs[4, 0, 0] < 0       # peak loses
        assert np.allclose(rhs[: 4], 0)

    def test_upwind_conserves_sum_periodic(self):
        rng = np.random.default_rng(0)
        phi = rng.random((8, 8, 8))
        vel = (np.ones_like(phi), np.zeros_like(phi), np.zeros_like(phi))
        rhs = upwind_advection(phi, vel, (1.0,) * 3, bc="periodic")
        assert abs(rhs.sum()) < 1e-10

    def test_strain_rate_shear(self):
        """u = (y, 0, 0): |S| = sqrt(2 * 2 * (1/2)^2) = 1... precisely
        |S| = sqrt(2 S_ij S_ij) with S_xy = 1/2 => sqrt(2*2*(1/4)) = 1."""
        n = 16
        y = np.linspace(0, 1, n, endpoint=False)
        u = np.broadcast_to(y[None, :, None], (n, n, n)).copy()
        z = np.zeros_like(u)
        mag = strain_rate_magnitude((u, z, z), (1.0 / n,) * 3)
        assert np.allclose(mag[:, 2:-2, :], 1.0, atol=1e-10)


class TestProjection:
    def test_reduces_divergence(self):
        n = 16
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        u = np.sin(X) * np.cos(Y)
        v = np.cos(Y) * np.sin(Z)
        w = np.sin(Z) * np.cos(X)
        dx = (2 * np.pi / n,) * 3
        proj = PressureProjection(dx)
        u2, v2, w2, p = proj.project(u, v, w)
        d0 = np.abs(divergence(u, v, w, dx, bc="periodic")).max()
        d1 = np.abs(divergence(u2, v2, w2, dx, bc="periodic")).max()
        assert d1 < 0.2 * d0

    def test_divergence_free_is_fixed_point(self):
        n = 16
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)
        X = np.meshgrid(x, x, x, indexing="ij")[0]
        # u = (0, sin x, 0) is divergence-free
        u = np.zeros((n, n, n))
        v = np.sin(X)
        w = np.zeros_like(u)
        proj = PressureProjection((2 * np.pi / n,) * 3)
        u2, v2, w2, _ = proj.project(u, v, w)
        assert np.allclose(u2, u, atol=1e-8)
        assert np.allclose(v2, v, atol=1e-8)

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            PressureProjection((1, 1, 1)).project(
                np.zeros((4, 4, 4)), np.zeros((4, 4, 4)), np.zeros((5, 4, 4))
            )


class TestSmagorinsky:
    def test_no_strain_no_viscosity(self):
        m = SmagorinskyModel()
        z = np.zeros((8, 8, 8))
        assert np.allclose(m.eddy_viscosity((z, z, z), (0.1,) * 3), 0)

    def test_scaling_with_strain(self):
        m = SmagorinskyModel()
        n = 16
        y = np.linspace(0, 1, n, endpoint=False)
        u1 = np.broadcast_to(y[None, :, None], (n, n, n)).copy()
        z = np.zeros_like(u1)
        nu1 = m.eddy_viscosity((u1, z, z), (1 / n,) * 3)[:, 4:-4, :].mean()
        nu2 = m.eddy_viscosity((2 * u1, z, z), (1 / n,) * 3)[:, 4:-4, :].mean()
        assert np.isclose(nu2, 2 * nu1, rtol=1e-6)

    def test_effective_diffusivity_floor(self):
        m = SmagorinskyModel()
        z = np.zeros((4, 4, 4))
        k = m.effective_diffusivity((z, z, z), (0.1,) * 3, molecular=0.5)
        assert np.allclose(k, 0.5)

    def test_bad_constant(self):
        with pytest.raises(ReproError):
            SmagorinskyModel(cs=1.5)


class TestEnergyEquation:
    def test_diffusion_smooths(self):
        eq = EnergyEquation(dx=(0.1,) * 3, conductivity=1e-2, bc="neumann")
        t = np.zeros((8, 8, 8))
        t[4, 4, 4] = 100.0
        t2 = eq.step(t, eq.stable_dt())
        assert t2[4, 4, 4] < 100.0
        assert t2[3, 4, 4] > 0.0
        # adiabatic walls: energy conserved
        assert np.isclose(t2.sum(), t.sum(), rtol=1e-12)

    def test_radiative_sink_cools(self):
        eq = EnergyEquation(dx=(0.1,) * 3, conductivity=0.0)
        t = np.full((4, 4, 4), 500.0)
        divq = np.full_like(t, 10.0)  # net emission everywhere
        t2 = eq.step(t, 0.01, divq=divq)
        assert (t2 < 500.0).all()
        assert np.allclose(t2, 500.0 - 0.01 * 10.0)

    def test_heat_source_warms(self):
        eq = EnergyEquation(dx=(0.1,) * 3, conductivity=0.0)
        t = np.zeros((4, 4, 4))
        t2 = eq.step(t, 0.1, heat_source=np.full_like(t, 5.0))
        assert np.allclose(t2, 0.5)

    def test_advection_moves_heat(self):
        eq = EnergyEquation(dx=(1.0,) * 3, conductivity=0.0, bc="periodic")
        t = np.zeros((8, 8, 8))
        t[2, :, :] = 1.0
        vel = (np.ones_like(t), np.zeros_like(t), np.zeros_like(t))
        t2 = eq.step(t, 0.5, velocity=vel)
        assert t2[3].mean() > t[3].mean()

    def test_stable_dt_bounds(self):
        eq = EnergyEquation(dx=(0.1,) * 3, conductivity=1.0)
        v = (np.full((4, 4, 4), 10.0),) * 3
        assert eq.stable_dt(v) <= 0.4 * 0.1 / 10.0
        assert eq.stable_dt() <= 0.4 * 0.1 ** 2 / 6.0

    def test_validation(self):
        with pytest.raises(ReproError):
            EnergyEquation(dx=(0.1,) * 3, rho_cv=0.0)
        eq = EnergyEquation(dx=(0.1,) * 3)
        with pytest.raises(ReproError):
            eq.step(np.zeros((2, 2, 2)), dt=0.0)


class TestBoilerScenario:
    def test_temperature_profile(self):
        sc = BoilerScenario(resolution=16)
        level = sc.grid().finest_level
        t = sc.temperature_field(level)
        assert t.max() <= sc.peak_temperature
        assert t.min() >= sc.ambient_temperature
        # hottest near the axis at 1/3 height
        peak = np.unravel_index(t.argmax(), t.shape)
        assert 6 <= peak[0] <= 9 and 6 <= peak[1] <= 9

    def test_kappa_tracks_flame(self):
        sc = BoilerScenario(resolution=16)
        level = sc.grid().finest_level
        t = sc.temperature_field(level)
        k = sc.kappa_field(level)
        assert np.unravel_index(k.argmax(), k.shape) == np.unravel_index(
            t.argmax(), t.shape
        )
        assert k.min() >= sc.soot_kappa_floor

    def test_radiative_properties_bundle(self):
        sc = BoilerScenario(resolution=8)
        level = sc.grid().finest_level
        props = sc.radiative_properties(level)
        assert props.interior.extent == (8, 8, 8)
        assert (props.interior_view("sigma_t4") > 0).all()

    def test_velocity_axial_jet(self):
        sc = BoilerScenario(resolution=16)
        level = sc.grid().finest_level
        u, v, w = sc.velocity_field(level)
        assert w[8, 8, 8] > w[0, 0, 8]  # jet on the axis
        assert abs(u[8, 8, 8]) < 0.05   # little swirl at the axis

    def test_validation(self):
        with pytest.raises(ReproError):
            BoilerScenario(peak_temperature=100.0, ambient_temperature=600.0)


class TestCoupledSimulation:
    @pytest.fixture(scope="class")
    def result(self):
        sim = CoupledSimulation(
            BoilerScenario(resolution=16),
            rays_per_cell=4,
            radiation_interval=3,
            advect=False,
        )
        return sim.run(9)

    def test_radiation_cadence(self, result):
        assert result.radiation_solves == 3  # steps 0, 3, 6

    def test_net_radiative_cooling(self, result):
        """Hot gas, cooler walls: the domain loses energy overall."""
        h = result.mean_temperature_history
        assert h[-1] < h[0]

    def test_flame_core_cools_fastest(self, result):
        sc = BoilerScenario(resolution=16)
        t0 = sc.temperature_field(sc.grid().finest_level)
        cooled = t0 - result.temperature
        core = np.unravel_index(t0.argmax(), t0.shape)
        assert cooled[core] > np.percentile(cooled, 90) * 0.5
        assert cooled[core] > 0

    def test_divq_positive_in_core(self, result):
        sc = BoilerScenario(resolution=16)
        t0 = sc.temperature_field(sc.grid().finest_level)
        core = np.unravel_index(t0.argmax(), t0.shape)
        assert result.divq[core] > 0

    def test_validation(self):
        with pytest.raises(ReproError):
            CoupledSimulation(radiation_interval=0)
