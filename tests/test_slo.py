"""Tests for SLO monitoring: P² streaming quantile accuracy, endpoint
error accounting, policy breach evaluation, the status dashboard, and
load shedding through the service when a policy is configured."""

import numpy as np
import pytest

from repro.perf.slo import (
    EndpointStats,
    P2Quantile,
    SloMonitor,
    SloPolicy,
    format_status,
)
from repro.util.errors import PerfError


class TestP2Quantile:
    def test_rejects_degenerate_q(self):
        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(PerfError):
                P2Quantile(q)

    def test_exact_below_five_observations(self):
        sketch = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            sketch.observe(v)
        assert sketch.value == 2.0

    def test_empty_sketch_has_no_value(self):
        assert P2Quantile(0.5).value is None

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_tracks_numpy_on_uniform_stream(self, q):
        rng = np.random.default_rng(7)
        data = rng.uniform(0.0, 1.0, 5000)
        sketch = P2Quantile(q)
        for v in data:
            sketch.observe(v)
        exact = np.quantile(data, q)
        assert abs(sketch.value - exact) < 0.02

    def test_tracks_numpy_on_heavy_tail(self):
        rng = np.random.default_rng(11)
        data = rng.lognormal(0.0, 1.0, 5000)
        sketch = P2Quantile(0.99)
        for v in data:
            sketch.observe(v)
        exact = np.quantile(data, 0.99)
        assert abs(sketch.value - exact) / exact < 0.15

    def test_constant_stream(self):
        sketch = P2Quantile(0.95)
        for _ in range(100):
            sketch.observe(4.0)
        assert sketch.value == 4.0


class TestEndpointStats:
    def test_errors_do_not_pollute_latency(self):
        ep = EndpointStats("solve")
        for _ in range(20):
            ep.observe(1.0)
        for _ in range(5):
            ep.observe(0.0, error=True)
        d = ep.as_dict()
        assert d["requests"] == 25
        assert d["errors"] == 5
        assert d["error_rate"] == pytest.approx(0.2)
        assert d["p99_s"] == pytest.approx(1.0)  # rejections excluded


class TestSloMonitor:
    def test_healthy_monitor_reports_no_breaches(self):
        mon = SloMonitor(SloPolicy())
        for _ in range(50):
            mon.observe("solve", 0.01)
        assert mon.breaches() == []
        assert not mon.degraded()

    def test_queue_depth_breach(self):
        mon = SloMonitor(SloPolicy(max_queue_depth=4))
        mon.set_queue_depth(9)
        assert any("queue depth" in b for b in mon.breaches())

    def test_p99_latency_breach(self):
        mon = SloMonitor(SloPolicy(p99_latency_s=0.1, min_requests=10))
        for _ in range(50):
            mon.observe("solve", 5.0)
        assert any("p99" in b for b in mon.breaches())

    def test_error_budget_burn_breach(self):
        mon = SloMonitor(SloPolicy(error_budget=0.02, burn_alarm=1.0))
        for i in range(100):
            mon.observe("solve", 0.01, error=(i % 10 == 0))  # 10% errors
        assert mon.burn_rate("solve") == pytest.approx(5.0)
        assert any("burn" in b for b in mon.breaches())

    def test_min_requests_gates_verdicts(self):
        mon = SloMonitor(SloPolicy(p99_latency_s=0.001, min_requests=10))
        for _ in range(5):
            mon.observe("solve", 9.9)
        assert mon.breaches() == []  # sample too small to convict

    def test_degraded_clears_when_breach_clears(self):
        mon = SloMonitor(SloPolicy(max_queue_depth=4))
        mon.set_queue_depth(10)
        assert mon.degraded()
        mon.set_queue_depth(0)
        assert not mon.degraded()

    def test_snapshot_schema_and_atomic_write(self, tmp_path):
        import json

        mon = SloMonitor(SloPolicy())
        for _ in range(12):
            mon.observe("solve", 0.02)
        mon.write(tmp_path / "status.json")
        snap = json.loads((tmp_path / "status.json").read_text())
        assert {"uptime_s", "queue_depth", "degraded", "breaches",
                "policy", "endpoints"} <= set(snap)
        assert snap["endpoints"]["solve"]["p99_s"] > 0


class TestFormatStatus:
    def test_renders_endpoints_and_breaches(self):
        mon = SloMonitor(SloPolicy(max_queue_depth=2))
        mon.set_queue_depth(5)
        for _ in range(20):
            mon.observe("solve", 0.5)
        text = format_status(mon.snapshot())
        assert "DEGRADED" in text
        assert "BREACH" in text
        assert "solve" in text

    def test_renders_quiet_monitor(self):
        text = format_status(SloMonitor().snapshot())
        assert "ok" in text
        assert "no endpoint traffic" in text


class TestServiceShedding:
    def test_degraded_service_sheds_submits(self):
        from repro.service import RadiationService, ServiceConfig
        from repro.ups import GridSpec, ProblemSpec, RMCRTSpec
        from repro.util.errors import ServiceError

        spec = ProblemSpec(
            grid=GridSpec(resolution=8, levels=1),
            rmcrt=RMCRTSpec(n_divq_rays=1, random_seed=0),
        )
        policy = SloPolicy(error_budget=0.01, burn_alarm=1.0, min_requests=5)
        with RadiationService(ServiceConfig(workers=1, slo_policy=policy)) as svc:
            # burn the error budget far past the alarm
            for _ in range(20):
                svc.slo.observe("solve", 0.0, error=True)
            assert svc.slo.degraded()
            with pytest.raises(ServiceError, match="shedding"):
                svc.submit(spec)
            assert svc.stats()["shed"] >= 1
            assert svc.stats()["degraded"] is True

    def test_no_policy_means_no_shedding(self):
        from repro.service import RadiationService, ServiceClient, ServiceConfig
        from repro.ups import GridSpec, ProblemSpec, RMCRTSpec

        spec = ProblemSpec(
            grid=GridSpec(resolution=8, levels=1),
            rmcrt=RMCRTSpec(n_divq_rays=1, random_seed=0),
        )
        with RadiationService(ServiceConfig(workers=1)) as svc:
            # even with a synthetic breach, no policy -> no enforcement
            svc.slo.set_queue_depth(10_000)
            result = ServiceClient(svc).solve(spec, timeout=60)
            assert result.divq is not None
