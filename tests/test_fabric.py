"""repro.fabric: hashring, spool protocol, router, supervisor,
autoscaler, aggregation, and the kill-one-shard drill."""

import json
import time

import numpy as np
import pytest

from repro.fabric.autoscaler import AutoscalePolicy, Autoscaler
from repro.fabric.fabric import aggregate_status, format_fleet, run_drill
from repro.fabric.hashring import rendezvous_rank, rendezvous_shard
from repro.fabric.router import Router
from repro.fabric.shard import ShardHandle
from repro.fabric.supervisor import Fleet, FleetSupervisor
from repro.perf import tracectx
from repro.perf.tsdb import TimeSeriesStore
from repro.service.spool import (
    claim_request,
    embed_ctx,
    extract_ctx,
    forward_results,
    move_requests,
    read_result_meta,
    release_claims,
    write_request,
    write_result,
)
from repro.ups import (
    GridSpec,
    ProblemSpec,
    RMCRTSpec,
    parse_ups,
    scene_fingerprint,
    spec_fingerprint,
    spec_to_ups,
)
from repro.util.errors import ReproError


def spec_for(resolution, seed=0, levels=1, **kw):
    return ProblemSpec(
        grid=GridSpec(resolution=resolution, levels=levels, **kw),
        rmcrt=RMCRTSpec(n_divq_rays=1, random_seed=seed),
    )


# ----------------------------------------------------------------------
# rendezvous hashing
# ----------------------------------------------------------------------
class TestHashring:
    def test_deterministic_and_total(self):
        ids = [f"shard{i}" for i in range(5)]
        keys = [f"scene-{i}" for i in range(200)]
        first = {k: rendezvous_shard(k, ids) for k in keys}
        # same answer on every call and for any presentation order
        assert first == {k: rendezvous_shard(k, list(reversed(ids))) for k in keys}
        # and every shard owns a reasonable slice of the keyspace
        owned = {s: sum(1 for v in first.values() if v == s) for s in ids}
        assert all(owned[s] > 0 for s in ids)

    def test_removal_only_remaps_the_dead_shards_keys(self):
        ids = [f"shard{i}" for i in range(4)]
        keys = [f"scene-{i}" for i in range(300)]
        before = {k: rendezvous_shard(k, ids) for k in keys}
        survivors = [s for s in ids if s != "shard2"]
        after = {k: rendezvous_shard(k, survivors) for k in keys}
        for k in keys:
            if before[k] != "shard2":
                assert after[k] == before[k]  # unaffected keys stay put
            else:
                # orphaned keys land on their original second choice
                assert after[k] == rendezvous_rank(k, ids)[1]

    def test_growth_steals_a_slice_not_the_world(self):
        ids = ["shard0", "shard1", "shard2"]
        keys = [f"scene-{i}" for i in range(300)]
        before = {k: rendezvous_shard(k, ids) for k in keys}
        after = {k: rendezvous_shard(k, ids + ["shard3"]) for k in keys}
        moved = sum(1 for k in keys if before[k] != after[k])
        assert all(after[k] == "shard3" for k in keys if before[k] != after[k])
        assert 0 < moved < len(keys) // 2  # ~1/4 expected, never a reshuffle

    def test_empty_fleet_raises(self):
        with pytest.raises(ReproError, match="empty shard set"):
            rendezvous_shard("x", [])


# ----------------------------------------------------------------------
# spool wire protocol
# ----------------------------------------------------------------------
class TestSpoolProtocol:
    def test_ctx_rides_in_band_and_parses_clean(self):
        ctx = tracectx.new_trace()
        text = spec_to_ups(spec_for(8))
        carried = embed_ctx(text, ctx)
        body, got = extract_ctx(carried)
        assert got == ctx
        # the comment is transparent to the UPS parser on both forms
        assert spec_fingerprint(parse_ups(carried)) == spec_fingerprint(
            parse_ups(body)
        )

    def test_malformed_ctx_is_dropped_not_fatal(self):
        body, got = extract_ctx("<!-- repro:ctx {broken json} -->\n<x/>")
        assert got is None and body == "<x/>"

    def test_claim_has_exactly_one_winner(self, tmp_path):
        inbox = tmp_path / "inbox"
        path = write_request(inbox, "t1", "<x/>")
        a, b = tmp_path / "claimed" / "a", tmp_path / "claimed" / "b"
        a.mkdir(parents=True)
        b.mkdir(parents=True)
        won = claim_request(path, a)
        lost = claim_request(path, b)
        assert won is not None and won.read_text() == "<x/>"
        assert lost is None
        assert not path.exists()

    def test_release_claims_returns_work_to_inbox(self, tmp_path):
        inbox = tmp_path / "inbox"
        claim = tmp_path / "claimed" / "s0"
        claim.mkdir(parents=True)
        for i in range(3):
            (claim / f"t{i}.ups").write_text("<x/>")
        assert release_claims(claim, inbox) == 3
        assert sorted(p.name for p in inbox.glob("*.ups")) == [
            "t0.ups", "t1.ups", "t2.ups",
        ]

    def test_move_requests_respects_limit(self, tmp_path):
        src, dst = tmp_path / "a", tmp_path / "b"
        src.mkdir()
        for i in range(5):
            (src / f"t{i}.ups").write_text("<x/>")
        moved = move_requests(src, dst, limit=2)
        assert len(moved) == 2
        assert sum(1 for _ in src.glob("*.ups")) == 3
        assert sum(1 for _ in dst.glob("*.ups")) == 2

    def test_result_roundtrip_and_forwarding(self, tmp_path):
        out_a, out_b = tmp_path / "a", tmp_path / "b"
        out_a.mkdir()
        write_result(out_a, "t9", error="boom")
        assert read_result_meta(out_a, "t9")["error"] == "boom"
        assert forward_results(out_a, out_b) == 1
        assert read_result_meta(out_b, "t9")["error"] == "boom"
        assert read_result_meta(out_a, "t9") is None


class TestSpecToUps:
    def test_roundtrips_every_field(self):
        specs = [
            spec_for(8, seed=3),
            spec_for(12, seed=5, levels=2, refinement_ratio=2, patch_size=6),
            ProblemSpec(
                grid=GridSpec(resolution=16, levels=2, refinement_ratio=2,
                              patch_size=8),
                rmcrt=RMCRTSpec(n_divq_rays=7, threshold=1e-4, halo=2,
                                allow_reflect=True, cc_rays=True,
                                random_seed=42),
            ),
        ]
        for spec in specs:
            back = parse_ups(spec_to_ups(spec))
            assert back == spec
            assert spec_fingerprint(back) == spec_fingerprint(spec)


# ----------------------------------------------------------------------
# router over a processless fleet (pure directory protocol)
# ----------------------------------------------------------------------
def make_fleet(tmp_path, n=2):
    fleet = Fleet()
    for i in range(n):
        shard = ShardHandle(f"shard{i}", tmp_path / "shards" / f"shard{i}")
        shard.paths.ensure()
        fleet.add(shard)
    return fleet


class TestRouter:
    def test_routes_by_scene_affinity(self, tmp_path):
        fleet = make_fleet(tmp_path)
        router = Router(tmp_path, fleet)
        specs = [spec_for(r, seed=s) for r in (8, 9, 10, 11) for s in (0, 1)]
        for i, spec in enumerate(specs):
            write_request(router.inbox, f"t{i}", spec_to_ups(spec))
        assert router.route_once() == len(specs)
        ids = fleet.routable()
        for i, spec in enumerate(specs):
            home = rendezvous_shard(scene_fingerprint(spec), ids)
            assert (fleet.shards[home].paths.inbox / f"t{i}.ups").exists()
        # same scene always lands on the same shard regardless of seed
        homes = {scene_fingerprint(s): rendezvous_shard(scene_fingerprint(s), ids)
                 for s in specs}
        assert len(homes) == 4

    def test_unparsable_request_is_answered_not_shipped(self, tmp_path):
        fleet = make_fleet(tmp_path)
        router = Router(tmp_path, fleet)
        write_request(router.inbox, "bad", "this is not xml")
        assert router.route_once() == 0
        meta = read_result_meta(router.outbox, "bad")
        assert meta is not None and meta["error"]
        assert router.rejected == 1

    def test_steal_moves_half_the_gap_to_the_idlest(self, tmp_path):
        fleet = make_fleet(tmp_path)
        busy = fleet.shards["shard0"]
        for i in range(6):
            (busy.paths.inbox / f"t{i}.ups").write_text("<x/>")
        router = Router(tmp_path, fleet)
        moved = router.steal_once(spread=2)
        assert len(moved) == 3  # half of the 6-0 gap
        assert fleet.shards["shard1"].paths.inbox_depth() == 3

    def test_no_steal_within_spread(self, tmp_path):
        fleet = make_fleet(tmp_path)
        (fleet.shards["shard0"].paths.inbox / "t0.ups").write_text("<x/>")
        router = Router(tmp_path, fleet)
        assert router.steal_once(spread=2) == []

    def test_collect_relays_results_to_front_outbox(self, tmp_path):
        fleet = make_fleet(tmp_path)
        router = Router(tmp_path, fleet)
        write_result(fleet.shards["shard1"].paths.outbox, "t7", error="x")
        assert router.collect_once() == 1
        assert read_result_meta(router.outbox, "t7") is not None


# ----------------------------------------------------------------------
# supervisor: death detection and zero-loss re-homing (no processes)
# ----------------------------------------------------------------------
class TestSupervisor:
    def test_stale_heartbeat_detects_death(self, tmp_path):
        fleet = make_fleet(tmp_path, n=1)
        sup = FleetSupervisor(fleet, tmp_path / "shards", heartbeat_timeout_s=5.0)
        shard = fleet.shards["shard0"]
        now = time.time()
        shard.paths.status.write_text(json.dumps({"heartbeat_t": now - 60}))
        assert sup.dead_shards(now) == ["shard0"]
        # a fresh heartbeat clears the verdict
        shard.paths.status.write_text(json.dumps({"heartbeat_t": now}))
        assert sup.dead_shards(now) == []

    def test_fresh_spawn_grace_overrides_stale_status(self, tmp_path):
        fleet = make_fleet(tmp_path, n=1)
        sup = FleetSupervisor(fleet, tmp_path / "shards", heartbeat_timeout_s=5.0)
        shard = fleet.shards["shard0"]
        now = time.time()
        # predecessor's stale file is still on disk, but the shard was
        # just (re)spawned — it must not be culled before its first beat
        shard.paths.status.write_text(json.dumps({"heartbeat_t": now - 60}))
        shard.spawned_at = now - 1.0
        assert sup.dead_shards(now) == []

    def test_rehome_moves_claims_inbox_journal_and_results(self, tmp_path):
        fleet = make_fleet(tmp_path, n=2)
        front_out = tmp_path / "outbox"
        sup = FleetSupervisor(
            fleet, tmp_path / "shards", front_outbox=front_out
        )
        dead = fleet.shards["shard0"]
        claim = dead.paths.claim_dir("shard0")
        claim.mkdir(parents=True)
        (claim / "c1.ups").write_text("<x/>")
        (dead.paths.inbox / "q1.ups").write_text("<x/>")
        (dead.paths.journal / "ab12.json").write_text("{}")
        write_result(dead.paths.outbox, "done1", error=None)
        record = sup._rehome(dead, reason="died")
        survivor = fleet.shards["shard1"]
        assert record["claims_released"] == 1
        assert record["requests_rehomed"] == 2  # the claim + the queued one
        assert record["journal_rehomed"] == 1
        assert record["target"] == "shard1"
        assert survivor.paths.inbox_depth() == 2
        assert (survivor.paths.journal / "ab12.json").exists()
        assert read_result_meta(front_out, "done1") is not None
        assert dead.paths.inbox_depth() == 0

    def test_rehome_without_survivors_stays_in_place(self, tmp_path):
        fleet = make_fleet(tmp_path, n=1)
        sup = FleetSupervisor(fleet, tmp_path / "shards")
        lone = fleet.shards["shard0"]
        claim = lone.paths.claim_dir("shard0")
        claim.mkdir(parents=True)
        (claim / "c1.ups").write_text("<x/>")
        record = sup._rehome(lone, reason="died")
        # no survivor: the claim went back to its own inbox for the
        # respawned incarnation's warm-restart sweep
        assert record["target"] is None
        assert record["claims_released"] == 1
        assert lone.paths.inbox_depth() == 1

    def test_next_id_never_reuses(self, tmp_path):
        fleet = make_fleet(tmp_path, n=2)
        fleet._next_index = 0
        assert fleet.next_id() == "shard2"
        assert fleet.next_id() == "shard3"


# ----------------------------------------------------------------------
# autoscaler (explicit clock, pure decisions over tsdb history)
# ----------------------------------------------------------------------
def make_autoscaler(tmp_path, **kw):
    policy = AutoscalePolicy(
        min_shards=1, max_shards=4, backlog_high=4.0, backlog_low=0.5,
        burn_high=1.0, sustain_s=2.0, idle_retire_s=4.0, cooldown_s=5.0,
        min_samples=3, **kw,
    )
    return Autoscaler(TimeSeriesStore(tmp_path / "tsdb", rank=0), policy)


class TestAutoscaler:
    def test_sustained_backlog_buys_a_shard(self, tmp_path):
        a = make_autoscaler(tmp_path)
        t = 1000.0
        for i in range(5):
            a.observe(t + i * 0.5, shards=1, backlog=10, worst_burn=0.0,
                      degraded=0)
        desired, reason = a.decide(t + 2.0, live=1)
        assert desired == 2 and "backlog" in reason

    def test_one_spike_does_not_scale(self, tmp_path):
        a = make_autoscaler(tmp_path)
        t = 1000.0
        for i, backlog in enumerate([0, 0, 20, 0, 0]):
            a.observe(t + i * 0.5, shards=1, backlog=backlog, worst_burn=0.0,
                      degraded=0)
        desired, reason = a.decide(t + 2.0, live=1)
        assert desired == 1 and reason is None

    def test_sustained_burn_buys_a_shard(self, tmp_path):
        a = make_autoscaler(tmp_path)
        t = 1000.0
        for i in range(5):
            a.observe(t + i * 0.5, shards=2, backlog=0, worst_burn=2.5,
                      degraded=1)
        desired, reason = a.decide(t + 2.0, live=2)
        assert desired == 3 and "burn" in reason

    def test_sustained_idle_retires_a_shard(self, tmp_path):
        a = make_autoscaler(tmp_path)
        t = 1000.0
        for i in range(10):
            a.observe(t + i * 0.5, shards=3, backlog=0, worst_burn=0.0,
                      degraded=0)
        desired, reason = a.decide(t + 4.5, live=3)
        assert desired == 2 and "backlog" in reason

    def test_idle_but_degraded_holds(self, tmp_path):
        a = make_autoscaler(tmp_path)
        t = 1000.0
        for i in range(10):
            a.observe(t + i * 0.5, shards=2, backlog=0, worst_burn=0.0,
                      degraded=1)
        desired, reason = a.decide(t + 4.5, live=2)
        assert desired == 2 and reason is None

    def test_cooldown_spaces_actions(self, tmp_path):
        a = make_autoscaler(tmp_path)
        t = 1000.0
        for i in range(20):
            a.observe(t + i * 0.5, shards=1, backlog=10, worst_burn=0.0,
                      degraded=0)
        desired, _ = a.decide(t + 3.0, live=1)
        assert desired == 2
        desired, reason = a.decide(t + 4.0, live=2)  # inside cooldown
        assert desired == 2 and reason is None
        desired, _ = a.decide(t + 9.0, live=2)  # cooldown elapsed, still hot
        assert desired == 3

    def test_ceiling_and_floor(self, tmp_path):
        a = make_autoscaler(tmp_path)
        t = 1000.0
        for i in range(5):
            a.observe(t + i * 0.5, shards=4, backlog=100, worst_burn=5.0,
                      degraded=4)
        desired, reason = a.decide(t + 2.0, live=4)
        assert desired == 4 and reason is None  # at max_shards
        desired, reason = a.decide(t + 2.0, live=0)
        assert desired == 1  # floor


# ----------------------------------------------------------------------
# fleet status aggregation
# ----------------------------------------------------------------------
def shard_status(heartbeat_age=0.0, degraded=False, exited=False, served=3):
    return {
        "degraded": degraded,
        "breaches": ["p99 too slow"] if degraded else [],
        "queue_depth": 0,
        "heartbeat_t": time.time() - heartbeat_age,
        "endpoints": {"solve": {"requests": served, "p99_s": 0.05}},
        "shard": {"shard_id": "x", "served": served, "inbox_depth": 0,
                  "claimed_depth": 0, "exited": exited},
    }


class TestAggregateStatus:
    def write(self, tmp_path, sid, doc):
        d = tmp_path / "shards" / sid
        d.mkdir(parents=True, exist_ok=True)
        (d / "status.json").write_text(json.dumps(doc))

    def test_healthy_fleet_is_ok(self, tmp_path):
        self.write(tmp_path, "shard0", shard_status())
        self.write(tmp_path, "shard1", shard_status())
        doc = aggregate_status(tmp_path)
        assert doc["state"] == "ok"
        assert doc["shards"]["shard0"]["state"] == "ok"

    def test_worst_shard_drives_the_verdict(self, tmp_path):
        self.write(tmp_path, "shard0", shard_status())
        self.write(tmp_path, "shard1", shard_status(degraded=True))
        doc = aggregate_status(tmp_path)
        assert doc["state"] == "degraded"
        assert doc["shards"]["shard1"]["state"] == "degraded"

    def test_stale_heartbeat_without_exit_is_dead(self, tmp_path):
        self.write(tmp_path, "shard0", shard_status(heartbeat_age=120.0))
        doc = aggregate_status(tmp_path)
        assert doc["shards"]["shard0"]["state"] == "dead"
        assert doc["state"] == "degraded"

    def test_clean_exit_is_not_a_death(self, tmp_path):
        self.write(
            tmp_path, "shard0", shard_status(heartbeat_age=120.0, exited=True)
        )
        doc = aggregate_status(tmp_path)
        assert doc["shards"]["shard0"]["state"] == "exited"
        assert doc["state"] == "ok"

    def test_format_fleet_renders_every_shard(self, tmp_path):
        self.write(tmp_path, "shard0", shard_status())
        self.write(tmp_path, "shard1", shard_status(degraded=True))
        text = format_fleet(aggregate_status(tmp_path))
        assert "shard0" in text and "shard1" in text
        assert "DEGRADED" in text and "BREACH" in text


# ----------------------------------------------------------------------
# the full-system drill (spawns real serve subprocesses)
# ----------------------------------------------------------------------
class TestDrill:
    def test_kill_one_shard_loses_nothing_and_answers_exactly(self, tmp_path):
        report = run_drill(
            tmp_path / "fab", shards=2, repeats=1, kill=True, timeout_s=240.0
        )
        assert report["lost"] == 0
        assert report["errors"] == 0
        assert report["byte_identical"], report["mismatched"]
        assert report["recoveries"], "the SIGKILL was never noticed"
        rec = report["recoveries"][0]
        assert rec["shard"] == report["killed"] and rec["respawned"]
        # the fleet visibly degraded and then came back
        assert {"recovering", "degraded"} & set(report["states_observed"])
        assert report["final_state"] == "ok"
        assert report["ok"]
        # the drill report round-trips through the status aggregator
        doc = aggregate_status(tmp_path / "fab")
        assert set(doc["shards"]) == {"shard0", "shard1"}
