"""Tests for the simulated MPI fabric."""

import threading

import numpy as np
import pytest

from repro.runtime.mpi import ANY_SOURCE, ANY_TAG, SimMPI
from repro.util.errors import CommError


class TestBasics:
    def test_send_recv(self):
        fabric = SimMPI(2)
        a, b = fabric.comms()
        a.send({"x": 1}, dest=1, tag=7)
        assert b.recv(source=0, tag=7) == {"x": 1}

    def test_isend_completes_eagerly(self):
        fabric = SimMPI(2)
        req = fabric.comm(0).isend(b"hi", dest=1, tag=0)
        assert req.test()

    def test_irecv_before_send(self):
        fabric = SimMPI(2)
        a, b = fabric.comms()
        req = b.irecv(source=0, tag=3)
        assert not req.test()
        a.send("late", dest=1, tag=3)
        assert req.test()
        assert req.wait() == "late"

    def test_irecv_after_send(self):
        fabric = SimMPI(2)
        a, b = fabric.comms()
        a.send("early", dest=1, tag=3)
        req = b.irecv(source=0, tag=3)
        assert req.test() and req.data == "early"

    def test_numpy_payload_nbytes(self):
        fabric = SimMPI(2)
        data = np.zeros(100, dtype=np.float64)
        fabric.comm(0).isend(data, dest=1, tag=0)
        req = fabric.comm(1).irecv(source=0, tag=0)
        assert req.nbytes == 800
        assert fabric.stats.bytes == 800

    def test_self_send(self):
        fabric = SimMPI(1)
        c = fabric.comm(0)
        c.send(5, dest=0, tag=1)
        assert c.recv(source=0, tag=1) == 5


class TestMatching:
    def test_tag_selectivity(self):
        fabric = SimMPI(2)
        a, b = fabric.comms()
        a.send("one", dest=1, tag=1)
        a.send("two", dest=1, tag=2)
        assert b.recv(source=0, tag=2) == "two"
        assert b.recv(source=0, tag=1) == "one"

    def test_fifo_per_source_tag(self):
        fabric = SimMPI(2)
        a, b = fabric.comms()
        for i in range(5):
            a.send(i, dest=1, tag=9)
        assert [b.recv(source=0, tag=9) for _ in range(5)] == list(range(5))

    def test_any_source(self):
        fabric = SimMPI(3)
        c = fabric.comm(2)
        fabric.comm(1).send("from1", dest=2, tag=0)
        req = c.irecv(source=ANY_SOURCE, tag=0)
        assert req.wait() == "from1"
        assert req.matched_source == 1

    def test_any_tag(self):
        fabric = SimMPI(2)
        fabric.comm(0).send("x", dest=1, tag=42)
        req = fabric.comm(1).irecv(source=0, tag=ANY_TAG)
        assert req.wait() == "x"
        assert req.matched_tag == 42

    def test_probe(self):
        fabric = SimMPI(2)
        a, b = fabric.comms()
        assert not b.probe(source=0, tag=5)
        a.send("z", dest=1, tag=5)
        assert b.probe(source=0, tag=5)
        assert b.probe()  # wildcards
        b.recv(source=0, tag=5)
        assert not b.probe()


class TestErrorsAndDiagnostics:
    def test_bad_rank(self):
        with pytest.raises(CommError):
            SimMPI(0)
        fabric = SimMPI(2)
        with pytest.raises(CommError):
            fabric.comm(5)
        with pytest.raises(CommError):
            fabric.comm(0).isend(1, dest=9)
        with pytest.raises(CommError):
            fabric.comm(0).irecv(source=9)

    def test_negative_send_tag_rejected(self):
        fabric = SimMPI(2)
        with pytest.raises(CommError):
            fabric.comm(0).isend(1, dest=1, tag=-3)

    def test_wait_timeout(self):
        fabric = SimMPI(2)
        req = fabric.comm(1).irecv(source=0, tag=0)
        with pytest.raises(CommError):
            req.wait(timeout=0.01)

    def test_quiescence(self):
        fabric = SimMPI(2)
        assert fabric.quiescent()
        fabric.comm(0).isend(1, dest=1, tag=0)
        assert not fabric.quiescent()
        assert fabric.pending_messages(1) == 1
        fabric.comm(1).recv(source=0, tag=0)
        assert fabric.quiescent()

    def test_outstanding_recvs(self):
        fabric = SimMPI(2)
        fabric.comm(1).irecv(source=0, tag=0)
        assert fabric.outstanding_recvs(1) == 1

    def test_stats_accumulate(self):
        fabric = SimMPI(3)
        fabric.comm(0).isend(b"xxxx", dest=1, tag=0)
        fabric.comm(2).isend(b"yy", dest=1, tag=0)
        assert fabric.stats.messages == 2
        assert fabric.stats.bytes == 6
        assert fabric.stats.per_rank_sent == {0: 1, 2: 1}


class TestThreaded:
    def test_concurrent_senders_one_receiver(self):
        fabric = SimMPI(5)
        recv = fabric.comm(0)
        n_each = 200

        def sender(rank):
            c = fabric.comm(rank)
            for i in range(n_each):
                c.isend((rank, i), dest=0, tag=0)

        threads = [threading.Thread(target=sender, args=(r,)) for r in range(1, 5)]
        for t in threads:
            t.start()
        got = []
        for _ in range(4 * n_each):
            got.append(recv.recv(source=ANY_SOURCE, tag=0, timeout=10))
        for t in threads:
            t.join()
        assert len(got) == 4 * n_each
        # per-source FIFO preserved even under concurrency
        by_src = {}
        for rank, i in got:
            by_src.setdefault(rank, []).append(i)
        for rank, seq in by_src.items():
            assert seq == sorted(seq)

    def test_concurrent_recv_posting(self):
        fabric = SimMPI(2)
        send, recv = fabric.comm(0), fabric.comm(1)
        n = 400
        reqs = []
        lock = threading.Lock()

        def poster():
            for _ in range(n // 4):
                r = recv.irecv(source=0, tag=ANY_TAG)
                with lock:
                    reqs.append(r)

        posters = [threading.Thread(target=poster) for _ in range(4)]
        for t in posters:
            t.start()
        for i in range(n):
            send.isend(i, dest=1, tag=i)
        for t in posters:
            t.join()
        # every message eventually matches exactly one request
        vals = sorted(r.wait(timeout=10) for r in reqs)
        assert vals == list(range(n))
