"""Tests for causal trace propagation: TraceContext semantics, stamping
into spans, propagation through the simulated MPI fabric (recv spans
carry the *sender's* trace id), and the cross-rank trace merge with its
flow-event pairing."""

import json
import threading

import pytest

from repro.perf import tracectx
from repro.perf.merge import merge_traces, validate_chrome_trace, write_rank_traces
from repro.perf.profile import run_profile
from repro.perf.tracer import SpanTracer


# ----------------------------------------------------------------------
# context semantics
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_new_trace_ids_are_unique(self):
        a, b = tracectx.new_trace(), tracectx.new_trace()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_child_keeps_trace_id_and_parents_to_span(self):
        root = tracectx.new_trace()
        kid = root.child()
        assert kid.trace_id == root.trace_id
        assert kid.parent_id == root.span_id
        assert kid.span_id != root.span_id

    def test_round_trips_through_dict(self):
        ctx = tracectx.new_trace().child()
        assert tracectx.TraceContext.from_dict(ctx.as_dict()) == ctx

    def test_use_installs_and_restores(self):
        assert tracectx.current() is None
        ctx = tracectx.new_trace()
        with tracectx.use(ctx):
            assert tracectx.current() is ctx
            inner = ctx.child()
            with tracectx.use(inner):
                assert tracectx.current() is inner
            assert tracectx.current() is ctx
        assert tracectx.current() is None

    def test_use_none_is_passthrough(self):
        with tracectx.use(None) as got:
            assert got is None
            assert tracectx.current() is None

    def test_child_or_new_continues_ambient(self):
        root = tracectx.new_trace()
        with tracectx.use(root):
            assert tracectx.child_or_new().trace_id == root.trace_id
        fresh = tracectx.child_or_new()
        assert fresh.trace_id != root.trace_id
        assert fresh.parent_id is None

    def test_context_is_thread_local(self):
        ctx = tracectx.new_trace()
        seen = {}

        def peek():
            seen["other"] = tracectx.current()

        with tracectx.use(ctx):
            t = threading.Thread(target=peek)
            t.start()
            t.join()
        assert seen["other"] is None

    def test_stamp_prefers_existing_keys(self):
        ambient = tracectx.new_trace()
        with tracectx.use(ambient):
            args = tracectx.stamp({"trace_id": "sender-id"})
        # a recv span that recorded the sender's id must keep it
        assert args["trace_id"] == "sender-id"
        assert args["span_id"] == ambient.span_id

    def test_stamp_without_context_is_noop(self):
        assert tracectx.stamp({}) == {}


# ----------------------------------------------------------------------
# stamping through the tracer
# ----------------------------------------------------------------------
class TestTracerStamping:
    def test_spans_carry_ambient_context(self):
        tracer = SpanTracer(enabled=True)
        root = tracectx.new_trace()
        with tracectx.use(root):
            with tracer.span("work", cat="task"):
                pass
        (event,) = [e for e in tracer.events() if e["ph"] == "X"]
        assert event["args"]["trace_id"] == root.trace_id
        assert event["args"]["span_id"] == root.span_id


# ----------------------------------------------------------------------
# end-to-end: 2-rank run, merge, flow pairing
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def merged_run(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("merged")
    summary = run_profile(
        steps=1,
        resolution=12,
        rays_per_cell=2,
        num_ranks=2,
        trace_path=str(tmp / "trace.json"),
        metrics_path=str(tmp / "metrics.json"),
        merge=True,
        rank_trace_dir=str(tmp),
    )
    events = json.loads((tmp / "trace.json").read_text())
    return summary, events


class TestCausalMpiPropagation:
    def test_recv_spans_carry_a_send_trace_id(self, merged_run):
        _, events = merged_run
        sends = [
            e for e in events
            if e.get("ph") == "X" and e.get("name") == "comm.send"
        ]
        recvs = [
            e for e in events
            if e.get("ph") == "X" and e.get("name") == "comm.recv"
        ]
        assert sends and recvs
        send_traces = {e["args"]["trace_id"] for e in sends}
        for recv in recvs:
            assert recv["args"]["trace_id"] in send_traces, recv

    def test_connectivity_meets_the_bar(self, merged_run):
        summary, _ = merged_run
        stats = summary["merge_stats"]
        assert stats["flow_pairs"] > 0
        assert stats["connected_fraction"] >= 0.95

    def test_merged_trace_validates_with_paired_flows(self, merged_run):
        _, events = merged_run
        assert validate_chrome_trace(events) == []
        starts = {e["id"] for e in events if e.get("ph") == "s"}
        finishes = {e["id"] for e in events if e.get("ph") == "f"}
        assert starts and starts == finishes  # merge drops unpaired flows

    def test_task_spans_share_trace_with_their_sends(self, merged_run):
        _, events = merged_run
        task_traces = {
            e["args"]["trace_id"]
            for e in events
            if e.get("ph") == "X" and e.get("cat") == "task"
            and "trace_id" in e.get("args", {})
        }
        send_traces = {
            e["args"]["trace_id"]
            for e in events
            if e.get("ph") == "X" and e.get("name") == "comm.send"
        }
        assert send_traces <= task_traces


class TestMergeUnits:
    def test_merge_drops_unpaired_flow_events(self, tmp_path):
        tracer = SpanTracer(enabled=True)
        with tracer.span("t", cat="task", tid=0):
            tracer.flow_start(1, tid=0)
            tracer.flow_start(2, tid=0)  # never finished
        with tracer.span("r", cat="comm", tid=1):
            tracer.flow_finish(1, tid=1)
        paths = write_rank_traces(tracer.events(), 2, tmp_path)
        names = {p.name for p in paths}
        assert {"trace_rank0.json", "trace_rank1.json"} <= names
        events, stats = merge_traces(paths, out_path=tmp_path / "merged.json")
        assert stats["flow_pairs"] == 1
        assert stats["unmatched_flow_events"] == 1
        flow_ids = [str(e["id"]) for e in events if e.get("ph") in ("s", "f")]
        assert sorted(flow_ids) == ["1", "1"]

    def test_validate_flags_missing_keys(self):
        problems = validate_chrome_trace([{"name": "x", "ph": "X"}])
        assert problems


class TestMergeEdgeCases:
    """Degraded inputs the merge must survive: a receiver that died
    before finishing its flows, duplicate message ids, and zero-byte
    per-rank files."""

    def _span(self, name, tid, ts=0.0):
        return {
            "name": name, "ph": "X", "ts": ts, "dur": 5.0,
            "pid": 0, "tid": tid, "cat": "task", "args": {},
        }

    def _flow(self, fid, ph, tid, ts=1.0):
        return {
            "name": "msg", "ph": ph, "ts": ts, "pid": 0, "tid": tid,
            "cat": "flow", "id": fid, "args": {},
        }

    def test_unpaired_send_receiver_died(self, tmp_path):
        # rank 0 sent two messages; rank 1 only ever received one
        # (died before the second) — the dangling start is dropped
        # and reported as an unmatched *start*
        rank0 = [self._span("t", 0), self._flow("a", "s", 0), self._flow("b", "s", 0)]
        rank1 = [self._span("r", 1), self._flow("a", "f", 1, ts=3.0)]
        (tmp_path / "trace_rank0.json").write_text(json.dumps(rank0))
        (tmp_path / "trace_rank1.json").write_text(json.dumps(rank1))
        events, stats = merge_traces(
            sorted(tmp_path.glob("trace_rank*.json")),
            out_path=tmp_path / "merged.json",
        )
        assert stats["flow_pairs"] == 1
        assert stats["unmatched_flow_starts"] == 1
        assert stats["unmatched_flow_finishes"] == 0
        assert stats["unmatched_flow_events"] == 1
        assert validate_chrome_trace(events) == []

    def test_unpaired_finish_reported(self, tmp_path):
        rank0 = [self._span("r", 0), self._flow("ghost", "f", 0)]
        (tmp_path / "trace_rank0.json").write_text(json.dumps(rank0))
        _, stats = merge_traces([tmp_path / "trace_rank0.json"])
        assert stats["unmatched_flow_finishes"] == 1
        assert stats["flow_pairs"] == 0

    def test_duplicate_message_ids_pair_positionally(self, tmp_path):
        # the same flow id used twice on each side (id reuse across
        # timesteps): both pairs survive, nothing is dropped
        rank0 = [self._span("t", 0)] + [self._flow("dup", "s", 0, ts=t) for t in (1.0, 2.0)]
        rank1 = [self._span("r", 1)] + [self._flow("dup", "f", 1, ts=t) for t in (3.0, 4.0)]
        (tmp_path / "trace_rank0.json").write_text(json.dumps(rank0))
        (tmp_path / "trace_rank1.json").write_text(json.dumps(rank1))
        events, stats = merge_traces(sorted(tmp_path.glob("trace_rank*.json")))
        assert stats["flow_pairs"] == 2
        assert stats["unmatched_flow_events"] == 0
        assert validate_chrome_trace(events) == []

    def test_empty_per_rank_file_degrades_gracefully(self, tmp_path):
        # rank 1 crashed before writing anything: zero-byte file
        (tmp_path / "trace_rank0.json").write_text(
            json.dumps([self._span("t", 0)])
        )
        (tmp_path / "trace_rank1.json").write_text("")
        events, stats = merge_traces(
            sorted(tmp_path.glob("trace_rank*.json")),
            out_path=tmp_path / "merged.json",
        )
        assert stats["files"] == 2
        assert stats["empty_files"] == 1
        # the dead rank still gets its process_name lane in the merge
        lanes = {e["pid"] for e in events if e["ph"] == "M"}
        assert lanes == {0, 1}
        assert validate_chrome_trace(events) == []

    def test_whitespace_only_file_counts_as_empty(self, tmp_path):
        (tmp_path / "trace_rank0.json").write_text("  \n")
        _, stats = merge_traces([tmp_path / "trace_rank0.json"])
        assert stats["empty_files"] == 1
        assert stats["events"] == 1  # just the process_name metadata

    def test_garbage_file_still_raises(self, tmp_path):
        from repro.util.errors import PerfError

        (tmp_path / "trace_rank0.json").write_text("{truncated")
        with pytest.raises(PerfError):
            merge_traces([tmp_path / "trace_rank0.json"])
