"""Tests for causal trace propagation: TraceContext semantics, stamping
into spans, propagation through the simulated MPI fabric (recv spans
carry the *sender's* trace id), and the cross-rank trace merge with its
flow-event pairing."""

import json
import threading

import pytest

from repro.perf import tracectx
from repro.perf.merge import merge_traces, validate_chrome_trace, write_rank_traces
from repro.perf.profile import run_profile
from repro.perf.tracer import SpanTracer


# ----------------------------------------------------------------------
# context semantics
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_new_trace_ids_are_unique(self):
        a, b = tracectx.new_trace(), tracectx.new_trace()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_child_keeps_trace_id_and_parents_to_span(self):
        root = tracectx.new_trace()
        kid = root.child()
        assert kid.trace_id == root.trace_id
        assert kid.parent_id == root.span_id
        assert kid.span_id != root.span_id

    def test_round_trips_through_dict(self):
        ctx = tracectx.new_trace().child()
        assert tracectx.TraceContext.from_dict(ctx.as_dict()) == ctx

    def test_use_installs_and_restores(self):
        assert tracectx.current() is None
        ctx = tracectx.new_trace()
        with tracectx.use(ctx):
            assert tracectx.current() is ctx
            inner = ctx.child()
            with tracectx.use(inner):
                assert tracectx.current() is inner
            assert tracectx.current() is ctx
        assert tracectx.current() is None

    def test_use_none_is_passthrough(self):
        with tracectx.use(None) as got:
            assert got is None
            assert tracectx.current() is None

    def test_child_or_new_continues_ambient(self):
        root = tracectx.new_trace()
        with tracectx.use(root):
            assert tracectx.child_or_new().trace_id == root.trace_id
        fresh = tracectx.child_or_new()
        assert fresh.trace_id != root.trace_id
        assert fresh.parent_id is None

    def test_context_is_thread_local(self):
        ctx = tracectx.new_trace()
        seen = {}

        def peek():
            seen["other"] = tracectx.current()

        with tracectx.use(ctx):
            t = threading.Thread(target=peek)
            t.start()
            t.join()
        assert seen["other"] is None

    def test_stamp_prefers_existing_keys(self):
        ambient = tracectx.new_trace()
        with tracectx.use(ambient):
            args = tracectx.stamp({"trace_id": "sender-id"})
        # a recv span that recorded the sender's id must keep it
        assert args["trace_id"] == "sender-id"
        assert args["span_id"] == ambient.span_id

    def test_stamp_without_context_is_noop(self):
        assert tracectx.stamp({}) == {}


# ----------------------------------------------------------------------
# stamping through the tracer
# ----------------------------------------------------------------------
class TestTracerStamping:
    def test_spans_carry_ambient_context(self):
        tracer = SpanTracer(enabled=True)
        root = tracectx.new_trace()
        with tracectx.use(root):
            with tracer.span("work", cat="task"):
                pass
        (event,) = [e for e in tracer.events() if e["ph"] == "X"]
        assert event["args"]["trace_id"] == root.trace_id
        assert event["args"]["span_id"] == root.span_id


# ----------------------------------------------------------------------
# end-to-end: 2-rank run, merge, flow pairing
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def merged_run(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("merged")
    summary = run_profile(
        steps=1,
        resolution=12,
        rays_per_cell=2,
        num_ranks=2,
        trace_path=str(tmp / "trace.json"),
        metrics_path=str(tmp / "metrics.json"),
        merge=True,
        rank_trace_dir=str(tmp),
    )
    events = json.loads((tmp / "trace.json").read_text())
    return summary, events


class TestCausalMpiPropagation:
    def test_recv_spans_carry_a_send_trace_id(self, merged_run):
        _, events = merged_run
        sends = [
            e for e in events
            if e.get("ph") == "X" and e.get("name") == "comm.send"
        ]
        recvs = [
            e for e in events
            if e.get("ph") == "X" and e.get("name") == "comm.recv"
        ]
        assert sends and recvs
        send_traces = {e["args"]["trace_id"] for e in sends}
        for recv in recvs:
            assert recv["args"]["trace_id"] in send_traces, recv

    def test_connectivity_meets_the_bar(self, merged_run):
        summary, _ = merged_run
        stats = summary["merge_stats"]
        assert stats["flow_pairs"] > 0
        assert stats["connected_fraction"] >= 0.95

    def test_merged_trace_validates_with_paired_flows(self, merged_run):
        _, events = merged_run
        assert validate_chrome_trace(events) == []
        starts = {e["id"] for e in events if e.get("ph") == "s"}
        finishes = {e["id"] for e in events if e.get("ph") == "f"}
        assert starts and starts == finishes  # merge drops unpaired flows

    def test_task_spans_share_trace_with_their_sends(self, merged_run):
        _, events = merged_run
        task_traces = {
            e["args"]["trace_id"]
            for e in events
            if e.get("ph") == "X" and e.get("cat") == "task"
            and "trace_id" in e.get("args", {})
        }
        send_traces = {
            e["args"]["trace_id"]
            for e in events
            if e.get("ph") == "X" and e.get("name") == "comm.send"
        }
        assert send_traces <= task_traces


class TestMergeUnits:
    def test_merge_drops_unpaired_flow_events(self, tmp_path):
        tracer = SpanTracer(enabled=True)
        with tracer.span("t", cat="task", tid=0):
            tracer.flow_start(1, tid=0)
            tracer.flow_start(2, tid=0)  # never finished
        with tracer.span("r", cat="comm", tid=1):
            tracer.flow_finish(1, tid=1)
        paths = write_rank_traces(tracer.events(), 2, tmp_path)
        names = {p.name for p in paths}
        assert {"trace_rank0.json", "trace_rank1.json"} <= names
        events, stats = merge_traces(paths, out_path=tmp_path / "merged.json")
        assert stats["flow_pairs"] == 1
        assert stats["unmatched_flow_events"] == 1
        flow_ids = [str(e["id"]) for e in events if e.get("ph") in ("s", "f")]
        assert sorted(flow_ids) == ["1", "1"]

    def test_validate_flags_missing_keys(self):
        problems = validate_chrome_trace([{"name": "x", "ph": "X"}])
        assert problems
