"""Tests for the single-level, multi-level, and façade RMCRT solvers.

Covers decomposition independence, Monte Carlo convergence toward the
deterministic DOM reference, multi-vs-single-level agreement, and the
virtual radiometer.
"""

import numpy as np
import pytest

from repro.grid import Box, build_single_level_grid, build_two_level_grid
from repro.core import (
    LevelFields,
    MultiLevelRMCRT,
    RMCRTSolver,
    SingleLevelRMCRT,
    VirtualRadiometer,
    project_to_coarser_levels,
)
from repro.radiation import (
    BurnsChristonBenchmark,
    RadiativeProperties,
    dom_reference_divq,
)
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def bench12():
    return BurnsChristonBenchmark(resolution=12)


@pytest.fixture(scope="module")
def reference_divq(bench12):
    grid = bench12.single_level_grid()
    props = bench12.properties_for_level(grid.finest_level)
    return dom_reference_divq(props, grid.finest_level.dx, n_polar=6, n_azimuthal=12)


class TestSingleLevel:
    def test_positive_divq(self, bench12):
        res = SingleLevelRMCRT(rays_per_cell=16, seed=0).solve(
            bench12.single_level_grid(),
            bench12.properties_for_level(bench12.single_level_grid().finest_level),
        )
        assert res.divq.shape == (12, 12, 12)
        assert (res.divq > 0).all()
        lo, hi = bench12.expected_divq_bounds()
        assert res.divq.max() <= hi

    def test_decomposition_independence(self, bench12):
        """Identical divq regardless of patch decomposition.

        This is the reproducibility property the per-patch RNG keying
        buys: a 1-patch and an 8-patch run differ only in which stream
        each cell's rays come from, so we check statistical agreement;
        two same-decomposition runs must agree exactly.
        """
        grid_a = bench12.single_level_grid(patch_size=6)
        props = bench12.properties_for_level(grid_a.finest_level)
        r1 = SingleLevelRMCRT(rays_per_cell=8, seed=5).solve(grid_a, props)
        grid_b = bench12.single_level_grid(patch_size=6)
        r2 = SingleLevelRMCRT(rays_per_cell=8, seed=5).solve(grid_b, props)
        np.testing.assert_array_equal(r1.divq, r2.divq)

    def test_scalar_backend_matches_vectorized(self):
        bench = BurnsChristonBenchmark(resolution=6)
        grid = bench.single_level_grid()
        props = bench.properties_for_level(grid.finest_level)
        rv = SingleLevelRMCRT(rays_per_cell=4, seed=2, backend="vectorized").solve(grid, props)
        rs = SingleLevelRMCRT(rays_per_cell=4, seed=2, backend="scalar").solve(grid, props)
        np.testing.assert_allclose(rv.divq, rs.divq, atol=1e-12)

    def test_monte_carlo_convergence(self, bench12, reference_divq):
        """L2 error vs the DOM reference decays ~ 1/sqrt(rays) (E4)."""
        errors = []
        ray_counts = [4, 16, 64, 256]
        grid = bench12.single_level_grid()
        props = bench12.properties_for_level(grid.finest_level)
        for n in ray_counts:
            res = SingleLevelRMCRT(rays_per_cell=n, seed=9).solve(grid, props)
            errors.append(
                np.sqrt(np.mean((res.divq - reference_divq) ** 2))
            )
        # fit log error vs log rays; slope should be near -1/2.
        slope = np.polyfit(np.log(ray_counts), np.log(errors), 1)[0]
        assert -0.70 < slope < -0.30, f"MC convergence slope {slope}"

    def test_rays_traced_accounting(self, bench12):
        grid = bench12.single_level_grid(patch_size=6)
        props = bench12.properties_for_level(grid.finest_level)
        res = SingleLevelRMCRT(rays_per_cell=4, seed=0).solve(grid, props)
        assert res.rays_traced == 12 ** 3 * 4

    def test_bad_backend(self):
        with pytest.raises(ReproError):
            SingleLevelRMCRT(backend="cuda")


class TestMultiLevel:
    def test_agrees_with_single_level(self):
        """2-level divq within a few percent of single-level (same rays/cell)."""
        bench = BurnsChristonBenchmark(resolution=16)
        grid2 = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
        props = bench.properties_for_level(grid2.finest_level)
        ml = MultiLevelRMCRT(rays_per_cell=64, seed=3, halo=2).solve(grid2, props)

        grid1 = bench.single_level_grid(patch_size=8)
        sl = SingleLevelRMCRT(rays_per_cell=64, seed=3).solve(
            grid1, bench.properties_for_level(grid1.finest_level)
        )
        rel = np.abs(ml.divq.mean() - sl.divq.mean()) / sl.divq.mean()
        assert rel < 0.03
        # cellwise difference is bounded by MC noise + coarsening error
        assert np.abs(ml.divq - sl.divq).max() < 0.25 * sl.divq.max()

    def test_trivial_refinement_equals_single_level_exactly(self):
        """RR=1 with a domain-spanning ROI: the onion IS the fine mesh.

        With refinement ratio 1 the 'coarse' level carries identical
        data, so multi-level must reproduce single-level bit-for-bit.
        """
        bench = BurnsChristonBenchmark(resolution=8)
        grid2 = bench.two_level_grid(refinement_ratio=1)
        props = bench.properties_for_level(grid2.finest_level)
        ml = MultiLevelRMCRT(rays_per_cell=8, seed=4, halo=1).solve(grid2, props)
        grid1 = bench.single_level_grid()
        sl = SingleLevelRMCRT(rays_per_cell=8, seed=4).solve(
            grid1, bench.properties_for_level(grid1.finest_level)
        )
        np.testing.assert_allclose(ml.divq, sl.divq, atol=1e-9)

    def test_larger_halo_reduces_onion_error(self):
        """More fine data around each patch => closer to single-level."""
        bench = BurnsChristonBenchmark(resolution=16)
        grid1 = bench.single_level_grid()
        props1 = bench.properties_for_level(grid1.finest_level)
        sl = SingleLevelRMCRT(rays_per_cell=32, seed=6, centered_origins=True).solve(
            grid1, props1
        )
        errs = []
        for halo in (0, 8):
            grid2 = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
            props2 = bench.properties_for_level(grid2.finest_level)
            ml = MultiLevelRMCRT(
                rays_per_cell=32, seed=6, halo=halo, centered_origins=True
            ).solve(grid2, props2)
            errs.append(np.abs(ml.divq - sl.divq).mean())
        assert errs[1] <= errs[0]

    def test_requires_two_levels(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.single_level_grid()
        with pytest.raises(ReproError):
            MultiLevelRMCRT().solve(grid, bench.properties_for_level(grid.finest_level))

    def test_projection_bundles(self):
        bench = BurnsChristonBenchmark(resolution=16)
        grid = bench.two_level_grid(refinement_ratio=4)
        props = bench.properties_for_level(grid.finest_level)
        bundles = project_to_coarser_levels(grid, props)
        assert len(bundles) == 2
        assert bundles[1] is props
        assert bundles[0].interior == Box.cube(4)
        assert np.isclose(
            bundles[0].interior_view("abskg").mean(),
            props.interior_view("abskg").mean(),
        )

    def test_projection_wrong_props_rejected(self):
        bench = BurnsChristonBenchmark(resolution=16)
        grid = bench.two_level_grid()
        wrong = BurnsChristonBenchmark(resolution=8)
        wgrid = wrong.single_level_grid()
        with pytest.raises(ReproError):
            project_to_coarser_levels(
                grid, wrong.properties_for_level(wgrid.finest_level)
            )

    def test_negative_halo_rejected(self):
        with pytest.raises(ReproError):
            MultiLevelRMCRT(halo=-1)


class TestFacade:
    def test_dispatch_single(self, bench12):
        grid = bench12.single_level_grid()
        res = RMCRTSolver(rays_per_cell=4).solve(
            grid, bench12.properties_for_level(grid.finest_level)
        )
        assert res.divq.shape == (12, 12, 12)

    def test_dispatch_multi(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.two_level_grid(refinement_ratio=2)
        res = RMCRTSolver(rays_per_cell=4, halo=1).solve(
            grid, bench.properties_for_level(grid.finest_level)
        )
        assert res.divq.shape == (8, 8, 8)

    def test_solve_benchmark_one_call(self):
        res = RMCRTSolver(rays_per_cell=4).solve_benchmark(resolution=8)
        assert res.divq.shape == (8, 8, 8)
        res2 = RMCRTSolver(rays_per_cell=4, halo=1).solve_benchmark(
            resolution=8, levels=2, refinement_ratio=2
        )
        assert res2.divq.shape == (8, 8, 8)

    def test_scalar_multi_level_rejected(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.two_level_grid(refinement_ratio=2)
        with pytest.raises(ReproError):
            RMCRTSolver(backend="scalar").solve(
                grid, bench.properties_for_level(grid.finest_level)
            )

    def test_bad_levels_rejected(self):
        with pytest.raises(ReproError):
            RMCRTSolver().solve_benchmark(resolution=8, levels=3)


class TestVirtualRadiometer:
    def make_fields(self, n=8, kappa=1.0):
        box = Box.cube(n)
        props = RadiativeProperties.from_fields(
            box, abskg=np.full(box.extent, kappa), sigma_t4=np.ones(box.extent)
        )
        return LevelFields(
            abskg=props.abskg,
            sigma_t4=props.sigma_t4,
            cell_type=props.cell_type,
            interior=box,
            dx=(1.0 / n,) * 3,
            anchor=(0.0, 0.0, 0.0),
        )

    def test_flux_shape(self):
        fields = self.make_fields(8)
        q = VirtualRadiometer(rays_per_face=16, seed=0).incident_flux(fields, 0, 0)
        assert q.shape == (8, 8)
        assert (q >= 0).all()

    def test_symmetry_across_walls(self):
        fields = self.make_fields(6)
        rad = VirtualRadiometer(rays_per_face=400, seed=1)
        fluxes = rad.all_walls(fields)
        means = [f.mean() for f in fluxes.values()]
        assert max(means) - min(means) < 0.05 * np.mean(means)

    def test_thick_medium_approaches_blackbody(self):
        """Optically very thick hot medium: wall flux -> sigma_t4 = 1."""
        fields = self.make_fields(8, kappa=300.0)
        q = VirtualRadiometer(rays_per_face=64, seed=2).incident_flux(fields, 2, 1)
        assert np.allclose(q, 1.0, rtol=5e-2)

    def test_thin_medium_small_flux(self):
        fields = self.make_fields(8, kappa=1e-3)
        q = VirtualRadiometer(rays_per_face=64, seed=3).incident_flux(fields, 1, 0)
        assert q.mean() < 5e-3

    def test_invalid_wall(self):
        fields = self.make_fields(4)
        with pytest.raises(ReproError):
            VirtualRadiometer().incident_flux(fields, 3, 0)

    def test_face_box_selection(self):
        fields = self.make_fields(8)
        sub = Box((0, 2, 2), (1, 6, 6))
        q = VirtualRadiometer(rays_per_face=8, seed=4).incident_flux(
            fields, 0, 0, face_box=sub
        )
        assert q.shape == (4, 4)

    def test_face_box_empty_rejected(self):
        fields = self.make_fields(8)
        with pytest.raises(ReproError):
            VirtualRadiometer().incident_flux(
                fields, 0, 0, face_box=Box.cube(2, lo=(50, 50, 50))
            )
