"""Tests for the declarative fault plan."""

import pytest

from repro.resilience import FaultEvent, FaultPlan, InjectedFault, ResilienceError


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ResilienceError, match="unknown fault kind"):
            FaultEvent(kind="gamma-ray")

    def test_round_trips_through_dicts(self):
        plan = FaultPlan(
            [
                FaultEvent(kind="rank-death", step=3, target=1),
                FaultEvent(kind="solve-fault", match="abc", attempts=2),
            ]
        )
        again = FaultPlan.from_dicts(plan.as_dicts())
        assert again.as_dicts() == plan.as_dicts()
        assert len(again) == 2


class TestSeeded:
    def test_deterministic(self):
        a = FaultPlan.seeded(seed=7, num_steps=12, num_ranks=8, deaths=2)
        b = FaultPlan.seeded(seed=7, num_steps=12, num_ranks=8, deaths=2)
        assert a.as_dicts() == b.as_dicts()
        c = FaultPlan.seeded(seed=8, num_steps=12, num_ranks=8, deaths=2)
        assert c.as_dicts() != a.as_dicts()

    def test_respects_checkpoint_cadence(self):
        """A seeded death never fires before one cadence checkpoint
        exists — otherwise corrupting the newest checkpoint could make
        the run unrecoverable by design rather than by bad luck."""
        for seed in range(10):
            plan = FaultPlan.seeded(
                seed=seed, num_steps=8, num_ranks=4, checkpoint_every=3
            )
            for e in plan.events:
                if e.kind == "rank-death":
                    assert e.step >= 4

    def test_needs_survivors(self):
        with pytest.raises(ResilienceError):
            FaultPlan.seeded(seed=0, num_steps=4, num_ranks=1)
        plan = FaultPlan.seeded(seed=0, num_steps=6, num_ranks=3, deaths=5)
        assert plan.counts()["rank-death"] <= 2  # always leaves a survivor

    def test_counts(self):
        plan = FaultPlan.seeded(seed=1, num_steps=9, num_ranks=4, deaths=1)
        counts = plan.counts()
        assert counts["rank-death"] == 1
        assert counts.get("chunk-corrupt", 0) == 1


class TestQueries:
    def test_rank_deaths_at(self):
        plan = FaultPlan(
            [
                FaultEvent(kind="rank-death", step=2, target=3),
                FaultEvent(kind="rank-death", step=2, target=3),  # dedup
                FaultEvent(kind="rank-death", step=5, target=0),
            ]
        )
        assert plan.rank_deaths_at(2) == [3]
        assert plan.rank_deaths_at(5) == [0]
        assert plan.rank_deaths_at(3) == []

    def test_dead_workers(self):
        plan = FaultPlan(
            [
                FaultEvent(kind="worker-death", target=1),
                FaultEvent(kind="worker-death", target=4),
            ]
        )
        assert plan.dead_workers() == [1, 4]
        assert plan.worker_dead(4) and not plan.worker_dead(0)


class TestServiceHook:
    def test_hook_raises_then_allows(self):
        plan = FaultPlan([FaultEvent(kind="solve-fault", match="abcd", attempts=2)])
        hook = plan.service_hook()
        with pytest.raises(InjectedFault):
            hook("abcdef0123", 1)
        with pytest.raises(InjectedFault):
            hook("abcdef0123", 2)
        hook("abcdef0123", 3)  # attempts exhausted: solve proceeds

    def test_hook_matches_prefix_only(self):
        plan = FaultPlan([FaultEvent(kind="solve-fault", match="dead")])
        hook = plan.service_hook()
        hook("beef000000", 1)  # different fingerprint untouched
        with pytest.raises(InjectedFault):
            hook("deadbeef00", 1)

    def test_wildcard_match(self):
        plan = FaultPlan([FaultEvent(kind="solve-fault")])
        hook = plan.service_hook()
        with pytest.raises(InjectedFault):
            hook("anything", 1)
