"""Tests for the crash flight recorder: ring semantics, per-rank
postmortem dumps, the tracer-sink adapter, and the crash path through
SimulationController."""

import json
import threading

import numpy as np
import pytest

from repro.dw import cc
from repro.perf import tracectx
from repro.perf.flightrec import (
    FlightRecorder,
    get_flight_recorder,
    set_flight_recorder,
)
from repro.perf.tracer import SpanTracer
from repro.runtime import Computes, SimulationController, Task, TaskGraph
from repro.util.errors import PerfError


class TestRing:
    def test_capacity_bounds_the_ring(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("task", f"t{i}")
        assert len(rec) == 4
        assert rec.recorded_total == 10
        assert [e["name"] for e in rec.entries()] == ["t6", "t7", "t8", "t9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(PerfError):
            FlightRecorder(capacity=0)

    def test_entries_filter_by_rank(self):
        rec = FlightRecorder(capacity=16)
        rec.record("task", "a", rank=0)
        rec.record("task", "b", rank=1)
        rec.record("task", "c", rank=0)
        assert [e["name"] for e in rec.entries(rank=0)] == ["a", "c"]
        assert [e["name"] for e in rec.entries(rank=1)] == ["b"]

    def test_extra_data_rides_along(self):
        rec = FlightRecorder(capacity=4)
        rec.record("task", "trace", rank=2, dur_s=0.5, trace_id="abc")
        (entry,) = rec.entries()
        assert entry["dur_s"] == 0.5
        assert entry["trace_id"] == "abc"
        assert entry["t"] >= 0.0

    def test_concurrent_records_are_all_kept(self):
        rec = FlightRecorder(capacity=10_000)

        def worker(k):
            for _ in range(500):
                rec.record("task", "x", rank=k)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.recorded_total == 2000
        assert len(rec) == 2000


class TestCausalJoin:
    """record() stamps the ambient TraceContext trace_id, so a
    postmortem ring joins against merged traces."""

    def test_record_captures_ambient_trace_id(self):
        rec = FlightRecorder(capacity=8)
        ctx = tracectx.new_trace()
        with tracectx.use(ctx):
            rec.record("task", "inside")
        rec.record("task", "outside")
        inside, outside = rec.entries()
        assert inside["trace_id"] == ctx.trace_id
        assert "trace_id" not in outside

    def test_explicit_trace_id_wins(self):
        rec = FlightRecorder(capacity=8)
        with tracectx.use(tracectx.new_trace()):
            rec.record("comm", "recv", trace_id="sender-trace")
        (entry,) = rec.entries()
        # a recv entry carrying the *sender's* id must keep it
        assert entry["trace_id"] == "sender-trace"

    def test_trace_id_survives_dump(self, tmp_path):
        rec = FlightRecorder(capacity=8, rank=0)
        ctx = tracectx.new_trace()
        with tracectx.use(ctx):
            rec.record("task", "work")
        path = rec.dump(tmp_path, reason="test")
        payload = json.loads(path.read_text())
        assert payload["entries"][0]["trace_id"] == ctx.trace_id


class TestSinkAdapter:
    def test_enabled_tracer_mirrors_spans_into_the_ring(self):
        rec = FlightRecorder(capacity=16)
        tracer = SpanTracer(enabled=True)
        tracer.add_sink(rec.sink)
        with tracer.span("solve", cat="task"):
            pass
        spans = [e for e in rec.entries() if e["kind"] == "span"]
        (solve,) = [e for e in spans if e["name"] == "solve"]
        assert solve["dur_us"] >= 0


class TestDump:
    def test_dump_writes_parseable_postmortem(self, tmp_path):
        rec = FlightRecorder(capacity=8, rank=5)
        rec.record("task", "a")
        path = rec.dump(tmp_path, reason="unit test")
        assert path.name == "flightrec_rank5.json"
        payload = json.loads(path.read_text())
        assert payload["rank"] == 5
        assert payload["reason"] == "unit test"
        assert payload["entries_in_dump"] == 1
        assert payload["entries"][0]["name"] == "a"

    def test_dump_one_rank_filters(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        rec.record("task", "mine", rank=1)
        rec.record("task", "other", rank=2)
        path = rec.dump(tmp_path, rank=1, reason="rank 1 died")
        payload = json.loads(path.read_text())
        assert [e["name"] for e in payload["entries"]] == ["mine"]

    def test_dump_all_ranks_sweeps_every_rank_seen(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        for r in (0, 1, 3):
            rec.record("task", "x", rank=r)
        paths = rec.dump_all_ranks(tmp_path, reason="sweep")
        assert sorted(paths) == [0, 1, 3]
        for r, p in paths.items():
            assert json.loads(p.read_text())["rank"] == r


class TestGlobalRecorder:
    def test_swap_and_restore(self):
        mine = FlightRecorder(capacity=4)
        previous = set_flight_recorder(mine)
        try:
            assert get_flight_recorder() is mine
        finally:
            set_flight_recorder(previous)


class TestControllerCrashDump:
    def test_unhandled_task_exception_dumps_postmortems(self, tmp_path):
        mine = FlightRecorder(capacity=64)
        previous = set_flight_recorder(mine)
        try:
            from repro.grid import Box, Grid, decompose_level

            grid = Grid()
            level = grid.add_level(Box.cube(4), (0.25,) * 3)
            decompose_level(level, (4, 4, 4))
            phi = cc("phi")

            def init_cb(ctx):
                ctx.compute(phi, np.zeros((4, 4, 4)))

            def boom_cb(ctx):
                raise RuntimeError("injected fault")

            init_tg = TaskGraph(grid)
            init_tg.add_task(Task("init", init_cb, computes=[Computes(phi)]), 0)
            step_tg = TaskGraph(grid)
            step_tg.add_task(Task("boom", boom_cb, computes=[Computes(phi)]), 0)
            ctrl = SimulationController(
                step_tg.compile(), initial_graph=init_tg.compile()
            )
            ctrl.flightrec_dir = str(tmp_path)
            ctrl.initialize()
            with pytest.raises(RuntimeError, match="injected fault"):
                ctrl.advance(0.1)
            dumps = sorted(tmp_path.glob("flightrec_rank*.json"))
            assert dumps, "crash produced no postmortem"
            payload = json.loads(dumps[0].read_text())
            assert "injected fault" in payload["reason"]
            crashes = [e for e in payload["entries"] if e["kind"] == "crash"]
            assert crashes and crashes[0]["name"] == "RuntimeError"
        finally:
            set_flight_recorder(previous)
