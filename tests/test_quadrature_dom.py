"""Tests for angular quadrature and the discrete-ordinates baseline."""

import numpy as np
import pytest

from repro.grid import Box
from repro.radiation import (
    BurnsChristonBenchmark,
    DiscreteOrdinates,
    Quadrature,
    RadiativeProperties,
    dom_reference_divq,
    product_quadrature,
    sn_level_symmetric,
)
from repro.util.errors import ReproError


class TestQuadrature:
    @pytest.mark.parametrize("order", [2, 4])
    def test_sn_moments(self, order):
        q = sn_level_symmetric(order)
        assert q.check_moments()

    def test_sn_unit_directions(self):
        q = sn_level_symmetric(4)
        assert np.allclose(np.linalg.norm(q.directions, axis=1), 1.0)

    def test_sn_counts(self):
        assert sn_level_symmetric(2).num_ordinates == 8
        assert sn_level_symmetric(4).num_ordinates == 24

    def test_sn_octant_symmetry(self):
        q = sn_level_symmetric(4)
        dirs = {tuple(np.round(d, 10)) for d in q.directions}
        for d in q.directions:
            assert tuple(np.round(-d, 10)) in dirs

    def test_unsupported_order(self):
        with pytest.raises(ReproError):
            sn_level_symmetric(8)

    @pytest.mark.parametrize("np_, na", [(2, 4), (4, 8), (8, 16)])
    def test_product_moments(self, np_, na):
        q = product_quadrature(np_, na)
        assert q.check_moments()

    def test_product_second_moment(self):
        """Integral of s_z^2 over the sphere is 4*pi/3."""
        q = product_quadrature(8, 16)
        val = (q.weights * q.directions[:, 2] ** 2).sum()
        assert np.isclose(val, 4 * np.pi / 3)

    def test_product_bad_sizes(self):
        with pytest.raises(ReproError):
            product_quadrature(0, 4)

    def test_quadrature_shape_validation(self):
        with pytest.raises(ReproError):
            Quadrature(np.zeros((3, 2)), np.zeros(3))


def uniform_props(n, kappa, st4=1.0):
    box = Box.cube(n)
    return RadiativeProperties.from_fields(
        box, abskg=np.full(box.extent, kappa), sigma_t4=np.full(box.extent, st4)
    )


class TestDOM:
    def test_divq_positive_for_hot_medium_cold_walls(self):
        props = uniform_props(8, kappa=1.0)
        divq = DiscreteOrdinates(sn_order=4).solve(props, (1 / 8,) * 3)
        assert divq.shape == (8, 8, 8)
        assert (divq > 0).all()

    def test_equilibrium_is_zero(self):
        """Medium and walls at the same temperature: no net transfer.

        With I_wall = sigma_t4/pi everywhere, each ordinate solves to the
        constant source and G = 4*sigma_t4, hence del.q = 0 identically.
        """
        box = Box.cube(6)
        props = RadiativeProperties.from_fields(
            box,
            abskg=np.full(box.extent, 0.7),
            sigma_t4=np.ones(box.extent),
            wall_temperature=(1.0 / 5.670374419e-8) ** 0.25,  # sigma*T^4 = 1
        )
        divq = DiscreteOrdinates(sn_order=4).solve(props, (1 / 6,) * 3)
        assert np.allclose(divq, 0.0, atol=1e-12)

    def test_optically_thin_limit(self):
        """kappa -> 0 with cold walls: G -> 0, del.q -> 4 kappa sigma_t4."""
        kappa = 1e-4
        props = uniform_props(6, kappa=kappa)
        divq = DiscreteOrdinates(sn_order=4).solve(props, (1 / 6,) * 3)
        assert np.allclose(divq, 4 * kappa * 1.0, rtol=1e-2)

    def test_optically_thick_interior(self):
        """Very thick medium: the interior reaches equilibrium, del.q ~ 0
        except near the cold walls."""
        props = uniform_props(10, kappa=200.0)
        divq = DiscreteOrdinates(sn_order=4).solve(props, (1 / 10,) * 3)
        assert abs(divq[5, 5, 5]) < 1e-3 * divq.max()
        assert divq[0, 5, 5] > divq[5, 5, 5]

    def test_symmetry_burns_christon(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.single_level_grid()
        props = bench.properties_for_level(grid.finest_level)
        divq = DiscreteOrdinates(sn_order=4).solve(props, grid.finest_level.dx)
        assert np.allclose(divq, divq[::-1, :, :], rtol=1e-10)
        assert np.allclose(divq, np.transpose(divq, (1, 2, 0)), rtol=1e-10)

    def test_sn_vs_product_agree(self):
        props = uniform_props(8, kappa=1.0)
        dx = (1 / 8,) * 3
        a = DiscreteOrdinates(sn_order=4).solve(props, dx)
        b = DiscreteOrdinates(product_quadrature(4, 8)).solve(props, dx)
        assert np.allclose(a, b, rtol=0.05)

    def test_reference_helper(self):
        props = uniform_props(6, kappa=0.5)
        divq = dom_reference_divq(props, (1 / 6,) * 3, n_polar=4, n_azimuthal=8)
        assert divq.shape == (6, 6, 6)
        assert (divq > 0).all()

    def test_hot_wall_heats_medium(self):
        """Cold medium surrounded by hot walls: del.q < 0 (net absorption)."""
        box = Box.cube(6)
        props = RadiativeProperties.from_fields(
            box,
            abskg=np.full(box.extent, 1.0),
            sigma_t4=np.zeros(box.extent),
            wall_temperature=100.0,
        )
        divq = DiscreteOrdinates(sn_order=4).solve(props, (1 / 6,) * 3)
        assert (divq < 0).all()
