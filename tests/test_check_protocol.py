"""The spool-protocol model checker: clean exhaustive runs, seeded
inversions, counterexample minimality + replay, determinism."""

import os
import subprocess
import sys

import pytest

from repro.check.cli import run_check
from repro.check.protocol import (
    DEFECT_RULES,
    RULES,
    SpoolModel,
    check_model,
    run_protocol_fixture,
    verify_protocol,
)


def replay(model, trace):
    """Walk the trace from the initial state; return visited states.

    Asserts each label is actually enabled where the counterexample
    claims it is — a trace that does not replay is a checker bug.
    """
    state = model.initial()
    states = [state]
    for label in trace:
        succ = dict(model.successors(state))
        assert label in succ, f"step {label!r} not enabled"
        state = succ[label]
        states.append(state)
    return states


class TestCleanProtocol:
    def test_default_model_verifies(self):
        res = check_model(SpoolModel())
        assert res.ok, res.render()
        assert res.states > 500
        assert res.transitions > res.states
        assert res.terminals >= 1

    def test_no_journal_variant_is_still_zero_loss(self):
        """The claim file, not the journal, is the request's durable
        trace — dropping the journal entirely must not lose requests."""
        res = check_model(SpoolModel(defect="no_journal"))
        assert res.ok, res.render()

    def test_three_shard_model_verifies(self):
        res = check_model(SpoolModel(tickets=3, shards=3))
        assert res.ok, res.render()
        assert res.states > 10_000

    def test_crash_points_reach_every_shard(self):
        """With budget S every shard can die; the protocol still
        verifies (recover respawns, so a survivor always exists)."""
        res = check_model(SpoolModel(tickets=2, shards=2,
                                     crash_budget=2))
        assert res.ok, res.render()

    def test_verify_protocol_suite(self):
        results = dict(verify_protocol())
        assert set(results) == {"spool", "spool-no-journal"}
        assert all(r.ok for r in results.values())

    def test_unknown_defect_rejected(self):
        with pytest.raises(ValueError):
            SpoolModel(defect="telepathy")


class TestSeededInversions:
    @pytest.mark.parametrize("defect", sorted(DEFECT_RULES))
    def test_defect_trips_its_rule(self, defect):
        res = run_protocol_fixture(defect)
        assert not res.ok
        assert res.rule == DEFECT_RULES[defect], res.render()
        assert res.trace, "violation must carry a counterexample"

    def test_every_rule_reachable(self):
        """Three rules via defects; double-solve via direct state."""
        tripped = {run_protocol_fixture(d).rule for d in DEFECT_RULES}
        model = SpoolModel(tickets=1, shards=1)
        bad = list(model.initial())
        bad[4] = (2,)  # publishes[t0] = 2
        viol = model.violation(tuple(bad))
        assert viol is not None and viol[0] == "protocol-double-solve"
        assert tripped | {viol[0]} == set(RULES)

    def test_journal_before_claim_inversion(self):
        """The ISSUE's named inversion: removing the claim-before-
        journal ordering is caught, minimally — route then journal."""
        res = run_protocol_fixture("journal_before_claim")
        assert res.rule == "protocol-journal-outlives-claim"
        assert list(res.trace) == ["route t0 -> s0", "journal s0 t0"]


class TestCounterexamples:
    def test_trace_replays_and_violates_only_at_end(self):
        model = SpoolModel(defect="copy_claim")
        res = check_model(model)
        states = replay(model, res.trace)
        for s in states[:-1]:
            assert model.violation(s) is None
        viol = model.violation(states[-1])
        assert viol is not None and viol[0] == res.rule

    def test_minimality_single_ticket_early_settle(self):
        """One ticket: claim then settle-before-publish strands it in
        exactly three steps; BFS must find exactly that."""
        res = run_protocol_fixture("early_settle", tickets=1)
        assert res.rule == "protocol-lost-request"
        assert list(res.trace) == [
            "route t0 -> s0", "claim s0 t0", "settle s0 t0"]

    def test_minimality_copy_claim(self):
        """Copy-then-erase claiming: the shortest double claim is a
        steal slipped into the copy/erase window — four steps."""
        res = run_protocol_fixture("copy_claim")
        assert res.rule == "protocol-double-claim"
        assert len(res.trace) == 4
        assert res.trace[0].startswith("route")
        assert sum(1 for s in res.trace if s.startswith("claim-copy")) == 2

    def test_lost_request_is_terminal_only(self):
        """The stranded ticket is reported at quiescence, not while
        work is still possible."""
        model = SpoolModel(defect="early_settle", tickets=1)
        res = check_model(model)
        states = replay(model, res.trace)
        final = states[-1]
        succ = model.successors(final)
        assert all(lbl.startswith("crash") for lbl, _ in succ)
        assert model.terminal_violation(final) is not None

    def test_render_contains_numbered_trace(self):
        res = run_protocol_fixture("journal_before_claim")
        text = res.render()
        assert "VIOLATION after 2 step(s)" in text
        assert "1. route t0 -> s0" in text
        assert "2. journal s0 t0" in text
        assert "protocol-journal-outlives-claim" in text


class TestDeterminism:
    def test_same_model_same_trace_in_process(self):
        a = run_protocol_fixture("copy_claim")
        b = run_protocol_fixture("copy_claim")
        assert a.render() == b.render()
        assert a.trace == b.trace
        assert (a.states, a.transitions) == (b.states, b.transitions)

    def test_byte_identical_across_hash_seeds(self):
        """The state encoding is all ints, so exploration order — and
        the rendered counterexample — survives hash randomization."""
        prog = (
            "from repro.check.protocol import run_protocol_fixture\n"
            "r = run_protocol_fixture('early_settle')\n"
            "print(r.render())\n"
        )
        outs = []
        for seed in ("0", "424242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", env.get("PYTHONPATH", "")]))
            proc = subprocess.run(
                [sys.executable, "-c", prog],
                capture_output=True, text=True, env=env, timeout=120,
                cwd=os.path.dirname(os.path.dirname(
                    os.path.abspath(__file__))),
            )
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1]
        assert "VIOLATION" in outs[0]

    def test_clean_run_stats_are_stable(self):
        a = check_model(SpoolModel())
        b = check_model(SpoolModel())
        assert (a.states, a.transitions, a.terminals) == \
            (b.states, b.transitions, b.terminals)


class TestCLI:
    def test_protocol_subcommand_clean(self, capsys):
        assert run_check(["protocol"]) == 0
        assert "repro check protocol" in capsys.readouterr().out

    def test_protocol_seeded_defects_gate(self, capsys):
        assert run_check(["protocol", "--seeded-defects"]) == 1
        out = capsys.readouterr().out
        assert "protocol-lost-request" in out
        assert "protocol-double-claim" in out
        assert "protocol-journal-outlives-claim" in out
        assert "step trace:" in out  # counterexamples surface in CI logs
