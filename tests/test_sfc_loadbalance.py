"""Tests for space-filling curves and the SFC load balancer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import Box, Level, LoadBalancer, decompose_level, round_robin_assign
from repro.grid.sfc import (
    curve_order,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
)


class TestMorton:
    def test_origin(self):
        assert morton_encode(0, 0, 0) == 0

    def test_unit_axes(self):
        assert morton_encode(1, 0, 0) == 1
        assert morton_encode(0, 1, 0) == 2
        assert morton_encode(0, 0, 1) == 4

    def test_vectorized(self):
        x = np.arange(16)
        keys = morton_encode(x, x * 0, x * 0)
        assert keys.shape == (16,)

    @given(st.integers(0, 2 ** 20), st.integers(0, 2 ** 20), st.integers(0, 2 ** 20))
    def test_roundtrip(self, x, y, z):
        k = morton_encode(x, y, z)
        assert morton_decode(k) == (x, y, z)

    def test_bijective_on_cube(self):
        n = 8
        g = np.mgrid[0:n, 0:n, 0:n].reshape(3, -1)
        keys = morton_encode(g[0], g[1], g[2])
        assert len(np.unique(keys)) == n ** 3


class TestHilbert:
    @given(st.integers(0, 2 ** 12 - 1), st.integers(1, 4))
    def test_roundtrip(self, h, bits):
        h = h % (1 << (3 * bits))
        assert hilbert_encode(hilbert_decode(h, bits), bits) == h

    def test_bijective_on_cube(self):
        bits = 2
        n = 1 << bits
        seen = {hilbert_encode((x, y, z), bits)
                for x in range(n) for y in range(n) for z in range(n)}
        assert seen == set(range(n ** 3))

    def test_unit_step_adjacency(self):
        """Consecutive Hilbert indices are face-adjacent cells."""
        bits = 3
        n = 1 << bits
        prev = hilbert_decode(0, bits)
        for h in range(1, n ** 3):
            cur = hilbert_decode(h, bits)
            dist = sum(abs(a - b) for a, b in zip(prev, cur))
            assert dist == 1, f"jump of {dist} at h={h}"
            prev = cur


class TestCurveOrder:
    def test_is_permutation(self):
        rng = np.random.default_rng(1)
        pts = rng.integers(0, 32, size=(50, 3))
        for curve in ("morton", "hilbert"):
            order = curve_order(pts, curve=curve)
            assert sorted(order) == list(range(50))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            curve_order(np.zeros((3, 2), dtype=int))
        with pytest.raises(ValueError):
            curve_order(np.array([[-1, 0, 0]]))
        with pytest.raises(ValueError):
            curve_order(np.zeros((1, 3), dtype=int), curve="peano")


def tiled_level(domain=32, patch=8):
    lvl = Level(0, Box.cube(domain), dx=(1.0 / domain,) * 3)
    return lvl, decompose_level(lvl, (patch,) * 3)


class TestLoadBalancer:
    def test_every_rank_gets_work(self):
        _, patches = tiled_level()  # 64 patches
        for nranks in (1, 2, 7, 16, 64):
            lb = LoadBalancer(nranks)
            assignment = lb.assign(patches)
            assert set(assignment.values()) == set(range(nranks))

    def test_balance_quality(self):
        _, patches = tiled_level()
        lb = LoadBalancer(8)
        assignment = lb.assign(patches)
        assert lb.imbalance(patches, assignment) <= 1.10

    def test_uniform_costs_split_evenly(self):
        _, patches = tiled_level()  # 64 equal patches
        lb = LoadBalancer(4)
        counts = lb.rank_costs(patches, lb.assign(patches))
        assert np.allclose(counts, counts[0])

    def test_locality_beats_round_robin(self):
        """SFC chunks are spatially compact: mean intra-rank centroid
        spread is smaller than round-robin's."""
        _, patches = tiled_level(domain=32, patch=4)  # 512 patches
        lb = LoadBalancer(8)
        sfc = lb.assign(patches)
        rr = round_robin_assign(patches, 8)

        def mean_spread(assignment):
            spreads = []
            for rank in range(8):
                pts = np.array(
                    [p.centroid_index() for p in patches if assignment[p.patch_id] == rank]
                )
                spreads.append(np.linalg.norm(pts - pts.mean(axis=0), axis=1).mean())
            return np.mean(spreads)

        assert mean_spread(sfc) < mean_spread(rr)

    def test_weighted_costs(self):
        _, patches = tiled_level(domain=16, patch=8)  # 8 patches
        # make one patch 10x as expensive
        heavy = patches[0].patch_id
        lb = LoadBalancer(
            2, cost_fn=lambda p: 10.0 if p.patch_id == heavy else 1.0
        )
        assignment = lb.assign(patches)
        costs = lb.rank_costs(patches, assignment)
        # heavy rank should not also hoard the light patches
        assert costs.max() <= 12.0

    def test_more_ranks_than_patches(self):
        _, patches = tiled_level(domain=16, patch=8)  # 8 patches
        lb = LoadBalancer(16)
        assignment = lb.assign(patches)
        assert len(assignment) == 8
        assert len(set(assignment.values())) == 8  # 8 ranks busy, 8 idle

    def test_empty_patch_list(self):
        assert LoadBalancer(4).assign([]) == {}

    def test_bad_rank_count(self):
        from repro.util.errors import GridError

        with pytest.raises(GridError):
            LoadBalancer(0)
