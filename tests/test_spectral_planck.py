"""Tests for the Planck sampling machinery and emissivity tables.

The spectral subsystem's statistical foundation: the black-body
fraction function against published table values, inverse-CDF band
sampling against the analytic weights, and the temperature
interpolation/digest behaviour of tabulated emissivity.
"""

import numpy as np
import pytest

from repro.radiation.spectral.emissivity import (
    MATERIALS,
    TabulatedEmissivity,
    named_emissivity,
)
from repro.radiation.spectral.model import SpectralModel, kappa_scales_power_law
from repro.radiation.spectral.planck import (
    PlanckTable,
    default_band_edges,
    fraction_inverse,
    planck_fraction,
)
from repro.util.errors import ReproError
from repro.util.rng import RandomStreams

#: published black-body fraction table values (lambda*T in um*K -> F),
#: e.g. Incropera & DeWitt Table 12.2
FRACTION_TABLE = {
    2000.0: 0.066728,
    2898.0: 0.250108,
    4000.0: 0.480877,
    6000.0: 0.737818,
    8000.0: 0.856288,
    10000.0: 0.914199,
    20000.0: 0.985602,
}


class TestPlanckFraction:
    def test_limits(self):
        assert planck_fraction(0.0) == 0.0
        assert planck_fraction(np.inf) == 1.0
        assert planck_fraction(-5.0) == 0.0

    @pytest.mark.parametrize("lt,expected", sorted(FRACTION_TABLE.items()))
    def test_published_table_values(self, lt, expected):
        assert planck_fraction(lt) == pytest.approx(expected, abs=5e-5)

    def test_monotone_and_vectorized(self):
        lt = np.linspace(100.0, 60000.0, 200)
        f = planck_fraction(lt)
        assert f.shape == lt.shape
        assert np.all(np.diff(f) > 0)
        assert np.all((f >= 0) & (f <= 1))

    def test_inverse_round_trips(self):
        for frac in (0.1, 0.25, 0.5, 0.9):
            lam = fraction_inverse(frac, 1000.0)
            assert planck_fraction(lam * 1000.0) == pytest.approx(frac, abs=1e-9)

    def test_inverse_rejects_bad_input(self):
        with pytest.raises(ReproError):
            fraction_inverse(0.0, 1000.0)
        with pytest.raises(ReproError):
            fraction_inverse(0.5, -1.0)


class TestPlanckTable:
    def test_equal_fraction_edges_give_equal_weights(self):
        table = PlanckTable.equal_fraction(4, 1500.0)
        assert table.nbands == 4
        np.testing.assert_allclose(table.weights, 0.25, atol=1e-6)
        assert table.coverage == pytest.approx(1.0)
        assert table.cdf[-1] == 1.0

    def test_explicit_edges_weights_sum_to_one(self):
        table = PlanckTable.from_edges((0.5, 2.0, 5.0, 20.0), 1000.0)
        assert sum(table.weights) == pytest.approx(1.0)
        assert table.coverage < 1.0  # edges do not span the spectrum

    def test_band_median_lies_inside_its_band(self):
        table = PlanckTable.from_edges((0.0, 2.5, 6.0, np.inf), 1200.0)
        for b in range(table.nbands):
            med = table.band_median_um(b)
            assert table.edges_um[b] < med < table.edges_um[b + 1]

    def test_sampling_matches_weights(self):
        table = PlanckTable.from_edges((0.0, 2.5, 6.0, np.inf), 1200.0)
        rng = RandomStreams(7).named("spectral", 0)
        bands = table.sample_bands(rng, 200_000)
        freq = np.bincount(bands, minlength=3) / bands.size
        np.testing.assert_allclose(freq, table.weights, atol=5e-3)

    def test_sampling_is_deterministic_per_stream(self):
        table = PlanckTable.equal_fraction(3, 1000.0)
        a = table.sample_bands(RandomStreams(3).named("spectral", 1), 512)
        b = table.sample_bands(RandomStreams(3).named("spectral", 1), 512)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ReproError):
            PlanckTable.from_edges((2.0, 1.0), 1000.0)  # decreasing
        with pytest.raises(ReproError):
            PlanckTable.from_edges((0.0,), 1000.0)  # too few
        with pytest.raises(ReproError):
            PlanckTable.from_edges((0.0, 1.0), -5.0)  # bad temperature
        with pytest.raises(ReproError):
            default_band_edges(0, 1000.0)


class TestTabulatedEmissivity:
    def table(self):
        return TabulatedEmissivity(
            temperatures=[500.0, 1000.0],
            values=[[0.2, 0.4], [0.4, 0.8]],
        )

    def test_interpolates_between_rows(self):
        eps = self.table().eps_at(750.0)
        np.testing.assert_allclose(eps, [0.3, 0.6])

    def test_clamps_outside_the_table(self):
        t = self.table()
        np.testing.assert_allclose(t.eps_at(100.0), [0.2, 0.4])
        np.testing.assert_allclose(t.eps_at(5000.0), [0.4, 0.8])

    def test_band_values_vectorized_lookup(self):
        t = self.table()
        temps = np.array([500.0, 750.0, 1000.0])
        np.testing.assert_allclose(t.band_values(1, temps), [0.4, 0.6, 0.8])

    def test_gray_table_is_identity(self):
        gray = TabulatedEmissivity.gray(3)
        assert gray.is_gray
        np.testing.assert_array_equal(gray.eps_at(1234.5), np.ones(3))
        assert not self.table().is_gray

    def test_digest_distinguishes_tables(self):
        a = self.table()
        b = TabulatedEmissivity(
            temperatures=[500.0, 1000.0],
            values=[[0.2, 0.4], [0.4, 0.81]],
        )
        assert a.digest() != b.digest()
        assert a.digest() == self.table().digest()

    def test_materials_catalog(self):
        table = PlanckTable.equal_fraction(3, 1200.0)
        for name in MATERIALS:
            eps = named_emissivity(name, table)
            assert eps.nbands == 3
            assert np.all((eps.values > 0) & (eps.values <= 1))
        assert named_emissivity("gray", table).is_gray
        with pytest.raises(ReproError, match="unknown emissivity"):
            named_emissivity("unobtanium", table)

    def test_validation(self):
        with pytest.raises(ReproError):
            TabulatedEmissivity(temperatures=[500.0, 400.0],
                                values=[[0.5], [0.5]])
        with pytest.raises(ReproError):
            TabulatedEmissivity(temperatures=[500.0], values=[[1.5]])


class TestSpectralModel:
    def test_gray_limit_properties(self):
        model = SpectralModel.gray_limit()
        assert model.is_gray_limit
        assert model.nbands == 1
        assert model.planck_mean_scale == 1.0

    def test_normalized_kappa_scales_have_unit_planck_mean(self):
        model = SpectralModel.build(bands=4, temperature=1400.0,
                                    kappa_exponent=0.8)
        assert model.planck_mean_scale == pytest.approx(1.0)
        assert not model.is_gray_limit

    def test_kappa_power_law_orders_bands(self):
        table = PlanckTable.equal_fraction(3, 1400.0)
        scales = kappa_scales_power_law(table, exponent=1.0)
        assert np.all(np.diff(scales) > 0)  # longer wavelength, thicker
        flat = kappa_scales_power_law(table, exponent=0.0)
        np.testing.assert_allclose(flat, 1.0)

    def test_digest_separates_models(self):
        a = SpectralModel.build(bands=3, temperature=1400.0)
        b = SpectralModel.build(bands=3, temperature=1500.0)
        c = SpectralModel.build(bands=3, temperature=1400.0,
                                emissivity="tungsten")
        assert len({a.digest(), b.digest(), c.digest()}) == 3
        assert a.digest() == SpectralModel.build(bands=3,
                                                 temperature=1400.0).digest()

    def test_band_count_mismatch_rejected(self):
        with pytest.raises(ReproError):
            SpectralModel(
                table=PlanckTable.equal_fraction(3, 1000.0),
                kappa_scales=np.ones(3),
                emissivity=TabulatedEmissivity.gray(2),
            )
