"""Tests for multi-GPU node execution and the Summit projection."""

import numpy as np
import pytest

from repro.core import DistributedRMCRT, benchmark_property_init
from repro.core.distributed import DIVQ
from repro.dessim import LARGE, StrongScalingStudy
from repro.dw import GPUDataWarehouse
from repro.machine import K20X, SUMMIT, TITAN, V100, summit_simulator
from repro.radiation import BurnsChristonBenchmark
from repro.runtime.multigpu import MultiGPUScheduler
from repro.runtime.scheduler import gather_cc
from repro.util.errors import SchedulerError


def build_pipeline(resolution=16, patch=8, rays=4):
    bench = BurnsChristonBenchmark(resolution=resolution)
    grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=patch)
    drm = DistributedRMCRT(
        grid, benchmark_property_init(bench),
        rays_per_cell=rays, halo=2, seed=1, device=True,
    )
    return grid, drm


class TestMultiGPU:
    @pytest.mark.parametrize("num_gpus", [1, 2, 3, 8])
    def test_matches_serial(self, num_gpus):
        grid, drm = build_pipeline()
        reference = drm.solve("serial")
        sched = MultiGPUScheduler(num_gpus=num_gpus)
        graph = drm.build_graph()
        dw = sched.execute(graph)
        divq = gather_cc(graph, {0: dw}, DIVQ, 1)
        np.testing.assert_array_equal(divq, reference.divq)

    def test_work_balanced_across_devices(self):
        grid, drm = build_pipeline()
        sched = MultiGPUScheduler(num_gpus=4)
        sched.execute(drm.build_graph())
        tasks = [s["tasks"] for s in sched.stats_summary()]
        assert sum(tasks) == 8  # 8 trace tasks
        assert max(tasks) - min(tasks) <= 1

    def test_level_db_replicated_per_device(self):
        """Each device holds exactly one copy of each coarse array —
        N devices, N copies, never per-task copies."""
        grid, drm = build_pipeline()
        sched = MultiGPUScheduler(num_gpus=2)
        sched.execute(drm.build_graph())
        for s in sched.stats_summary():
            assert s["level_db_entries"] == 3

    def test_custom_device_list(self):
        gpus = [GPUDataWarehouse(device_id=7), GPUDataWarehouse(device_id=9)]
        sched = MultiGPUScheduler(gpus=gpus)
        assert sched.num_gpus == 2
        assert sched.gpus[0].device_id == 7

    def test_validation(self):
        with pytest.raises(SchedulerError):
            MultiGPUScheduler(num_gpus=0)
        with pytest.raises(SchedulerError):
            MultiGPUScheduler(gpus=[])

    def test_more_gpus_than_patches(self):
        grid, drm = build_pipeline()  # 8 patches
        sched = MultiGPUScheduler(num_gpus=16)
        dw = sched.execute(drm.build_graph())
        used = [s for s in sched.stats_summary() if s["tasks"] > 0]
        assert len(used) == 8


class TestSummit:
    def test_spec_values(self):
        assert SUMMIT.gpus_per_node == 6
        assert SUMMIT.num_nodes == 4608
        assert SUMMIT.gpu_memory_bytes == 16 * 1024 ** 3
        assert SUMMIT.full_occupancy_threads == 80 * 2048

    def test_v100_faster_at_saturation(self):
        cells, rays, steps = 64 ** 3, 100, 150.0
        assert V100.kernel_time(cells, rays, steps) < K20X.kernel_time(
            cells, rays, steps
        )

    def test_v100_slower_when_starved(self):
        """The projection's finding: Titan-tuned 16^3 patches starve a
        V100 worse than a K20X."""
        cells, rays, steps = 16 ** 3, 100, 150.0
        assert V100.kernel_time(cells, rays, steps) > K20X.kernel_time(
            cells, rays, steps
        )

    def test_summit_simulator_runs_to_27k_gpus(self):
        sim = summit_simulator()
        b = sim.simulate_timestep(LARGE, 16, 27_648)
        assert b.total_time > 0
        with pytest.raises(Exception):
            sim.simulate_timestep(LARGE, 16, 27_649)

    def test_summit_wins_at_large_patches(self):
        titan = StrongScalingStudy()
        summit = StrongScalingStudy(summit_simulator())
        t = titan.run(LARGE, [64], [512])[64].times[0]
        s = summit.run(LARGE, [64], [512])[64].times[0]
        assert s < t

    def test_summit_loses_at_small_patches(self):
        titan = StrongScalingStudy()
        summit = StrongScalingStudy(summit_simulator())
        t = titan.run(LARGE, [16], [512])[16].times[0]
        s = summit.run(LARGE, [16], [512])[16].times[0]
        assert s > t
