"""Tests for timers, RNG streams, and cell types."""

import numpy as np
import pytest

from repro.grid import Box, CellType, domain_cell_types, mark_intrusion
from repro.util import RandomStreams, Timer, TimerRegistry, format_seconds, spawn_stream


class TestTimer:
    def test_accumulates(self):
        t = Timer("x")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.elapsed >= 0
        assert t.mean == t.elapsed / 2

    def test_double_start_rejected(self):
        t = Timer("x").start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer("x").stop()

    def test_reset(self):
        t = Timer("x")
        with t:
            pass
        t.reset()
        assert t.count == 0 and t.elapsed == 0

    def test_registry_creates_on_demand(self):
        reg = TimerRegistry()
        assert "a" not in reg
        t = reg("a")
        assert reg("a") is t
        assert "a" in reg and len(reg) == 1

    def test_registry_report(self):
        reg = TimerRegistry()
        with reg("kernel"):
            pass
        assert "kernel" in reg.report()

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.500 s"
        assert "ms" in format_seconds(5e-3)
        assert "us" in format_seconds(5e-6)


class TestRandomStreams:
    def test_deterministic(self):
        a = spawn_stream(42, 1, 2).random(5)
        b = spawn_stream(42, 1, 2).random(5)
        assert np.array_equal(a, b)

    def test_keys_independent(self):
        a = spawn_stream(42, 1).random(100)
        b = spawn_stream(42, 2).random(100)
        assert not np.array_equal(a, b)

    def test_seed_changes_stream(self):
        a = spawn_stream(1, 0).random(10)
        b = spawn_stream(2, 0).random(10)
        assert not np.array_equal(a, b)

    def test_cache_returns_same_generator(self):
        s = RandomStreams(7)
        assert s.for_patch(3) is s.for_patch(3)
        assert s.for_patch(3) is not s.for_patch(4)

    def test_fresh_replays(self):
        s = RandomStreams(7)
        g = s.for_patch(3)
        first = g.random(4)
        replay = s.fresh(0, 3).random(4)
        assert np.array_equal(first, replay)

    def test_invalidate(self):
        s = RandomStreams(7)
        g = s.for_patch(3)
        s.invalidate()
        assert s.for_patch(3) is not g

    def test_decomposition_independence(self):
        """The same patch id yields the same rays regardless of how many
        other patches exist — the invariant behind reproducible RMCRT."""
        one = RandomStreams(9)
        _ = one.for_patch(0)
        a = one.for_patch(17).random(8)
        other = RandomStreams(9)
        for pid in range(17):
            _ = other.for_patch(pid)
        b = other.for_patch(17).random(8)
        assert np.array_equal(a, b)


class TestCellTypes:
    def test_boundary_layer_layout(self):
        interior = Box.cube(4)
        ct = domain_cell_types(interior)
        assert ct.shape == (6, 6, 6)
        assert ct[0, 0, 0] == CellType.WALL
        assert ct[1, 1, 1] == CellType.FLOW
        assert (ct == CellType.FLOW).sum() == 64

    def test_no_boundary_layer(self):
        ct = domain_cell_types(Box.cube(4), with_boundary_layer=False)
        assert ct.shape == (4, 4, 4)
        assert (ct == CellType.FLOW).all()

    def test_mark_intrusion_clips(self):
        interior = Box.cube(8)
        outer = interior.grow(1)
        ct = domain_cell_types(interior)
        mark_intrusion(ct, Box.cube(4, lo=(6, 6, 6)), origin=outer.lo, domain=interior)
        assert ct[7, 7, 7] == CellType.INTRUSION  # cell (6,6,6)
        # region beyond the domain was clipped, wall ring untouched
        assert (ct[0, :, :] == CellType.WALL).all()

    def test_mark_intrusion_outside_domain_noop(self):
        interior = Box.cube(4)
        outer = interior.grow(1)
        ct = domain_cell_types(interior)
        before = ct.copy()
        mark_intrusion(ct, Box.cube(2, lo=(50, 50, 50)), origin=outer.lo, domain=interior)
        assert np.array_equal(ct, before)


class TestRNGStateRoundTrip:
    """get_state/set_state: the checkpointing contract of util.rng."""

    def test_mid_sequence_round_trip(self):
        s = RandomStreams(11)
        s.for_patch(0).random(17)          # advance stream 0 mid-buffer
        s.for_patch(3, purpose=2).random(5)
        snap = s.get_state()
        expect0 = s.for_patch(0).random(8)
        expect3 = s.for_patch(3, purpose=2).random(8)

        other = RandomStreams(11)
        other.for_patch(0).random(2)       # different position, overwritten
        other.set_state(snap)
        assert np.array_equal(other.for_patch(0).random(8), expect0)
        assert np.array_equal(other.for_patch(3, purpose=2).random(8), expect3)

    def test_state_is_json_serializable(self):
        import json

        s = RandomStreams(5)
        s.for_patch(1).random(3)
        doc = json.dumps(s.get_state())
        other = RandomStreams(5)
        other.set_state(json.loads(doc))
        assert np.array_equal(other.for_patch(1).random(4), s.for_patch(1).random(4))

    def test_seed_mismatch_rejected(self):
        from repro.util.errors import ReproError

        snap = RandomStreams(1).get_state()
        with pytest.raises(ReproError):
            RandomStreams(2).set_state(snap)

    def test_untouched_streams_not_in_state(self):
        s = RandomStreams(3)
        s.for_patch(0)
        assert list(s.get_state()["streams"]) == ["0,0"]
