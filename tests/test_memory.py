"""Tests for the heap models, arena, pool, tracker, and the
fragmentation workload (Section IV.B)."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    AllocationTracker,
    AllocatorStack,
    ArenaAllocator,
    GlobalLockAllocator,
    SimulatedHeap,
    SizeClassHeap,
    SizeClassPool,
    generate_trace,
    replay_trace,
)
from repro.util.errors import AllocationError


class TestSimulatedHeap:
    def test_basic_alloc_free(self):
        h = SimulatedHeap()
        a = h.malloc(100)
        b = h.malloc(200)
        assert a != b
        assert h.live_bytes == 112 + 208  # 16-byte aligned
        h.free(a)
        h.free(b)
        assert h.live_bytes == 0
        assert h.heap_end == 0  # everything trimmed back

    def test_first_fit_reuses_hole(self):
        h = SimulatedHeap()
        a = h.malloc(1000)
        _pin = h.malloc(64)  # pins the top so the hole survives
        h.free(a)
        end_before = h.heap_end
        c = h.malloc(500)
        assert c == a  # reused the hole
        assert h.heap_end == end_before

    def test_best_fit_picks_tightest(self):
        h = SimulatedHeap(policy="best_fit")
        a = h.malloc(1024)
        _p1 = h.malloc(16)
        b = h.malloc(256)
        _p2 = h.malloc(16)
        h.free(a)
        h.free(b)
        c = h.malloc(200)
        assert c == b  # tightest hole, not the first

    def test_coalescing(self):
        h = SimulatedHeap()
        addrs = [h.malloc(64) for _ in range(4)]
        _pin = h.malloc(16)
        for a in addrs:
            h.free(a)
        assert h.largest_free_block() == 4 * 64
        h.check_invariants()

    def test_double_free(self):
        h = SimulatedHeap()
        a = h.malloc(64)
        h.free(a)
        with pytest.raises(AllocationError):
            h.free(a)

    def test_bad_size(self):
        with pytest.raises(AllocationError):
            SimulatedHeap().malloc(0)

    def test_fragmentation_metric(self):
        h = SimulatedHeap()
        a = h.malloc(1 << 20)
        _pin = h.malloc(16)
        h.free(a)
        assert h.fragmentation > 0.9  # a big hole under a small pin

    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 5000)), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_invariants_random_workload(self, ops):
        """Property: free-list invariants survive any alloc/free order."""
        h = SimulatedHeap()
        live = []
        for is_alloc, size in ops:
            if is_alloc or not live:
                live.append(h.malloc(size))
            else:
                h.free(live.pop(size % len(live)))
            h.check_invariants()
        for a in live:
            h.free(a)
        h.check_invariants()
        assert h.live_bytes == 0


class TestSizeClassHeap:
    def test_rounding_to_class(self):
        h = SizeClassHeap()
        h.malloc(17)
        assert h.live_bytes == 32

    def test_page_reuse_within_class(self):
        h = SizeClassHeap(page_size=256)
        addrs = [h.malloc(64) for _ in range(4)]  # exactly one page
        assert h.pages_mapped == 1
        h.free(addrs[0])
        again = h.malloc(64)
        assert again == addrs[0]
        assert h.pages_mapped == 1

    def test_empty_page_unmapped(self):
        h = SizeClassHeap(page_size=256)
        addrs = [h.malloc(64) for _ in range(4)]
        for a in addrs:
            h.free(a)
        assert h.pages_mapped == 0

    def test_persistent_object_pins_page(self):
        """The tcmalloc residual: one live object holds a whole page."""
        h = SizeClassHeap(page_size=4096)
        addrs = [h.malloc(64) for _ in range(64)]  # one page of 64B slots
        for a in addrs[1:]:
            h.free(a)
        assert h.pages_mapped == 1
        assert h.fragmentation > 0.9

    def test_large_objects_to_page_heap(self):
        h = SizeClassHeap(page_size=4096)
        a = h.malloc(100_000)
        assert h.live_bytes == 100_000
        h.free(a)
        assert h.live_bytes == 0

    def test_double_free(self):
        h = SizeClassHeap()
        a = h.malloc(64)
        h.free(a)
        with pytest.raises(AllocationError):
            h.free(a)


class TestArena:
    def test_page_rounding(self):
        a = ArenaAllocator(page_size=4096)
        addr = a.malloc(5000)
        assert a.mapped_bytes == 8192
        a.free(addr)
        assert a.mapped_bytes == 0
        assert a.munmap_calls == 1

    def test_no_fragmentation_after_churn(self):
        """The arena's whole point: any alloc/free pattern returns all
        address space."""
        a = ArenaAllocator()
        rng = np.random.default_rng(0)
        live = []
        for _ in range(500):
            if rng.random() < 0.6 or not live:
                live.append(a.malloc(int(rng.integers(1, 10 ** 7))))
            else:
                a.free(live.pop(int(rng.integers(0, len(live)))))
        for addr in live:
            a.free(addr)
        assert a.mapped_bytes == 0
        assert a.fragmentation == 0.0

    def test_rounding_waste_bounded(self):
        a = ArenaAllocator(page_size=4096)
        a.malloc(1)
        assert a.fragmentation <= 1.0 - 1 / 4096

    def test_errors(self):
        a = ArenaAllocator()
        with pytest.raises(AllocationError):
            a.malloc(0)
        with pytest.raises(AllocationError):
            a.free(123)


class TestSizeClassPool:
    def test_alloc_free_reuse(self):
        p = SizeClassPool(chunk_slots=4)
        a = p.malloc(100)
        p.free(a)
        b = p.malloc(100)
        assert b == a  # slab slot reused
        assert p.live_objects == 1

    def test_footprint_bounded_by_high_water(self):
        p = SizeClassPool(chunk_slots=8)
        addrs = [p.malloc(64) for _ in range(32)]
        fp = p.footprint
        for a in addrs:
            p.free(a)
        for _ in range(10):  # churn at lower occupancy
            a = p.malloc(64)
            p.free(a)
        assert p.footprint == fp  # slab footprint never grows past peak

    def test_size_cap(self):
        p = SizeClassPool(max_size=1024)
        with pytest.raises(AllocationError):
            p.malloc(4096)

    def test_double_free_detected(self):
        p = SizeClassPool()
        a = p.malloc(64)
        p.free(a)
        with pytest.raises(AllocationError):
            p.free(a)

    def test_threaded_correctness(self):
        """8 threads churning the pool: every address unique among live
        allocations, all frees clean."""
        p = SizeClassPool(chunk_slots=16)
        errors = []

        def churn(seed):
            rng = np.random.default_rng(seed)
            live = []
            try:
                for _ in range(400):
                    if rng.random() < 0.55 or not live:
                        live.append(p.malloc(int(rng.integers(16, 512))))
                    else:
                        p.free(live.pop(int(rng.integers(0, len(live)))))
                for a in live:
                    p.free(a)
            except BaseException as e:  # pragma: no cover  # repro: allow(overbroad-except)
                errors.append(e)

        threads = [threading.Thread(target=churn, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert p.live_objects == 0

    def test_per_class_locks_remove_contention(self):
        """4 threads each in their own size class, with a real
        (GIL-releasing) critical section: the global lock piles up,
        the per-class pool never contends."""
        hold = 1e-4
        sizes = [17, 33, 65, 129]  # four distinct classes
        n_ops = 20

        def drive(allocator):
            def worker(size):
                live = []
                for _ in range(n_ops):
                    live.append(allocator.malloc(size))
                for a in live:
                    allocator.free(a)

            threads = [threading.Thread(target=worker, args=(s,)) for s in sizes]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return allocator.contended_acquires

        contended_lock = drive(GlobalLockAllocator(hold_time=hold))
        contended_pool = drive(SizeClassPool(hold_time=hold, chunk_slots=64))
        assert contended_lock > 0
        assert contended_pool == 0


class TestTracker:
    def test_per_tag_summary(self):
        t = AllocationTracker()
        t.record_alloc("mpi_buffer", 100, 1024)
        t.record_alloc("mpi_buffer", 200, 2048)
        t.record_free(100)
        s = t.summary()["mpi_buffer"]
        assert s.count == 2
        assert s.bytes_total == 3072
        assert s.bytes_peak_live == 3072
        assert t.live_allocations == 1

    def test_leak_report(self):
        t = AllocationTracker()
        t.record_alloc("metadata", 1, 64)
        assert t.leaked_by_tag() == {"metadata": 64}

    def test_errors(self):
        t = AllocationTracker()
        t.record_alloc("x", 1, 10)
        with pytest.raises(AllocationError):
            t.record_alloc("x", 1, 10)
        with pytest.raises(AllocationError):
            t.record_free(99)

    def test_compare_flags_superlinear_tags(self):
        small, big = AllocationTracker(), AllocationTracker()
        small.record_alloc("scales_fine", 1, 100)
        small.record_alloc("blows_up", 2, 100)
        big.record_alloc("scales_fine", 1, 200)   # 2x at 2x scale: fine
        big.record_alloc("blows_up", 2, 1000)     # 10x at 2x scale: flagged
        assert AllocationTracker.compare(small, big, scale_factor=2.0) == ["blows_up"]


class TestWorkloadReplay:
    @pytest.fixture(scope="class")
    def results(self):
        events = generate_trace(timesteps=25, seed=1)
        return {k: replay_trace(k, events) for k in ("glibc", "tcmalloc", "custom")}

    def test_custom_eliminates_fragmentation(self, results):
        assert results["custom"].fragmentation_factor < 1.02

    def test_ordering_matches_paper(self, results):
        """glibc worst, tcmalloc helps, custom (arena+pool) wins."""
        assert (
            results["custom"].fragmentation_factor
            < results["tcmalloc"].fragmentation_factor
            <= results["glibc"].fragmentation_factor
        )

    def test_glibc_persistent_overhead(self, results):
        """The heap holds substantially more address space than the
        application has live, for the whole run — the leak-like symptom.
        (The *unbounded* growth the paper saw additionally needs real
        glibc's binning pathologies; a clean first-fit model saturates,
        see DESIGN.md.)"""
        frag = results["glibc"].fragmentation_series
        n = len(frag)
        late_mean = sum(frag[n // 2:]) / (n - n // 2)
        assert late_mean > 1.3

    def test_custom_frag_flat_at_one(self, results):
        # skip sample 0: one live object against a freshly mapped slab
        # chunk is a cold-start artifact, not fragmentation
        frag = results["custom"].fragmentation_series[1:]
        assert max(frag) < 1.02

    def test_unknown_stack(self):
        with pytest.raises(AllocationError):
            AllocatorStack("jemalloc")

    def test_trace_is_deterministic(self):
        a = generate_trace(timesteps=3, seed=7)
        b = generate_trace(timesteps=3, seed=7)
        assert [(e.op, e.obj_id, e.size) for e in a] == [
            (e.op, e.obj_id, e.size) for e in b
        ]

    def test_nonoverlap_mode(self):
        events = generate_trace(timesteps=5, overlap=False, seed=2)
        r = replay_trace("glibc", events)
        assert r.final_footprint >= 0
