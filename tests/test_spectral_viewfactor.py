"""Tests for the enclosure view-factor solver.

Monte Carlo view factors against the analytic coaxial-rectangles
oracle, the constraint projection (exact reciprocity, unit row sums),
and the banded radiosity solve (isothermal black enclosure carries no
net flux; energy balance closes to round-off).
"""

import numpy as np
import pytest

from repro.radiation.constants import SIGMA_SB
from repro.radiation.spectral.model import SpectralModel
from repro.radiation.spectral.viewfactor import (
    NFACES,
    EnclosureScenario,
    band_emissive_power,
    enforce_constraints,
    face_areas,
    parallel_plates_view_factor,
    radiosity_solve,
    view_factor_matrix,
)
from repro.util.errors import ReproError
from repro.util.rng import RandomStreams

#: unit-cube opposite-face view factor (Modest config 38, a=b=c=1)
F_CUBE_OPPOSITE = 0.19982489569838746


class TestViewFactorMatrix:
    def test_analytic_oracle_value(self):
        assert parallel_plates_view_factor(1.0, 1.0, 1.0) == pytest.approx(
            F_CUBE_OPPOSITE, abs=1e-12
        )

    def test_mc_matches_analytic_on_unit_cube(self):
        f = view_factor_matrix((1.0, 1.0, 1.0), samples_per_face=40000)
        # opposite faces: (0,1), (2,3), (4,5)
        for i in range(0, NFACES, 2):
            assert f[i, i + 1] == pytest.approx(F_CUBE_OPPOSITE, abs=5e-3)
        # the four adjacent faces split the rest symmetrically
        adj = (1.0 - F_CUBE_OPPOSITE) / 4.0
        assert f[0, 2] == pytest.approx(adj, abs=5e-3)

    def test_rows_sum_to_one_and_diagonal_is_zero(self):
        f = view_factor_matrix((2.0, 1.0, 0.5), samples_per_face=5000)
        np.testing.assert_allclose(f.sum(axis=1), 1.0, atol=1e-12)
        np.testing.assert_array_equal(np.diag(f), 0.0)  # planar faces

    def test_seed_determinism(self):
        a = view_factor_matrix((1.0, 1.0, 1.0), samples_per_face=2000, seed=3)
        b = view_factor_matrix((1.0, 1.0, 1.0), samples_per_face=2000, seed=3)
        c = view_factor_matrix((1.0, 1.0, 1.0), samples_per_face=2000, seed=4)
        np.testing.assert_array_equal(a, b)
        assert np.max(np.abs(a - c)) > 0.0

    def test_external_streams_match_seed(self):
        a = view_factor_matrix((1.0, 1.0, 1.0), samples_per_face=2000, seed=5)
        b = view_factor_matrix(
            (1.0, 1.0, 1.0), samples_per_face=2000, streams=RandomStreams(5)
        )
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ReproError):
            view_factor_matrix((1.0, 1.0), samples_per_face=100)
        with pytest.raises(ReproError):
            view_factor_matrix((1.0, -1.0, 1.0), samples_per_face=100)
        with pytest.raises(ReproError):
            view_factor_matrix((1.0, 1.0, 1.0), samples_per_face=0)


class TestConstraintProjection:
    def test_reciprocity_exact_and_rows_near_one(self):
        dims = (2.0, 1.0, 0.5)
        areas = face_areas(dims)
        f = enforce_constraints(
            view_factor_matrix(dims, samples_per_face=5000), areas
        )
        s = areas[:, None] * f
        np.testing.assert_array_equal(s, s.T)  # reciprocity to the bit
        np.testing.assert_allclose(f.sum(axis=1), 1.0, atol=1e-12)

    def test_projection_moves_toward_analytic(self):
        dims = (1.0, 1.0, 1.0)
        raw = view_factor_matrix(dims, samples_per_face=5000)
        f = enforce_constraints(raw, face_areas(dims))
        assert f[0, 1] == pytest.approx(F_CUBE_OPPOSITE, abs=5e-3)

    def test_cube_symmetry(self):
        dims = (1.0, 1.0, 1.0)
        f = enforce_constraints(
            view_factor_matrix(dims, samples_per_face=20000), face_areas(dims)
        )
        opposite = [f[i, i + 1] for i in range(0, NFACES, 2)]
        assert max(opposite) - min(opposite) < 8e-3  # MC noise ~3e-3/pair

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            enforce_constraints(np.eye(4), np.ones(6))


class TestRadiosity:
    def constrained_cube(self):
        dims = (1.0, 1.0, 1.0)
        return enforce_constraints(
            view_factor_matrix(dims, samples_per_face=5000), face_areas(dims)
        )

    def test_isothermal_black_enclosure_has_no_net_flux(self):
        f = self.constrained_cube()
        temps = np.full(NFACES, 1000.0)
        eps = np.ones((NFACES, 1))
        emissive = SIGMA_SB * temps[:, None] ** 4
        j, q = radiosity_solve(f, eps, emissive)
        np.testing.assert_allclose(j, emissive, rtol=1e-12)
        np.testing.assert_allclose(q, 0.0, atol=1e-8)

    def test_band_emissive_power_sums_to_stefan_boltzmann(self):
        model = SpectralModel.build(bands=3, temperature=1200.0)
        temps = np.array([1500.0, 300.0, 900.0, 900.0, 900.0, 900.0])
        eb = band_emissive_power(model, temps)
        assert eb.shape == (NFACES, 3)
        np.testing.assert_allclose(
            eb.sum(axis=1), SIGMA_SB * temps ** 4, rtol=1e-9
        )

    def test_input_shape_validation(self):
        with pytest.raises(ReproError):
            radiosity_solve(np.eye(6), np.ones((6, 2)), np.ones((5, 2)))


class TestEnclosureScenario:
    def test_energy_balance_closes_to_roundoff(self):
        result = EnclosureScenario(samples_per_face=5000).solve()
        emitted = np.abs(result.face_power).sum()
        assert abs(result.energy_balance) < 1e-8 * emitted

    def test_hot_face_loses_cold_face_gains(self):
        result = EnclosureScenario(samples_per_face=5000).solve()
        assert result.flux[0] > 0.0   # 1500 K face: net emitter
        assert result.flux[1] < 0.0   # 300 K face: net absorber

    def test_spectral_walls_band_structure(self):
        model = SpectralModel.build(
            bands=3, temperature=1200.0, emissivity="ceramic"
        )
        result = EnclosureScenario(model=model, samples_per_face=5000).solve()
        assert result.band_flux.shape == (NFACES, 3)
        np.testing.assert_allclose(
            result.band_flux.sum(axis=1), result.flux, rtol=1e-12
        )
        assert abs(result.energy_balance) < 1e-8 * np.abs(result.face_power).sum()

    def test_solve_is_deterministic(self):
        a = EnclosureScenario(samples_per_face=2000).solve()
        b = EnclosureScenario(samples_per_face=2000).solve()
        np.testing.assert_array_equal(a.flux, b.flux)

    def test_validation(self):
        with pytest.raises(ReproError):
            EnclosureScenario(face_temperatures=(1.0, 2.0, 3.0))
        with pytest.raises(ReproError):
            EnclosureScenario(
                face_temperatures=(-1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
            )
