"""Tests for task declarations and task-graph compilation."""

import numpy as np
import pytest

from repro.grid import Box, Grid, decompose_level
from repro.dw import DataWarehouse, cc, per_level, reduction
from repro.runtime import Computes, Requires, Task, TaskContext, TaskGraph
from repro.util.errors import SchedulerError


def make_grid(n=8, patch=4):
    grid = Grid()
    level = grid.add_level(Box.cube(n), (1.0 / n,) * 3)
    decompose_level(level, (patch,) * 3)
    return grid


PHI = cc("phi")
PSI = cc("psi")
COARSE = per_level("coarse_phi")


def noop(ctx):
    pass


class TestTaskDeclaration:
    def test_valid(self):
        t = Task("init", noop, computes=[Computes(PHI)])
        assert t.name == "init" and not t.device

    def test_empty_name(self):
        with pytest.raises(SchedulerError):
            Task("", noop)

    def test_double_compute_label(self):
        with pytest.raises(SchedulerError):
            Task("t", noop, computes=[Computes(PHI), Computes(PHI)])

    def test_requires_validation(self):
        with pytest.raises(SchedulerError):
            Requires(PHI, dw="future")
        with pytest.raises(SchedulerError):
            Requires(PHI, num_ghost=-1)
        with pytest.raises(SchedulerError):
            Requires(COARSE)  # PER_LEVEL needs level_index


class TestCompile:
    def test_detailed_task_per_patch(self):
        grid = make_grid()
        tg = TaskGraph(grid)
        tg.add_task(Task("init", noop, computes=[Computes(PHI)]), level_index=0)
        graph = tg.compile()
        assert len(graph.detailed_tasks) == 8
        assert not graph.messages

    def test_ghost_dependencies_link_neighbors(self):
        grid = make_grid()
        tg = TaskGraph(grid)
        tg.add_task(Task("init", noop, computes=[Computes(PHI)]), 0)
        tg.add_task(
            Task("smooth", noop, requires=[Requires(PHI, num_ghost=1)],
                 computes=[Computes(PSI)]),
            0,
        )
        graph = tg.compile()
        smooth_tasks = [t for t in graph.detailed_tasks if t.task.name == "smooth"]
        # each smooth patch depends on its own init plus all face/edge/corner
        # neighbours: interior 2x2x2 decomposition -> all 8 init tasks
        for t in smooth_tasks:
            assert len(t.internal_deps) == 8

    def test_no_ghost_only_self_dependency(self):
        grid = make_grid()
        tg = TaskGraph(grid)
        tg.add_task(Task("init", noop, computes=[Computes(PHI)]), 0)
        tg.add_task(
            Task("copy", noop, requires=[Requires(PHI)], computes=[Computes(PSI)]), 0
        )
        graph = tg.compile()
        for t in graph.detailed_tasks:
            if t.task.name == "copy":
                assert len(t.internal_deps) == 1

    def test_old_dw_requires_make_no_edges(self):
        grid = make_grid()
        tg = TaskGraph(grid)
        tg.add_task(
            Task("advance", noop, requires=[Requires(PHI, dw="old", num_ghost=2)],
                 computes=[Computes(PHI)]),
            0,
        )
        graph = tg.compile()
        assert all(not t.internal_deps for t in graph.detailed_tasks)

    def test_cycle_detected(self):
        grid = make_grid()
        tg = TaskGraph(grid)
        tg.add_task(
            Task("a", noop, requires=[Requires(PSI)], computes=[Computes(PHI)]), 0
        )
        tg.add_task(
            Task("b", noop, requires=[Requires(PHI)], computes=[Computes(PSI)]), 0
        )
        with pytest.raises(SchedulerError):
            tg.compile()

    def test_missing_level_producer(self):
        grid = make_grid()
        tg = TaskGraph(grid)
        tg.add_task(
            Task("use", noop, requires=[Requires(COARSE, level_index=0)],
                 computes=[Computes(PHI)]),
            0,
        )
        with pytest.raises(SchedulerError):
            tg.compile()

    def test_empty_graph(self):
        with pytest.raises(SchedulerError):
            TaskGraph(make_grid()).compile()

    def test_level_task_instantiated_once(self):
        grid = make_grid()
        tg = TaskGraph(grid)
        tg.add_task(Task("init", noop, computes=[Computes(PHI)]), 0)
        tg.add_level_task(
            Task("coarsen", noop, requires=[Requires(PHI)],
                 computes=[Computes(COARSE, level_index=0)]),
            0,
        )
        graph = tg.compile()
        coarsen = [t for t in graph.detailed_tasks if t.task.name == "coarsen"]
        assert len(coarsen) == 1
        assert len(coarsen[0].internal_deps) == 8  # needs every patch

    def test_level_var_computed_twice_rejected(self):
        grid = make_grid()
        tg = TaskGraph(grid)
        tg.add_level_task(Task("c1", noop, computes=[Computes(COARSE, level_index=0)]), 0)
        tg.add_level_task(Task("c2", noop, computes=[Computes(COARSE, level_index=0)]), 0)
        with pytest.raises(SchedulerError):
            tg.compile()


class TestDistributedCompile:
    def assignment(self, grid, num_ranks):
        return {p.patch_id: p.patch_id % num_ranks for p in grid.level(0).patches}

    def test_cross_rank_messages_generated(self):
        grid = make_grid()
        tg = TaskGraph(grid)
        tg.add_task(Task("init", noop, computes=[Computes(PHI)]), 0)
        tg.add_task(
            Task("smooth", noop, requires=[Requires(PHI, num_ghost=1)],
                 computes=[Computes(PSI)]),
            0,
        )
        graph = tg.compile(assignment=self.assignment(grid, 2), num_ranks=2)
        assert graph.messages
        for m in graph.messages:
            assert m.src_rank != m.dst_rank
            assert not m.region.empty

    def test_message_volume_shrinks_with_locality(self):
        """An SFC-style assignment (contiguous halves) moves fewer ghost
        bytes than round-robin scattering."""
        grid = make_grid(n=16, patch=4)  # 64 patches
        patches = grid.level(0).patches

        def build(assign):
            tg = TaskGraph(grid)
            tg.add_task(Task("init", noop, computes=[Computes(PHI)]), 0)
            tg.add_task(
                Task("smooth", noop, requires=[Requires(PHI, num_ghost=1)],
                     computes=[Computes(PSI)]),
                0,
            )
            return tg.compile(assignment=assign, num_ranks=2)

        contiguous = {p.patch_id: (0 if p.box.lo[0] < 8 else 1) for p in patches}
        scattered = {p.patch_id: p.patch_id % 2 for p in patches}
        assert (
            build(contiguous).total_message_bytes
            < build(scattered).total_message_bytes
        )

    def test_level_broadcast_deduplicated_per_rank(self):
        """The coarse level variable crosses to each rank exactly once,
        however many consumer patches live there."""
        grid = make_grid(n=8, patch=2)  # 64 patches
        tg = TaskGraph(grid)
        tg.add_level_task(
            Task("coarsen", noop, computes=[Computes(COARSE, level_index=0)]), 0
        )
        tg.add_task(
            Task("trace", noop, requires=[Requires(COARSE, level_index=0)],
                 computes=[Computes(PHI)]),
            0,
        )
        assign = {p.patch_id: p.patch_id % 4 for p in grid.level(0).patches}
        # the pseudo-patch of the level task defaults to rank 0
        graph = tg.compile(assignment=assign, num_ranks=4)
        level_msgs = [m for m in graph.messages if m.label.name == "coarse_phi"]
        assert len(level_msgs) == 3  # ranks 1..3; rank 0 has it locally

    def test_bad_rank_assignment(self):
        grid = make_grid()
        tg = TaskGraph(grid)
        tg.add_task(Task("init", noop, computes=[Computes(PHI)]), 0)
        with pytest.raises(SchedulerError):
            tg.compile(assignment={0: 5}, num_ranks=2)


class TestTaskContext:
    def test_undeclared_read_rejected(self):
        grid = make_grid()
        patch = grid.level(0).patches[0]
        dw = DataWarehouse()
        ctx = TaskContext(Task("t", noop), patch, grid.level(0), None, dw)
        with pytest.raises(SchedulerError):
            ctx.require(PHI)

    def test_undeclared_write_rejected(self):
        grid = make_grid()
        patch = grid.level(0).patches[0]
        ctx = TaskContext(Task("t", noop), patch, grid.level(0), None, DataWarehouse())
        with pytest.raises(SchedulerError):
            ctx.compute(PHI, np.zeros(patch.box.extent))

    def test_ghost_overdraw_rejected(self):
        grid = make_grid()
        patch = grid.level(0).patches[0]
        task = Task("t", noop, requires=[Requires(PHI, num_ghost=1)])
        ctx = TaskContext(task, patch, grid.level(0), None, DataWarehouse())
        with pytest.raises(SchedulerError):
            ctx.require(PHI, num_ghost=2)

    def test_wrong_shape_compute_rejected(self):
        grid = make_grid()
        patch = grid.level(0).patches[0]
        task = Task("t", noop, computes=[Computes(PHI)])
        ctx = TaskContext(task, patch, grid.level(0), None, DataWarehouse())
        with pytest.raises(SchedulerError):
            ctx.compute(PHI, np.zeros((2, 2, 2)))

    def test_old_dw_missing_rejected(self):
        grid = make_grid()
        patch = grid.level(0).patches[0]
        task = Task("t", noop, requires=[Requires(PHI, dw="old")])
        ctx = TaskContext(task, patch, grid.level(0), None, DataWarehouse())
        with pytest.raises(SchedulerError):
            ctx.require(PHI)

    def test_reduction_compute(self):
        grid = make_grid()
        patch = grid.level(0).patches[0]
        lbl = reduction("total")
        task = Task("t", noop, computes=[Computes(lbl)])
        dw = DataWarehouse()
        ctx = TaskContext(task, patch, grid.level(0), None, dw)
        ctx.compute_reduction(lbl, 3.0)
        assert dw.get_reduction(lbl).value == 3.0
