"""Tests for the streaming anomaly detectors: each detector vs
synthetic ground truth (step change, slow drift, counter reset,
flat-line stall), false-positive bounds on seeded noise, and the
DetectorBank's routing, hold window, derived cache ratio, and store
replay."""

import math

import numpy as np
import pytest

from repro.perf.detect import (
    CACHE_HIT_RATIO,
    CounterStall,
    Cusum,
    Detection,
    DetectorBank,
    EwmaBand,
    QuantileDrift,
    default_bank,
    default_rules,
    scan_store,
    severity_rank,
    worst_severity,
)
from repro.perf.tsdb import TimeSeriesStore
from repro.util.errors import PerfError
from repro.util.rng import spawn_stream


def feed(det, values, t0=0.0, context=None):
    """Feed a value sequence; returns (index, detection) pairs."""
    det.bind(det.series or "x")
    out = []
    for i, v in enumerate(values):
        d = det.observe(t0 + float(i), v, context=context)
        if d is not None:
            out.append((i, d))
    return out


def noise(n, loc=1.0, scale=0.02, seed=7):
    gen = spawn_stream(seed, 4242)
    return list(loc + scale * gen.standard_normal(n))


# ----------------------------------------------------------------------
# severity helpers
# ----------------------------------------------------------------------
class TestSeverity:
    def test_rank_order(self):
        assert severity_rank("info") < severity_rank("warn") < severity_rank(
            "critical")

    def test_unknown_rejected(self):
        with pytest.raises(PerfError):
            severity_rank("meltdown")

    def test_worst(self):
        assert worst_severity([]) is None
        assert worst_severity(["info", "critical", "warn"]) == "critical"
        assert worst_severity(["info", "info"]) == "info"


# ----------------------------------------------------------------------
# ground truth: step change
# ----------------------------------------------------------------------
class TestEwmaBand:
    def test_step_change_fires(self):
        values = noise(30) + [5.0] * 5  # step from ~1.0 to 5.0
        hits = feed(EwmaBand(), values)
        assert hits, "step change must break the band"
        first_idx, first = hits[0]
        assert first_idx >= 30  # not before the step
        assert first.severity in ("warn", "critical")
        assert first.evidence["z"] >= 6.0
        assert "above" in first.message

    def test_quiet_on_seeded_noise(self):
        # false-positive bound: pure stationary noise never alarms
        assert feed(EwmaBand(), noise(400, seed=11)) == []

    def test_warmup_never_alarms(self):
        # a wild warmup sequence is learning, not alarming
        det = EwmaBand(warmup=8)
        assert feed(det, [0.0, 100.0, -50.0, 25.0, 3.0, 7.0, 4.0, 5.0]) == []

    def test_sustained_shift_keeps_registering(self):
        # slow adaptation through anomalies: a persistent step keeps
        # firing rather than instantly becoming the new normal
        values = noise(20) + [8.0] * 10
        hits = feed(EwmaBand(), values)
        assert len(hits) >= 3

    def test_validates_params(self):
        with pytest.raises(PerfError):
            EwmaBand(alpha=0.0)
        with pytest.raises(PerfError):
            EwmaBand(k_warn=9.0, k_crit=6.0)

    def test_deviation_floor_suppresses_microjitter(self):
        # a series flat at 100 +- 1e-7 must not alarm on 1e-6 moves
        values = [100.0] * 20 + [100.000001] * 5
        assert feed(EwmaBand(), values) == []


# ----------------------------------------------------------------------
# ground truth: slow drift
# ----------------------------------------------------------------------
class TestCusum:
    def test_slow_drift_fires(self):
        # drift of +1.5% of the mean per sample: too small for the
        # band test, but CUSUM accumulates it
        base = noise(30, loc=1.0, scale=0.01, seed=3)
        drifting = [1.0 + 0.015 * i for i in range(40)]
        hits = feed(Cusum(), base + drifting)
        assert hits, "slow drift must trip the changepoint detector"
        idx, det = hits[0]
        assert idx >= 30
        assert "upward" in det.message

    def test_band_misses_the_same_drift(self):
        # the reason Cusum exists: the instantaneous band test stays
        # quiet on the drift Cusum catches (EWMA tracks the ramp)
        base = noise(30, loc=1.0, scale=0.01, seed=3)
        drifting = [1.0 + 0.015 * i for i in range(40)]
        assert feed(EwmaBand(), base + drifting) == []

    def test_downward_drift_reports_direction(self):
        base = noise(20, loc=2.0, scale=0.01, seed=9)
        falling = [2.0 - 0.03 * i for i in range(40)]
        hits = feed(Cusum(), base + falling)
        assert hits
        assert "downward" in hits[0][1].message

    def test_rebases_after_alarm(self):
        # after the alarm the baseline moves to the new regime, so a
        # *stable* new level stops alarming (re-armed, not latched)
        base = [1.0] * 10
        stepped = [3.0] * 60
        hits = feed(Cusum(), base + stepped)
        assert hits
        # allow the re-armed detector to fire on the step again at
        # most a couple of times, never continuously
        assert len(hits) <= 4

    def test_quiet_on_seeded_noise(self):
        assert feed(Cusum(), noise(400, seed=13)) == []


# ----------------------------------------------------------------------
# ground truth: flat-line stall + counter reset
# ----------------------------------------------------------------------
class TestCounterStall:
    def test_stall_with_pending_work_fires(self):
        det = CounterStall(stall_samples=3, pending_field="queue")
        values = [0.0, 5.0, 9.0] + [9.0] * 6
        hits = feed(det, values, context={"queue": 4.0})
        assert hits
        idx, d = hits[0]
        assert idx >= 5  # grew through 2, then 3 flat samples
        assert d.evidence["pending"] == 4.0
        assert "stalled" in d.message

    def test_idle_flatline_is_healthy(self):
        # flat counter with an empty queue is idle, not wedged
        det = CounterStall(stall_samples=3, pending_field="queue")
        values = [0.0, 5.0, 9.0] + [9.0] * 10
        assert feed(det, values, context={"queue": 0.0}) == []

    def test_counter_reset_rearms_instead_of_alarming(self):
        # ground truth: a restart (counter decrease) must not read as
        # a stall — the detector re-arms and needs fresh growth
        det = CounterStall(stall_samples=3, pending_field="queue")
        values = [0.0, 50.0, 2.0] + [2.0] * 10
        assert feed(det, values, context={"queue": 9.0}) == []

    def test_never_grew_never_alarms(self):
        det = CounterStall(stall_samples=2, pending_field="queue")
        assert feed(det, [7.0] * 12, context={"queue": 5.0}) == []

    def test_escalates_to_critical(self):
        det = CounterStall(stall_samples=2, pending_field="queue")
        values = [0.0, 1.0] + [1.0] * 8
        hits = feed(det, values, context={"queue": 2.0})
        assert hits[0][1].severity == "warn"
        assert hits[-1][1].severity == "critical"

    def test_no_pending_field_fires_unconditionally(self):
        det = CounterStall(stall_samples=2)
        assert feed(det, [0.0, 3.0, 3.0, 3.0])


# ----------------------------------------------------------------------
# ground truth: quantile drift (latency up, hit-ratio down)
# ----------------------------------------------------------------------
class TestQuantileDrift:
    def test_latency_inflation_fires_critical(self):
        det = QuantileDrift(direction="up", baseline_samples=4)
        values = [0.05, 0.06, 0.05, 0.055] + [0.4] * 6
        hits = feed(det, values)
        assert hits
        assert hits[-1][1].severity == "critical"
        assert hits[-1][1].evidence["ratio"] >= 5.0
        assert "inflated" in hits[-1][1].message

    def test_hit_ratio_collapse_fires(self):
        det = QuantileDrift(direction="down", baseline_samples=4,
                            min_abs=0.05, ratio_warn=2.0, ratio_crit=4.0)
        values = [1.0, 0.95, 1.0, 0.9] + [0.0] * 6
        hits = feed(det, values)
        assert hits
        assert hits[-1][1].severity == "critical"
        assert "collapsed" in hits[-1][1].message

    def test_zero_baseline_down_never_fires(self):
        # a cold cache (baseline ratio ~0) has nothing to collapse
        # from; direction=down must stay quiet, not divide by zero
        det = QuantileDrift(direction="down", baseline_samples=4,
                            min_abs=0.05)
        assert feed(det, [0.0] * 20) == []

    def test_quiet_on_seeded_noise(self):
        det = QuantileDrift(direction="up", baseline_samples=6)
        assert feed(det, noise(300, loc=0.1, scale=0.005, seed=21)) == []

    def test_validates_direction(self):
        with pytest.raises(PerfError):
            QuantileDrift(direction="sideways")


# ----------------------------------------------------------------------
# the bank
# ----------------------------------------------------------------------
class TestDetectorBank:
    def test_routes_by_pattern_and_caches(self):
        bank = DetectorBank([("slo.*.p95_s",
                              lambda: QuantileDrift(baseline_samples=2))])
        for i in range(3):
            bank.observe({"t": float(i), "slo.solve.p95_s": 0.1,
                          "unrelated": 5.0})
        assert set(bank._routes) == {"t", "slo.solve.p95_s", "unrelated"}
        assert bank._routes["unrelated"] == []
        assert len(bank._routes["slo.solve.p95_s"]) == 1
        assert bank.observed == 3

    def test_timestamp_never_routes_even_on_wildcard(self):
        bank = DetectorBank([("*", lambda: EwmaBand())])
        bank.observe({"t": 5.0, "x": 1.0})
        assert bank._routes["t"] == []
        assert len(bank._routes["x"]) == 1

    def test_detection_lands_in_active_set(self):
        bank = DetectorBank(
            [("lat", lambda: QuantileDrift(baseline_samples=2))], hold_s=50.0)
        for i, v in enumerate([0.1, 0.1, 1.0, 1.0, 1.0]):
            bank.observe({"t": float(i), "lat": v})
        active = bank.active()
        assert active and active[0].series == "lat"
        assert bank.worst() in ("warn", "critical")
        doc = bank.as_dict()
        assert doc["worst"] == bank.worst()
        assert doc["emitted"] == len(
            bank.detections) == bank.emitted
        # round-trips through the status document
        assert Detection.from_dict(doc["active"][0]).series == "lat"

    def test_hold_window_expires(self):
        bank = DetectorBank(
            [("lat", lambda: QuantileDrift(baseline_samples=2))], hold_s=10.0)
        for i, v in enumerate([0.1, 0.1, 1.0]):
            bank.observe({"t": float(i), "lat": v})
        assert bank.active(now=2.0)
        assert bank.active(now=100.0) == []
        assert bank.worst(now=100.0) is None

    def test_nonnumeric_and_bool_fields_skipped(self):
        # routing is by name, but bool/str/non-finite VALUES must
        # never reach a detector
        bank = DetectorBank([("*", lambda: EwmaBand())])
        for i in range(4):
            bank.observe({"t": float(i), "flag": True, "name": "x",
                          "inf": math.inf, "ok": 1.0})
        assert bank._routes["ok"][0]._n == 4
        for skipped in ("flag", "name", "inf"):
            assert bank._routes[skipped][0]._n == 0

    def test_derived_hit_ratio_and_reset_clamp(self):
        bank = DetectorBank([], derive_cache_ratio=True)
        seen = []

        def snap(hits_mem, hits_disk, misses, t):
            bank.observe({
                "t": t,
                "service.cache.hits{tier=memory}": hits_mem,
                "service.cache.hits{tier=disk}": hits_disk,
                "service.cache.misses": misses,
            })
            route = bank._derive({
                "service.cache.hits{tier=memory}": hits_mem,
                "service.cache.hits{tier=disk}": hits_disk,
                "service.cache.misses": misses,
            })
            return route

        bank.observe({"t": 0.0, "service.cache.hits{tier=memory}": 0.0,
                      "service.cache.misses": 0.0})
        out = bank._derive({"service.cache.hits{tier=memory}": 4.0,
                            "service.cache.hits{tier=disk}": 1.0,
                            "service.cache.misses": 5.0})
        # deltas: +5 hits, +5 misses -> ratio 0.5
        assert out[CACHE_HIT_RATIO] == pytest.approx(0.5)
        # a restart: counters go backwards -> absolute values ARE the
        # deltas since restart (clamp, don't emit garbage)
        out = bank._derive({"service.cache.hits{tier=memory}": 1.0,
                            "service.cache.misses": 3.0})
        assert out[CACHE_HIT_RATIO] == pytest.approx(0.25)

    def test_derived_ratio_feeds_detectors(self):
        bank = default_bank("serve")
        t = 0.0
        hits = 0.0
        # healthy: every sample adds hits (ratio 1.0) x8 baseline
        for _ in range(8):
            hits += 2.0
            bank.observe({"t": t,
                          "service.cache.hits{tier=disk}": hits,
                          "service.cache.misses": 0.0})
            t += 1.0
        # poisoned: only misses advance
        misses = 0.0
        for _ in range(6):
            misses += 2.0
            bank.observe({"t": t,
                          "service.cache.hits{tier=disk}": hits,
                          "service.cache.misses": misses})
            t += 1.0
        series = {d.series for d in bank.detections}
        assert CACHE_HIT_RATIO in series
        worst = [d for d in bank.detections if d.series == CACHE_HIT_RATIO]
        assert worst[-1].severity == "critical"

    def test_default_rules_validate_kind(self):
        with pytest.raises(PerfError):
            default_rules("orchestra")
        assert default_rules("serve")
        assert default_rules("fabric")

    def test_scan_store_replays_history(self, tmp_path):
        store = TimeSeriesStore(tmp_path, rank=0, retention=256)
        for i in range(8):
            store.append({"slo.solve.p95_s": 0.05}, t=float(i))
        for i in range(8, 14):
            store.append({"slo.solve.p95_s": 0.5}, t=float(i))
        bank, detections = scan_store(store, kind="serve")
        assert detections
        assert detections[-1].detector == "quantile-drift"
        assert detections[-1].severity == "critical"
        # infinite hold: postmortem active set keeps everything
        assert bank.active(now=1e12)

    def test_compaction_seam_no_phantom_detections(self, tmp_path):
        # ring compaction drops oldest samples; replaying the
        # compacted file must not invent detections a full replay
        # would not have produced at those timestamps
        store = TimeSeriesStore(tmp_path, rank=0, retention=16)
        gen = spawn_stream(5, 99)
        for i in range(64):  # several compactions deep
            store.append(
                {"slo.solve.p95_s": 0.1 + 0.002 * float(gen.standard_normal())},
                t=float(i),
            )
        _, detections = scan_store(store, kind="serve")
        assert detections == []

    def test_counter_stall_rule_sees_pending_context(self):
        bank = default_bank("serve")
        served = 5.0
        for i in range(3):
            bank.observe({"t": float(i), "served": served + i,
                          "outstanding": 2.0})
        for i in range(3, 12):
            bank.observe({"t": float(i), "served": 7.0, "outstanding": 2.0})
        stalls = [d for d in bank.detections if d.detector == "counter-stall"]
        assert stalls and stalls[0].series == "served"


# ----------------------------------------------------------------------
# false-positive bound on a realistic healthy serve trace
# ----------------------------------------------------------------------
class TestFalsePositiveBound:
    def test_healthy_synthetic_serve_trace_stays_quiet(self):
        bank = default_bank("serve")
        gen = spawn_stream(17, 1234)
        hits, misses, served = 0.0, 0.0, 0.0
        emitted = 0
        for i in range(500):
            served += float(gen.integers(1, 4))
            hits += float(gen.integers(1, 4))
            if gen.random() < 0.1:
                misses += 1.0
            bank.observe({
                "t": float(i),
                "served": served,
                "outstanding": float(gen.integers(0, 3)),
                "slo.queue_depth": float(gen.integers(0, 3)),
                "slo.solve.p95_s": 0.1 + 0.004 * float(gen.standard_normal()),
                "slo.solve.p99_s": 0.15 + 0.006 * float(gen.standard_normal()),
                "slo.solve.error_rate": 0.0,
                "service.cache.hits{tier=memory}": hits,
                "service.cache.misses": misses,
            })
            emitted += 0
        assert bank.emitted == 0, [d.message for d in bank.detections]
