"""Scheduler integration tests: serial == threaded == distributed, plus
the GPU scheduler's staging/accounting behaviour."""

import numpy as np
import pytest

from repro.grid import Box, Grid, decompose_level
from repro.dw import DataWarehouse, GPUDataWarehouse, cc, per_level
from repro.runtime import (
    Computes,
    DistributedScheduler,
    GPUScheduler,
    Requires,
    SerialScheduler,
    Task,
    TaskGraph,
    ThreadedScheduler,
    gather_cc,
)
from repro.util.errors import SchedulerError

PHI = cc("phi")
PSI = cc("psi")
COARSE = per_level("coarse_phi")


def make_grid(n=8, patch=4):
    grid = Grid()
    level = grid.add_level(Box.cube(n), (1.0 / n,) * 3)
    decompose_level(level, (patch,) * 3)
    return grid


def init_cb(ctx):
    """phi(i,j,k) = i + 10j + 100k over the patch."""
    b = ctx.patch.box
    i, j, k = np.meshgrid(
        np.arange(b.lo[0], b.hi[0]),
        np.arange(b.lo[1], b.hi[1]),
        np.arange(b.lo[2], b.hi[2]),
        indexing="ij",
    )
    ctx.compute(PHI, (i + 10.0 * j + 100.0 * k).astype(float))


def smooth_cb(ctx):
    """psi = 6-point neighbour average of phi (ghost=1, walls -> 0)."""
    phi = ctx.require(PHI, default=0.0)
    core = phi[1:-1, 1:-1, 1:-1]
    psi = (
        phi[:-2, 1:-1, 1:-1] + phi[2:, 1:-1, 1:-1]
        + phi[1:-1, :-2, 1:-1] + phi[1:-1, 2:, 1:-1]
        + phi[1:-1, 1:-1, :-2] + phi[1:-1, 1:-1, 2:]
    ) / 6.0
    ctx.compute(PSI, psi + 0 * core)


def build_stencil_graph(grid, assignment=None, num_ranks=1):
    tg = TaskGraph(grid)
    tg.add_task(Task("init", init_cb, computes=[Computes(PHI)]), 0)
    tg.add_task(
        Task("smooth", smooth_cb, requires=[Requires(PHI, num_ghost=1)],
             computes=[Computes(PSI)]),
        0,
    )
    return tg.compile(assignment=assignment, num_ranks=num_ranks)


def reference_psi(n):
    i, j, k = np.meshgrid(*[np.arange(n)] * 3, indexing="ij")
    phi = (i + 10.0 * j + 100.0 * k).astype(float)
    padded = np.zeros((n + 2, n + 2, n + 2))
    padded[1:-1, 1:-1, 1:-1] = phi
    return (
        padded[:-2, 1:-1, 1:-1] + padded[2:, 1:-1, 1:-1]
        + padded[1:-1, :-2, 1:-1] + padded[1:-1, 2:, 1:-1]
        + padded[1:-1, 1:-1, :-2] + padded[1:-1, 1:-1, 2:]
    ) / 6.0


def collect_psi(grid, dw):
    level = grid.level(0)
    out = np.zeros(level.domain_box.extent)
    for p in level.patches:
        out[p.box.slices()] = dw.get(PSI, p.patch_id).view(p.box)
    return out


class TestSerial:
    def test_stencil_correct(self):
        grid = make_grid()
        dw = SerialScheduler().execute(build_stencil_graph(grid))
        np.testing.assert_allclose(collect_psi(grid, dw), reference_psi(8))

    def test_rejects_multirank_graph(self):
        grid = make_grid()
        assign = {p.patch_id: p.patch_id % 2 for p in grid.level(0).patches}
        graph = build_stencil_graph(grid, assignment=assign, num_ranks=2)
        with pytest.raises(SchedulerError):
            SerialScheduler().execute(graph)

    def test_callback_exception_propagates(self):
        grid = make_grid()
        tg = TaskGraph(grid)

        def boom(ctx):
            raise ValueError("kaboom")

        tg.add_task(Task("boom", boom, computes=[Computes(PHI)]), 0)
        with pytest.raises(ValueError):
            SerialScheduler().execute(tg.compile())


class TestThreaded:
    @pytest.mark.parametrize("threads", [1, 4, 8])
    def test_matches_serial(self, threads):
        grid = make_grid()
        dw = ThreadedScheduler(num_threads=threads).execute(build_stencil_graph(grid))
        np.testing.assert_allclose(collect_psi(grid, dw), reference_psi(8))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_shuffled_order_same_result(self, seed):
        """Out-of-order execution (Uintah's dynamic scheduling) cannot
        change the answer — dependencies fully order the data flow."""
        grid = make_grid(n=12, patch=4)
        dw = ThreadedScheduler(num_threads=6, shuffle=True, seed=seed).execute(
            build_stencil_graph(grid)
        )
        np.testing.assert_allclose(collect_psi(grid, dw), reference_psi(12))

    def test_worker_exception_propagates(self):
        grid = make_grid()
        tg = TaskGraph(grid)

        def boom(ctx):
            raise RuntimeError("thread kaboom")

        tg.add_task(Task("boom", boom, computes=[Computes(PHI)]), 0)
        with pytest.raises(RuntimeError):
            ThreadedScheduler(num_threads=4).execute(tg.compile())

    def test_bad_thread_count(self):
        with pytest.raises(SchedulerError):
            ThreadedScheduler(num_threads=0)


class TestDistributed:
    @pytest.mark.parametrize("num_ranks", [1, 2, 4, 8])
    @pytest.mark.parametrize("pool_kind", ["waitfree", "locked"])
    def test_matches_serial(self, num_ranks, pool_kind):
        grid = make_grid()
        assign = {p.patch_id: p.patch_id % num_ranks for p in grid.level(0).patches}
        graph = build_stencil_graph(grid, assignment=assign, num_ranks=num_ranks)
        sched = DistributedScheduler(num_ranks, pool_kind=pool_kind)
        rank_dws = sched.execute(graph)
        psi = gather_cc(graph, rank_dws, PSI, 0)
        np.testing.assert_allclose(psi, reference_psi(8))

    def test_level_broadcast_workflow(self):
        """init -> level coarsen -> per-patch consumer across 4 ranks:
        the PER_LEVEL broadcast path end to end."""
        grid = make_grid(n=8, patch=4)

        def coarsen_cb(ctx):
            phi = ctx.require(PHI)  # whole level (pseudo patch)
            ctx.compute_level(COARSE, phi.reshape(4, 2, 4, 2, 4, 2).mean(axis=(1, 3, 5)))

        def consume_cb(ctx):
            coarse = ctx.require_level(COARSE)
            ctx.compute(PSI, np.full(ctx.patch.box.extent, float(coarse.sum())))

        tg = TaskGraph(grid)
        tg.add_task(Task("init", init_cb, computes=[Computes(PHI)]), 0)
        tg.add_level_task(
            Task("coarsen", coarsen_cb, requires=[Requires(PHI)],
                 computes=[Computes(COARSE, level_index=0)]),
            0,
        )
        tg.add_task(
            Task("consume", consume_cb,
                 requires=[Requires(COARSE, level_index=0)],
                 computes=[Computes(PSI)]),
            0,
        )
        assign = {p.patch_id: p.patch_id % 4 for p in grid.level(0).patches}
        graph = tg.compile(assignment=assign, num_ranks=4)
        rank_dws = DistributedScheduler(4).execute(graph)
        psi = gather_cc(graph, rank_dws, PSI, 0)
        # every patch sees the same coarse sum
        i, j, k = np.meshgrid(*[np.arange(8)] * 3, indexing="ij")
        expected = (i + 10.0 * j + 100.0 * k).reshape(4, 2, 4, 2, 4, 2).mean(
            axis=(1, 3, 5)
        ).sum()
        np.testing.assert_allclose(psi, expected)

    def test_fabric_quiescent_after_run(self):
        grid = make_grid()
        assign = {p.patch_id: p.patch_id % 2 for p in grid.level(0).patches}
        graph = build_stencil_graph(grid, assignment=assign, num_ranks=2)
        sched = DistributedScheduler(2)
        sched.execute(graph)
        assert sched.fabric.quiescent()

    def test_rank_mismatch_rejected(self):
        grid = make_grid()
        graph = build_stencil_graph(grid)
        with pytest.raises(SchedulerError):
            DistributedScheduler(4).execute(graph)


class TestGPUScheduler:
    def build_gpu_graph(self, grid, device=True):
        tg = TaskGraph(grid)
        tg.add_task(Task("init", init_cb, computes=[Computes(PHI)]), 0)

        def coarsen_cb(ctx):
            ctx.compute_level(COARSE, np.ones((2, 2, 2)))

        tg.add_level_task(
            Task("coarsen", coarsen_cb, computes=[Computes(COARSE, level_index=0)]), 0
        )

        def gpu_smooth(ctx):
            phi = ctx.device_require(PHI) if device else ctx.require(PHI, default=0.0)
            coarse = ctx.device_require_level(COARSE) if device else ctx.require_level(COARSE)
            core = phi[1:-1, 1:-1, 1:-1]
            psi = (
                phi[:-2, 1:-1, 1:-1] + phi[2:, 1:-1, 1:-1]
                + phi[1:-1, :-2, 1:-1] + phi[1:-1, 2:, 1:-1]
                + phi[1:-1, 1:-1, :-2] + phi[1:-1, 1:-1, 2:]
            ) / 6.0 + 0 * core * float(coarse[0, 0, 0] - 1.0)
            ctx.compute(PSI, psi)

        tg.add_task(
            Task(
                "gpu_smooth",
                gpu_smooth,
                requires=[
                    Requires(PHI, num_ghost=1),
                    Requires(COARSE, level_index=0),
                ],
                computes=[Computes(PSI)],
                device=device,
            ),
            0,
        )
        return tg.compile()

    def test_device_result_matches_reference(self):
        grid = make_grid()
        sched = GPUScheduler()
        dw = sched.execute(self.build_gpu_graph(grid))
        np.testing.assert_allclose(collect_psi(grid, dw), reference_psi(8))

    def test_level_db_uploaded_once(self):
        grid = make_grid(n=8, patch=2)  # 64 device tasks share the level var
        gpu = GPUDataWarehouse(use_level_db=True)
        sched = GPUScheduler(gpu=gpu)
        sched.execute(self.build_gpu_graph(grid))
        assert sched.stats.level_uploads == 1
        assert gpu.resident_summary()["level_db_entries"] == 1

    def test_legacy_mode_uploads_per_task(self):
        grid = make_grid(n=8, patch=2)
        gpu = GPUDataWarehouse(use_level_db=False)
        sched = GPUScheduler(gpu=gpu, max_in_flight=4)
        sched.execute(self.build_gpu_graph(grid))
        # 64 tasks x one level copy each
        level_bytes = 8 * 2 ** 3
        assert gpu.stats.h2d_bytes >= 64 * level_bytes

    def test_d2h_accounting(self):
        grid = make_grid()
        sched = GPUScheduler()
        dw = sched.execute(self.build_gpu_graph(grid))
        psi_bytes = sum(dw.get(PSI, p.patch_id).nbytes for p in grid.level(0).patches)
        assert sched.stats.d2h_bytes == psi_bytes

    def test_in_flight_bounded(self):
        grid = make_grid(n=8, patch=2)
        sched = GPUScheduler(max_in_flight=3)
        sched.execute(self.build_gpu_graph(grid))
        assert sched.stats.peak_resident_tasks <= 3

    def test_streams_round_robin(self):
        grid = make_grid(n=8, patch=4)
        sched = GPUScheduler(num_streams=2)
        sched.execute(self.build_gpu_graph(grid))
        assert set(sched.stats.per_stream_tasks) == {0, 1}

    def test_oom_without_backpressure_raises(self):
        grid = make_grid(n=8, patch=8)  # one big patch
        tiny = GPUDataWarehouse(capacity_bytes=128)
        sched = GPUScheduler(gpu=tiny)
        from repro.util.errors import DataWarehouseError

        with pytest.raises(DataWarehouseError):
            sched.execute(self.build_gpu_graph(grid))

    def test_host_tasks_run_inline(self):
        grid = make_grid()
        sched = GPUScheduler()
        dw = sched.execute(self.build_gpu_graph(grid, device=False))
        np.testing.assert_allclose(collect_psi(grid, dw), reference_psi(8))
