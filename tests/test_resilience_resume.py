"""Bit-identical checkpoint/restore of the radiation campaign.

The acceptance bar from the resilience issue: a run interrupted at
step k and restored from its checkpoint must finish byte-equal to an
uninterrupted run — on the serial scheduler, on the distributed
scheduler, and across a re-decomposition after rank death.
"""

import numpy as np
import pytest

from repro.resilience import Checkpointer, RadiationCampaign

CAMPAIGN = dict(resolution=12, fine_patch_size=6, rays_per_cell=2, seed=3)
STEPS = 4
INTERRUPT = 2


def run_gold(num_ranks=1):
    return RadiationCampaign(num_ranks=num_ranks, **CAMPAIGN).run(STEPS)


class TestSerialResume:
    def test_resume_bit_identical(self, tmp_path):
        gold = run_gold()

        first = RadiationCampaign(**CAMPAIGN)
        first.run(INTERRUPT)
        Checkpointer(tmp_path).save(first.capture())
        del first  # the interrupted incarnation is gone

        second = RadiationCampaign(**CAMPAIGN)
        state, step = Checkpointer(tmp_path).load_latest_valid()
        assert step == INTERRUPT
        second.restore(state)
        assert second.step == INTERRUPT
        resumed = second.run(STEPS)
        np.testing.assert_array_equal(resumed, gold)

    def test_restore_rejects_wrong_grid(self, tmp_path):
        first = RadiationCampaign(**CAMPAIGN)
        first.run(1)
        Checkpointer(tmp_path).save(first.capture())
        other = RadiationCampaign(
            resolution=24, fine_patch_size=6, rays_per_cell=2, seed=3
        )
        state, _ = Checkpointer(tmp_path).load_latest_valid()
        from repro.util import ResilienceError

        with pytest.raises(ResilienceError):
            other.restore(state)


class TestDistributedResume:
    def test_distributed_matches_serial(self):
        np.testing.assert_array_equal(run_gold(1), run_gold(4))

    def test_resume_bit_identical(self, tmp_path):
        gold = run_gold(4)

        first = RadiationCampaign(num_ranks=4, **CAMPAIGN)
        first.run(INTERRUPT)
        Checkpointer(tmp_path).save(first.capture())

        second = RadiationCampaign(num_ranks=4, **CAMPAIGN)
        state, _ = Checkpointer(tmp_path).load_latest_valid()
        second.restore(state)
        resumed = second.run(STEPS)
        np.testing.assert_array_equal(resumed, gold)

    def test_resume_across_redecomposition(self, tmp_path):
        """Restore onto fewer ranks (as after a death): per-patch
        counter-derived RNG makes the answer decomposition-invariant,
        so the resumed run still matches the 4-rank gold exactly."""
        gold = run_gold(4)

        first = RadiationCampaign(num_ranks=4, **CAMPAIGN)
        first.run(INTERRUPT)
        Checkpointer(tmp_path).save(first.capture())

        second = RadiationCampaign(num_ranks=4, **CAMPAIGN)
        second.lose_ranks([1, 3])
        state, _ = Checkpointer(tmp_path).load_latest_valid()
        second.restore(state)
        assert second.num_ranks == 2
        resumed = second.run(STEPS)
        np.testing.assert_array_equal(resumed, gold)
