"""Tests for the perf regression gate: metric direction classification,
row identity, noise-aware confirmation (geomean + hard limit), the
injected-slowdown self-test, and the CLI exit codes."""

import json

import pytest

from repro.perf.baseline import (
    compare_artifacts,
    format_report,
    inject_slowdown,
    main as perfgate_main,
    metric_direction,
    row_key,
    run_gate,
    summarize_bench,
)
from repro.util.errors import PerfError


def artifact(name, rows):
    return {"schema": 1, "name": name, "rows": rows}


ROWS = [
    {"pool": "waitfree", "threads": 1, "messages_per_s": 50_000.0,
     "us_per_message": 20.0, "mean_s": 0.02, "leaked_buffers": 0},
    {"pool": "locked", "threads": 4, "messages_per_s": 30_000.0,
     "us_per_message": 33.0, "mean_s": 0.03, "leaked_buffers": 0},
]


class TestClassification:
    def test_rates_are_higher_is_better(self):
        for name in ("messages_per_s", "cell_rays_per_s", "rays_per_s",
                     "speedup", "hit_rate"):
            assert metric_direction(name) == "higher"

    def test_times_are_lower_is_better(self):
        for name in ("mean_s", "us_per_message", "latency_p99",
                     "solve_seconds"):
            assert metric_direction(name) == "lower"

    def test_identity_columns_have_no_direction(self):
        for name in ("pool", "threads", "patch", "leaked_buffers"):
            assert metric_direction(name) is None

    def test_row_key_uses_strings_and_parameter_ints(self):
        key = dict(row_key(ROWS[0]))
        assert key == {"pool": "waitfree", "threads": 1, "leaked_buffers": 0}


class TestCompare:
    def test_identical_artifacts_are_all_ok(self):
        cmp = compare_artifacts(artifact("b", ROWS), artifact("b", ROWS))
        real = [c for c in cmp if c["status"] not in ("skipped", "new-row")]
        assert real and all(c["status"] == "ok" for c in real)
        assert all(c["slowdown"] == pytest.approx(1.0) for c in real)

    def test_slower_current_is_suspect_both_directions(self):
        slowed = inject_slowdown(artifact("b", ROWS), 3.0)
        cmp = compare_artifacts(artifact("b", ROWS), slowed, tolerance=2.5)
        by_metric = {c["metric"]: c for c in cmp
                     if c["row"]["pool"] == "waitfree"}
        assert by_metric["mean_s"]["status"] == "suspect"
        assert by_metric["mean_s"]["slowdown"] == pytest.approx(3.0)
        assert by_metric["messages_per_s"]["status"] == "suspect"
        assert by_metric["messages_per_s"]["slowdown"] == pytest.approx(3.0)

    def test_unmatched_row_reported_not_compared(self):
        other = artifact("b", [dict(ROWS[0], pool="brand-new")])
        cmp = compare_artifacts(artifact("b", ROWS), other)
        assert [c["status"] for c in cmp] == ["new-row"]

    def test_tolerance_must_exceed_one(self):
        with pytest.raises(PerfError):
            compare_artifacts(artifact("b", ROWS), artifact("b", ROWS),
                              tolerance=1.0)

    def test_inject_slowdown_rejects_nonpositive(self):
        with pytest.raises(PerfError):
            inject_slowdown(artifact("b", ROWS), 0.0)


class TestConfirmation:
    def test_one_noisy_row_does_not_confirm(self):
        noisy = json.loads(json.dumps(ROWS))
        noisy[0]["mean_s"] *= 2.9  # single jittery metric
        cmp = compare_artifacts(artifact("b", ROWS), artifact("b", noisy))
        verdict = summarize_bench("b", cmp)
        assert verdict["suspects"] == 1
        assert not verdict["confirmed_regression"]

    def test_uniform_slowdown_confirms_via_geomean(self):
        slowed = inject_slowdown(artifact("b", ROWS), 3.0)
        cmp = compare_artifacts(artifact("b", ROWS), slowed)
        verdict = summarize_bench("b", cmp)
        assert verdict["geomean_slowdown"] == pytest.approx(3.0)
        assert verdict["confirmed_regression"]

    def test_catastrophic_single_metric_trips_hard_limit(self):
        bad = json.loads(json.dumps(ROWS))
        bad[0]["mean_s"] *= 10.0
        cmp = compare_artifacts(artifact("b", ROWS), artifact("b", bad))
        verdict = summarize_bench("b", cmp, hard_limit=6.0)
        assert verdict["geomean_slowdown"] < 2.5
        assert verdict["confirmed_regression"]


@pytest.fixture
def gate_dirs(tmp_path):
    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    current_dir.mkdir()
    for d in (baseline_dir, current_dir):
        (d / "BENCH_demo.json").write_text(
            json.dumps(artifact("demo", ROWS))
        )
    return baseline_dir, current_dir


class TestRunGate:
    def test_clean_tree_passes_and_writes_report(self, gate_dirs, tmp_path):
        baseline_dir, current_dir = gate_dirs
        out = tmp_path / "regression_report.json"
        report = run_gate(current_dir, baseline_dir, out_path=out)
        assert report["passed"]
        assert json.loads(out.read_text())["passed"]

    def test_injected_slowdown_fails(self, gate_dirs):
        baseline_dir, current_dir = gate_dirs
        report = run_gate(current_dir, baseline_dir, slowdown=3.0)
        assert not report["passed"]
        assert report["regressions"][0]["bench"] == "demo"

    def test_missing_fresh_artifact_fails(self, gate_dirs):
        baseline_dir, current_dir = gate_dirs
        (current_dir / "BENCH_demo.json").unlink()
        report = run_gate(current_dir, baseline_dir)
        assert not report["passed"]
        assert report["missing_artifacts"] == ["BENCH_demo.json"]

    def test_no_baselines_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(PerfError):
            run_gate(tmp_path, tmp_path / "empty")

    def test_format_report_mentions_verdicts(self, gate_dirs):
        baseline_dir, current_dir = gate_dirs
        text = format_report(run_gate(current_dir, baseline_dir, slowdown=3.0))
        assert "FAIL" in text and "REGRESSION" in text
        assert "geomean" in text


class TestCli:
    def test_pass_and_fail_exit_codes(self, gate_dirs, tmp_path):
        baseline_dir, current_dir = gate_dirs
        base = ["--bench-dir", str(current_dir),
                "--baseline-dir", str(baseline_dir),
                "--out", str(tmp_path / "rr.json")]
        assert perfgate_main(base) == 0
        assert perfgate_main(base + ["--inject-slowdown", "3"]) == 1

    def test_expect_regression_inverts(self, gate_dirs, tmp_path):
        baseline_dir, current_dir = gate_dirs
        base = ["--bench-dir", str(current_dir),
                "--baseline-dir", str(baseline_dir),
                "--out", str(tmp_path / "rr.json"), "--expect-regression"]
        assert perfgate_main(base + ["--inject-slowdown", "3"]) == 0
        assert perfgate_main(base) == 1

    def test_module_dispatch(self, gate_dirs, tmp_path, capsys):
        from repro.__main__ import main

        baseline_dir, current_dir = gate_dirs
        rc = main(["perfgate", "--bench-dir", str(current_dir),
                   "--baseline-dir", str(baseline_dir),
                   "--out", str(tmp_path / "rr.json")])
        assert rc == 0
        assert "perf gate: PASS" in capsys.readouterr().out
