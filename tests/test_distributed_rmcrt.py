"""End-to-end integration: RMCRT as a task graph on every scheduler.

The strongest invariant in the library: the 3-task distributed RMCRT
pipeline reproduces the direct multi-level solver bit-for-bit, on every
execution engine, for any rank count — decomposition and scheduling are
invisible to the physics.
"""

import numpy as np
import pytest

from repro.dw import GPUDataWarehouse
from repro.radiation import BurnsChristonBenchmark
from repro.core import (
    DIVQ,
    DistributedRMCRT,
    MultiLevelRMCRT,
    benchmark_property_init,
)
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def setup():
    bench = BurnsChristonBenchmark(resolution=16)
    grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
    drm = DistributedRMCRT(
        grid, benchmark_property_init(bench), rays_per_cell=8, halo=2, seed=3
    )
    reference = drm.solve("serial")
    return bench, grid, drm, reference


class TestEquivalence:
    def test_serial_matches_direct_solver(self, setup):
        bench, grid, drm, reference = setup
        grid2 = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
        props = bench.properties_for_level(grid2.finest_level)
        direct = MultiLevelRMCRT(rays_per_cell=8, seed=3, halo=2).solve(grid2, props)
        np.testing.assert_array_equal(reference.divq, direct.divq)

    @pytest.mark.parametrize("num_ranks", [1, 2, 4, 8])
    def test_distributed_matches_serial(self, setup, num_ranks):
        _, _, drm, reference = setup
        result = drm.solve("distributed", num_ranks=num_ranks)
        np.testing.assert_array_equal(result.divq, reference.divq)

    @pytest.mark.parametrize("threads", [2, 8])
    def test_threaded_matches_serial(self, setup, threads):
        _, _, drm, reference = setup
        result = drm.solve("threaded", num_threads=threads)
        np.testing.assert_array_equal(result.divq, reference.divq)

    def test_gpu_matches_serial(self, setup):
        _, _, drm, reference = setup
        result = drm.solve("gpu")
        np.testing.assert_array_equal(result.divq, reference.divq)

    def test_locked_pool_matches(self, setup):
        _, _, drm, reference = setup
        result = drm.solve("distributed", num_ranks=4, pool_kind="locked")
        np.testing.assert_array_equal(result.divq, reference.divq)


class TestPhysicsSanity:
    def test_divq_positive(self, setup):
        *_, reference = setup
        assert (reference.divq > 0).all()

    def test_rays_accounted(self, setup):
        _, grid, _, reference = setup
        assert reference.rays_traced == 16 ** 3 * 8


class TestDeviceTasks:
    def test_device_trace_shares_level_db(self):
        """Each coarse level's 3 property arrays hit the GPU once even
        though 8 patch tasks consume them."""
        bench = BurnsChristonBenchmark(resolution=16)
        grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
        drm = DistributedRMCRT(
            grid, benchmark_property_init(bench),
            rays_per_cell=4, halo=2, seed=1, device=True,
        )
        gpu = GPUDataWarehouse(use_level_db=True)
        result = drm.solve("gpu", gpu=gpu)
        assert gpu.resident_summary()["level_db_entries"] == 3
        assert (result.divq > 0).all()


class TestValidation:
    def test_single_level_grid_rejected(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.single_level_grid(patch_size=4)
        with pytest.raises(ReproError):
            DistributedRMCRT(grid, benchmark_property_init(bench))

    def test_undecomposed_grid_rejected(self):
        bench = BurnsChristonBenchmark(resolution=8)
        grid = bench.two_level_grid(refinement_ratio=2)
        with pytest.raises(ReproError):
            DistributedRMCRT(grid, benchmark_property_init(bench))

    def test_unknown_scheduler(self, setup):
        _, _, drm, _ = setup
        with pytest.raises(ReproError):
            drm.solve("quantum")

    def test_graph_shape(self, setup):
        _, grid, drm, _ = setup
        graph = drm.build_graph()
        names = {t.task.name for t in graph.detailed_tasks}
        assert names == {"rmcrt.initProperties", "rmcrt.coarsen", "rmcrt.trace"}
        # 8 init + 1 coarsen + 8 trace
        assert len(graph.detailed_tasks) == 17

    def test_distributed_message_structure(self, setup):
        _, grid, drm, _ = setup
        from repro.grid import LoadBalancer

        assignment = LoadBalancer(4).assign(grid.finest_level.patches)
        graph = drm.build_graph(assignment=assignment, num_ranks=4)
        level_msgs = [m for m in graph.messages if m.label.name.endswith("_L0")]
        # 3 coarse property arrays broadcast to every rank except the
        # coarsen task's own
        assert len(level_msgs) == 3 * 3
