"""Spectral campaigns must checkpoint and resume bit-identically.

A multi-step spectral campaign advances one shared
:class:`RandomStreams` — both the per-patch ray streams and the named
spectral band streams move every step. Resume works only if state
capture covers the named streams too: restore at step k, replay, and
every subsequent solve must be bit-identical to the uninterrupted run.
"""

import json

import numpy as np

from repro.dw.datawarehouse import DataWarehouse
from repro.radiation.spectral.model import SpectralModel
from repro.radiation.spectral.scenario import SpectralCase
from repro.radiation.spectral.tracer import SPECTRAL_STREAM
from repro.resilience.state import capture_state
from repro.util.rng import RandomStreams

SEED = 11
STEPS = 4
RESUME_AT = 2  # capture after step index 1, replay steps 2..3


def campaign_case():
    return SpectralCase(
        name="resume",
        model=SpectralModel.build(
            bands=3, temperature=1400.0, kappa_exponent=0.8,
            emissivity="tungsten",
        ),
        resolution=8, rays_per_cell=2,
        wall_temperature=0.5, wall_emissivity=0.8,
        seed=SEED,
    )


def run_campaign(steps, streams):
    """Each step is one spectral solve drawing from the shared streams
    (so later steps see stream positions advanced by earlier ones)."""
    case = campaign_case()
    grid, props = case.prepare()
    tracer = case.tracer()
    return [tracer.solve(grid, props, streams=streams).divq for _ in range(steps)]


def test_resume_is_bit_identical():
    # the gold run, capturing RNG state mid-campaign
    streams = RandomStreams(SEED)
    case = campaign_case()
    grid, props = case.prepare()
    tracer = case.tracer()
    gold = []
    snapshot = None
    for step in range(STEPS):
        if step == RESUME_AT:
            snapshot = capture_state(DataWarehouse(), step, streams=streams)
        gold.append(tracer.solve(grid, props, streams=streams).divq)

    # restore into a fresh process-equivalent and replay the tail
    resumed_streams = RandomStreams(SEED)
    snapshot.restore_streams(resumed_streams)
    resumed = run_campaign(STEPS - RESUME_AT, resumed_streams)
    for step, divq in enumerate(resumed, start=RESUME_AT):
        np.testing.assert_array_equal(divq, gold[step])


def test_snapshot_covers_named_spectral_streams():
    streams = RandomStreams(SEED)
    run_campaign(1, streams)
    state = capture_state(DataWarehouse(), 1, streams=streams)
    keys = state.rng["streams"].keys()
    spectral_keys = [k for k in keys if k.startswith(f"{SPECTRAL_STREAM},")]
    assert spectral_keys, f"no named spectral stream captured: {sorted(keys)}"
    # the ray streams are there too (integer-keyed)
    assert any(k.split(",")[0].lstrip("-").isdigit() for k in keys)

    # the snapshot must survive a JSON round-trip (checkpoint format)
    restored = RandomStreams(SEED)
    restored.set_state(json.loads(json.dumps(state.rng)))
    a = run_campaign(1, restored)[0]
    b = run_campaign(1, streams)[0]
    np.testing.assert_array_equal(a, b)


def test_without_restore_the_tail_differs():
    streams = RandomStreams(SEED)
    gold = run_campaign(STEPS, streams)
    # a fresh RandomStreams starts at the beginning of every stream, so
    # its first solve reproduces step 0, not the post-checkpoint step
    fresh = run_campaign(1, RandomStreams(SEED))[0]
    np.testing.assert_array_equal(fresh, gold[0])
    assert np.max(np.abs(fresh - gold[RESUME_AT])) > 0.0
