"""E16 — snapshot-collector cost vs the <5% budget, and analyzer speed.

The tsdb snapshot collector is wired into the schedulers and the
controller's advance loop, so — like the flight recorder — its cost is
a contract:

* the micro row prices one :meth:`SnapshotCollector.sample` call
  (registry flatten + one JSONL line append) in microseconds;
* the macro rows run the same instrumented 2-rank simulation once with
  a per-execute collector installed and once with none, reporting the
  A/B end-to-end delta for the record; the 5% budget is *asserted* on
  the directly-measured time spent inside ``sample()`` as a fraction
  of the run — the A/B delta is dominated by run-to-run machine noise
  (~±10% on a busy host) and would make the gate flaky;
* the analyze row prices a full :func:`analyze_events` pass (DAG +
  critical path + attribution) over a 4-rank tracesim timeline — the
  offline cost of turning a trace into answers.

Results land in ``BENCH_analyze_overhead.json``.
"""

import time

import pytest

from repro.perf import write_bench_artifact
from repro.perf.analyze import _tracesim_events, analyze_events
from repro.perf.metrics import MetricsRegistry
from repro.perf.profile import run_profile
from repro.perf.tsdb import SnapshotCollector, TimeSeriesStore, set_collector

OVERHEAD_BUDGET_PCT = 5.0
REPEATS = 3


@pytest.fixture(scope="module")
def artifact_rows():
    rows = []
    yield rows
    write_bench_artifact(
        "analyze_overhead",
        params={"budget_pct": OVERHEAD_BUDGET_PCT, "repeats": REPEATS,
                "retention": 2048},
        rows=rows,
    )


def test_sample_call_cost(benchmark, artifact_rows, tmp_path):
    registry = MetricsRegistry()
    # a representative registry: the profile run publishes ~100 series
    for i in range(32):
        registry.counter(f"c{i}", rank=str(i % 4)).inc(i)
        registry.gauge(f"g{i}", rank=str(i % 4)).set(i)
    h = registry.histogram("lat_s")
    for v in range(64):
        h.observe(v * 1e-3)
    store = TimeSeriesStore(tmp_path, retention=2048)
    coll = SnapshotCollector(store, registry=registry)

    def burst():
        for _ in range(10):
            coll.sample()

    benchmark(burst)
    us_per_sample = benchmark.stats.stats.mean * 1e6 / 10
    artifact_rows.append({
        "arm": "micro",
        "us_per_sample": us_per_sample,
        "mean_s": benchmark.stats.stats.mean,
    })
    # one snapshot must stay far below a timestep (~100ms)
    assert us_per_sample < 50_000


class _TimedCollector(SnapshotCollector):
    """Accumulates wall-clock spent inside sample() so the budget can
    be checked against a direct measurement instead of a noisy A/B."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.spent_s = 0.0

    def sample(self, **fields):
        t0 = time.perf_counter()
        super().sample(**fields)
        self.spent_s += time.perf_counter() - t0


def _timed_run(tmp_path, tag):
    t0 = time.perf_counter()
    run_profile(
        steps=1,
        resolution=12,
        rays_per_cell=2,
        num_ranks=2,
        trace_path=str(tmp_path / f"trace_{tag}.json"),
        metrics_path=str(tmp_path / f"metrics_{tag}.json"),
    )
    return time.perf_counter() - t0


def test_end_to_end_overhead_within_budget(artifact_rows, tmp_path):
    collecting, disabled, in_sample = [], [], []
    for i in range(REPEATS):
        store = TimeSeriesStore(tmp_path / f"tsdb{i}", retention=2048)
        collector = _TimedCollector(store, registry=None)
        previous = set_collector(collector)
        try:
            collecting.append(_timed_run(tmp_path, f"on{i}"))
        finally:
            set_collector(previous)
        in_sample.append(collector.spent_s)
        disabled.append(_timed_run(tmp_path, f"off{i}"))
    # min-of-N is the standard noise filter for wall-clock comparisons
    on, off = min(collecting), min(disabled)
    ab_overhead_pct = max(0.0, (on - off) / off * 100.0)
    # the gated number: time *inside* sample() over the best run —
    # deterministic where the A/B delta is noise-dominated
    direct_overhead_pct = min(in_sample) / on * 100.0
    artifact_rows.append({
        "arm": "collecting", "mean_s": sum(collecting) / REPEATS,
        "best_s": on,
    })
    artifact_rows.append({
        "arm": "disabled", "mean_s": sum(disabled) / REPEATS,
        "best_s": off,
    })
    artifact_rows.append({
        "arm": "overhead",
        "overhead_pct": direct_overhead_pct,
        "ab_overhead_pct": ab_overhead_pct,
    })
    assert direct_overhead_pct < OVERHEAD_BUDGET_PCT, (
        f"snapshot collector costs {direct_overhead_pct:.2f}% "
        f"(budget {OVERHEAD_BUDGET_PCT}%)"
    )


def test_analyze_pass_cost(benchmark, artifact_rows):
    events, _ = _tracesim_events(ranks=4, resolution=12, rays_per_cell=2)
    report = benchmark(lambda: analyze_events(events, source="bench"))
    artifact_rows.append({
        "arm": "analyze",
        "mean_s": benchmark.stats.stats.mean,
        "spans_analyzed": report["spans"],
        "flow_edges": report["flow_edges"],
    })
    assert report["speedup_bound"]["bound_holds"]
