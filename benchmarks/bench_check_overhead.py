"""E13b — what the correctness tooling costs.

Dynamic checkers earn their keep only if the instrumented run stays
usable: this measures the comm workload with and without the race
detector's shim (every lock tracked, every record a monitored
location), plus the project linter's throughput over the real source
tree. Results land in ``BENCH_check_overhead.json``.
"""

import pytest

from repro.check import RaceDetector, instrument_comm_pool
from repro.check.cli import REPO_ROOT
from repro.check.lint import lint_paths
from repro.comm import make_pool, run_comm_workload
from repro.perf import write_bench_artifact

MESSAGES = 400
THREADS = 4


@pytest.fixture(scope="module")
def artifact_rows():
    rows = []
    yield rows
    write_bench_artifact(
        "check_overhead",
        params={"messages": MESSAGES, "threads": THREADS, "pool": "waitfree"},
        rows=rows,
    )


@pytest.mark.parametrize("instrumented", [False, True],
                         ids=["plain", "race-detector"])
def test_commpool_instrumentation_overhead(benchmark, artifact_rows, instrumented):
    def run():
        pool = make_pool("waitfree")
        detector = None
        if instrumented:
            detector = RaceDetector()
            instrument_comm_pool(pool, detector)
        result = run_comm_workload(
            pool, num_threads=THREADS, num_messages=MESSAGES
        )
        return result, detector

    result, detector = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.clean
    if instrumented:
        assert detector is not None and detector.race_count == 0
    per_msg = result.wall_time / result.processed
    print(f"\nwaitfree {'instrumented' if instrumented else 'plain'}: "
          f"{result.throughput:,.0f} msgs/s ({per_msg * 1e6:.1f} us/msg)")
    artifact_rows.append({
        "mode": "race-detector" if instrumented else "plain",
        "messages_per_s": result.throughput,
        "us_per_message": per_msg * 1e6,
        "mean_s": benchmark.stats.stats.mean,
    })


def test_lint_throughput(benchmark, artifact_rows):
    target = [str(REPO_ROOT / "src" / "repro")]

    def run():
        return lint_paths(target, root=REPO_ROOT)

    findings, suppressed, scanned = benchmark.pedantic(run, rounds=3, iterations=1)
    assert findings == []
    rate = scanned / benchmark.stats.stats.mean
    print(f"\nlint: {scanned} files, {rate:,.0f} files/s, "
          f"{suppressed} suppressed")
    artifact_rows.append({
        "mode": "lint",
        "files_scanned": scanned,
        "files_per_s": rate,
        "mean_s": benchmark.stats.stats.mean,
    })
