"""E11 — trace-simulated strong scaling of the REAL task graph.

The Figure 2/3 reproductions price a representative rank analytically;
this bench cross-checks them by event-simulating the *actual* compiled
RMCRT task graph (every detailed task, every ghost message, the true
dependency structure) on the machine models at laptop-buildable scale,
and reports makespan, parallel efficiency, and the MPI-wait share per
rank count — the diagnostic view behind the paper's Figure 1.
"""

import pytest

from repro.core import DistributedRMCRT, benchmark_property_init
from repro.dessim import (
    RMCRTProblem,
    TaskGraphTraceSimulator,
    rmcrt_task_cost,
)
from repro.grid import LoadBalancer
from repro.perf import write_bench_artifact
from repro.radiation import BurnsChristonBenchmark

RANKS = [1, 2, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def setup():
    bench = BurnsChristonBenchmark(resolution=64)
    grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=16)  # 64 patches
    drm = DistributedRMCRT(
        grid, benchmark_property_init(bench), rays_per_cell=100, halo=4
    )
    problem = RMCRTProblem(fine_cells=64, refinement_ratio=4, halo=4)
    cost = rmcrt_task_cost(problem, patch_size=16)
    return grid, drm, cost


def test_traced_strong_scaling(benchmark, setup):
    grid, drm, cost = setup
    sim = TaskGraphTraceSimulator()

    def sweep():
        rows = []
        for ranks in RANKS:
            assignment = LoadBalancer(ranks).assign(grid.finest_level.patches)
            graph = drm.build_graph(assignment=assignment, num_ranks=ranks)
            report = sim.simulate(graph, cost)
            rows.append((ranks, report))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n--- E11: traced strong scaling (64^3 fine, 16^3 patches) ---")
    print(f"{'ranks':>6} {'makespan':>10} {'efficiency':>11} "
          f"{'msgs':>6} {'critical rank idle':>18}")
    t1 = rows[0][1].makespan
    for ranks, report in rows:
        crit = report.ranks[report.critical_rank()]
        print(f"{ranks:>6} {report.makespan:>9.3f}s "
              f"{t1 / (ranks * report.makespan):>10.1%} "
              f"{report.messages_sent:>6} "
              f"{crit.idle(report.makespan):>17.3f}s")

    write_bench_artifact(
        "tracesim_pipeline",
        params={"fine_cells": 64, "patch_size": 16, "rays_per_cell": 100,
                "ranks": RANKS},
        rows=[
            {
                "ranks": ranks,
                "makespan_s": report.makespan,
                "efficiency": t1 / (ranks * report.makespan),
                "parallel_busy_fraction": report.parallel_efficiency,
                "messages_sent": report.messages_sent,
                "message_bytes": report.message_bytes,
                "critical_rank": report.critical_rank(),
            }
            for ranks, report in rows
        ],
    )

    makespans = [r.makespan for _, r in rows]
    assert makespans == sorted(makespans, reverse=True)
    # near-ideal while patches >> ranks (the paper's over-decomposition)
    assert t1 / (4 * rows[2][1].makespan) > 0.80
    # with 64 patches on 32 ranks (2 each) the coarsen serialization and
    # message latency start to show, exactly like the flattening tails
    # of Figures 2/3
    assert t1 / (32 * rows[5][1].makespan) < 1.0


def test_traced_scaling_comm_stressed(benchmark, setup):
    """The same graph with a cheap kernel (1 ray/cell) on a congested
    network: the comm structure now dominates and the traced efficiency
    decays with rank count — the shape of a comm-bound scaling tail,
    emerging from the real dependency/message structure rather than a
    formula."""
    from repro.machine import NetworkModel

    grid, drm, _ = setup
    problem = RMCRTProblem(fine_cells=64, refinement_ratio=4, halo=4)
    cheap = RMCRTProblem(fine_cells=64, refinement_ratio=4, halo=4, rays_per_cell=1)
    cost = rmcrt_task_cost(cheap, patch_size=16)
    congested = NetworkModel(latency_s=2e-4, congestion=0.02)
    sim = TaskGraphTraceSimulator(congested)

    def sweep():
        rows = []
        for ranks in RANKS:
            assignment = LoadBalancer(ranks).assign(grid.finest_level.patches)
            graph = drm.build_graph(assignment=assignment, num_ranks=ranks)
            rows.append((ranks, sim.simulate(graph, cost)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    t1 = rows[0][1].makespan
    print("\n--- E11b: comm-stressed traced scaling (1 ray/cell) ---")
    effs = []
    for ranks, report in rows:
        eff = t1 / (ranks * report.makespan)
        effs.append(eff)
        print(f"{ranks:>6} ranks: makespan {report.makespan:.4f}s, "
              f"efficiency {eff:6.1%}, "
              f"parallel busy fraction {report.parallel_efficiency:6.1%}")
    assert effs[0] == pytest.approx(1.0)
    assert effs[-1] < 0.95, "comm costs must erode the stressed tail"
    # monotone decay: each doubling of ranks costs some efficiency
    assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
