"""E1b — measured thread contention of the request pools.

The live counterpart to the Table I model: real Python threads drive
real messages through the wait-free and locked pools over the simulated
MPI fabric. Reports per-message processing cost per pool and thread
count, plus the legacy pool's buffer-leak rate — the numbers that
justify the pool-model constants used in E1.

Results land in ``BENCH_commpool_contention.json`` (one row per
pool/thread sweep point), so cross-PR comparisons are a JSON diff.
"""

import pytest

from repro.comm import make_pool, run_comm_workload
from repro.perf import write_bench_artifact

MESSAGES = 600


@pytest.fixture(scope="module")
def artifact_rows():
    """Accumulates one row per sweep point; the artifact is written
    once, after every test in the module has contributed."""
    rows = []
    yield rows
    write_bench_artifact(
        "commpool_contention",
        params={"messages": MESSAGES, "pools": ["waitfree", "locked"],
                "threads": [1, 4, 8]},
        rows=rows,
    )


@pytest.mark.parametrize("threads", [1, 4, 8])
@pytest.mark.parametrize("kind", ["waitfree", "locked"])
def test_pool_throughput(benchmark, artifact_rows, kind, threads):
    def run():
        return run_comm_workload(
            make_pool(kind), num_threads=threads, num_messages=MESSAGES
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    per_msg = result.wall_time / result.processed
    print(f"\n{kind} pool, {threads} threads: "
          f"{result.throughput:,.0f} msgs/s ({per_msg * 1e6:.1f} us/msg), "
          f"leaked={result.leaked_buffers}")
    artifact_rows.append({
        "pool": kind,
        "threads": threads,
        "messages_per_s": result.throughput,
        "us_per_message": per_msg * 1e6,
        "leaked_buffers": result.leaked_buffers,
        "mean_s": benchmark.stats.stats.mean,
    })
    assert result.clean


def test_legacy_racy_leak_rate(benchmark, artifact_rows):
    """How badly the Section IV.A race leaks under 8 threads."""

    def run():
        return run_comm_workload(
            make_pool("legacy-racy", unpack_delay=1e-5),
            num_threads=8,
            num_messages=400,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\nlegacy-racy, 8 threads: processed {result.processed}, "
          f"leaked {result.leaked_buffers} buffers "
          f"({result.leaked_bytes / 1024:.0f} KiB) per {result.expected} messages")
    artifact_rows.append({
        "pool": "legacy-racy",
        "threads": 8,
        "messages_per_s": result.throughput,
        "us_per_message": result.wall_time / result.processed * 1e6,
        "leaked_buffers": result.leaked_buffers,
        "leaked_kib": result.leaked_bytes / 1024,
        "mean_s": benchmark.stats.stats.mean,
    })
    assert result.processed == result.expected
