"""E1b — measured thread contention of the request pools.

The live counterpart to the Table I model: real Python threads drive
real messages through the wait-free and locked pools over the simulated
MPI fabric. Reports per-message processing cost per pool and thread
count, plus the legacy pool's buffer-leak rate — the numbers that
justify the pool-model constants used in E1.
"""

import pytest

from repro.comm import make_pool, run_comm_workload

MESSAGES = 600


@pytest.mark.parametrize("threads", [1, 4, 8])
@pytest.mark.parametrize("kind", ["waitfree", "locked"])
def test_pool_throughput(benchmark, kind, threads):
    def run():
        return run_comm_workload(
            make_pool(kind), num_threads=threads, num_messages=MESSAGES
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    per_msg = result.wall_time / result.processed
    print(f"\n{kind} pool, {threads} threads: "
          f"{result.throughput:,.0f} msgs/s ({per_msg * 1e6:.1f} us/msg), "
          f"leaked={result.leaked_buffers}")
    assert result.clean


def test_legacy_racy_leak_rate(benchmark):
    """How badly the Section IV.A race leaks under 8 threads."""

    def run():
        return run_comm_workload(
            make_pool("legacy-racy", unpack_delay=1e-5),
            num_threads=8,
            num_messages=400,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\nlegacy-racy, 8 threads: processed {result.processed}, "
          f"leaked {result.leaked_buffers} buffers "
          f"({result.leaked_bytes / 1024:.0f} KiB) per {result.expected} messages")
    assert result.processed == result.expected
