"""E15 — flight-recorder overhead vs the <5% always-on budget.

The crash flight recorder only earns its keep if it can stay on for
every run, so its cost is a contract, not a curiosity:

* the micro row prices one :meth:`FlightRecorder.record` call (a
  single ``deque(maxlen)`` append) in nanoseconds;
* the macro rows run the same instrumented 2-rank simulation once with
  the real recorder and once with a no-op recorder, and report the
  end-to-end overhead as a percentage — the number EXPERIMENTS E15
  holds against the 5% budget.

Results land in ``BENCH_flightrec_overhead.json``.
"""

import time

import pytest

from repro.perf.flightrec import FlightRecorder, set_flight_recorder
from repro.perf.profile import run_profile
from repro.perf import write_bench_artifact

OVERHEAD_BUDGET_PCT = 5.0
REPEATS = 3


@pytest.fixture(scope="module")
def artifact_rows():
    rows = []
    yield rows
    write_bench_artifact(
        "flightrec_overhead",
        params={"budget_pct": OVERHEAD_BUDGET_PCT, "repeats": REPEATS,
                "capacity": 4096},
        rows=rows,
    )


class _NoopRecorder(FlightRecorder):
    """The control arm: same interface, no ring append."""

    def record(self, kind, name, rank=None, **data):
        pass


def test_record_call_cost(benchmark, artifact_rows):
    rec = FlightRecorder(capacity=4096)

    def burst():
        for i in range(1000):
            rec.record("task", "bench", rank=0, dur_s=0.001, i=i)

    benchmark(burst)
    ns_per_record = benchmark.stats.stats.mean * 1e9 / 1000
    artifact_rows.append({
        "arm": "micro",
        "ns_per_record": ns_per_record,
        "mean_s": benchmark.stats.stats.mean,
    })
    # one ring append must stay far below a task execution (~ms)
    assert ns_per_record < 50_000


def _timed_run(tmp_path, tag):
    t0 = time.perf_counter()
    run_profile(
        steps=1,
        resolution=12,
        rays_per_cell=2,
        num_ranks=2,
        trace_path=str(tmp_path / f"trace_{tag}.json"),
        metrics_path=str(tmp_path / f"metrics_{tag}.json"),
    )
    return time.perf_counter() - t0


def test_end_to_end_overhead_within_budget(artifact_rows, tmp_path):
    recording, disabled = [], []
    for i in range(REPEATS):
        previous = set_flight_recorder(FlightRecorder(capacity=4096))
        try:
            recording.append(_timed_run(tmp_path, f"on{i}"))
        finally:
            set_flight_recorder(previous)
        previous = set_flight_recorder(_NoopRecorder(capacity=4096))
        try:
            disabled.append(_timed_run(tmp_path, f"off{i}"))
        finally:
            set_flight_recorder(previous)
    # min-of-N is the standard noise filter for wall-clock comparisons
    on, off = min(recording), min(disabled)
    overhead_pct = max(0.0, (on - off) / off * 100.0)
    artifact_rows.append({
        "arm": "recording", "mean_s": sum(recording) / REPEATS,
        "best_s": on,
    })
    artifact_rows.append({
        "arm": "disabled", "mean_s": sum(disabled) / REPEATS,
        "best_s": off,
    })
    artifact_rows.append({"arm": "overhead", "overhead_pct": overhead_pct})
    assert overhead_pct < OVERHEAD_BUDGET_PCT, (
        f"flight recorder costs {overhead_pct:.2f}% "
        f"(budget {OVERHEAD_BUDGET_PCT}%)"
    )
