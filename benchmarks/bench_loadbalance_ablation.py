"""Ablation — SFC load balancing vs naive assignment.

DESIGN.md calls out Uintah's space-filling-curve load balancer as a
design choice worth isolating: ordering patches along a Morton/Hilbert
curve and cutting contiguous chunks keeps each rank's patches spatially
compact, which directly shrinks the off-rank halo-exchange volume the
task-graph compiler emits. This bench compiles the same stencil graph
under SFC, striped, and round-robin assignments and compares message
bytes, plus balance quality.
"""

import numpy as np
import pytest

from repro.grid import Box, Grid, LoadBalancer, decompose_level, round_robin_assign
from repro.dw import cc
from repro.runtime import Computes, Requires, Task, TaskGraph

PHI = cc("phi")
PSI = cc("psi")
RANKS = 8


def build_grid():
    grid = Grid()
    level = grid.add_level(Box.cube(32), (1 / 32,) * 3)
    decompose_level(level, (4, 4, 4))  # 512 patches
    return grid


def compile_with(grid, assignment):
    tg = TaskGraph(grid)
    tg.add_task(Task("init", lambda ctx: None, computes=[Computes(PHI)]), 0)
    tg.add_task(
        Task(
            "smooth",
            lambda ctx: None,
            requires=[Requires(PHI, num_ghost=2)],
            computes=[Computes(PSI)],
        ),
        0,
    )
    return tg.compile(assignment=assignment, num_ranks=RANKS)


def test_sfc_vs_naive_message_volume(benchmark):
    grid = build_grid()
    patches = grid.level(0).patches

    def compile_all():
        out = {}
        for curve in ("morton", "hilbert"):
            lb = LoadBalancer(RANKS, curve=curve)
            out[curve] = compile_with(grid, lb.assign(patches))
        out["round_robin"] = compile_with(grid, round_robin_assign(patches, RANKS))
        striped = {p.patch_id: p.patch_id * RANKS // len(patches) for p in patches}
        out["striped_by_id"] = compile_with(grid, striped)
        return out

    graphs = benchmark.pedantic(compile_all, rounds=1, iterations=1)

    print("\n--- SFC load-balance ablation (512 patches, 8 ranks, ghost=2) ---")
    print(f"{'assignment':>14} {'messages':>10} {'ghost bytes':>12}")
    for name, g in graphs.items():
        print(f"{name:>14} {len(g.messages):>10} {g.total_message_bytes / 1e6:>10.2f}MB")

    for curve in ("morton", "hilbert"):
        assert (
            graphs[curve].total_message_bytes
            < 0.8 * graphs["round_robin"].total_message_bytes
        )


def test_sfc_balance_quality(benchmark):
    grid = build_grid()
    patches = grid.level(0).patches

    def imbalances():
        out = {}
        for curve in ("morton", "hilbert"):
            lb = LoadBalancer(RANKS, curve=curve)
            out[curve] = lb.imbalance(patches, lb.assign(patches))
        return out

    result = benchmark(imbalances)
    print(f"\nload imbalance (max/mean): {result}")
    for v in result.values():
        assert v < 1.05  # uniform patches: near-perfect chunking
