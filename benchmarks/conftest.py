"""Shared benchmark configuration.

Every benchmark prints the table/figure series it regenerates (captured
with ``pytest benchmarks/ --benchmark-only -s`` or in the saved
report), alongside the pytest-benchmark timing of the generating
computation itself.
"""

import pytest


def print_table(title, header, rows):
    """Uniform fixed-width table printing for the bench reports."""
    print(f"\n--- {title} ---")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(row)
