"""E7 — the GPU DataWarehouse level database ablation (contribution ii).

With and without the shared per-level database, on both layers of the
reproduction:

* the *executable* runtime: the distributed RMCRT pipeline's device
  tasks through the GPU scheduler, counting actual level-variable
  uploads and device residency, and
* the *cluster model*: PCIe traffic and device-memory feasibility for
  the LARGE problem as patches-per-GPU grows.
"""

import pytest

from repro.core import DistributedRMCRT, benchmark_property_init
from repro.dw import GPUDataWarehouse
from repro.dessim import ClusterSimulator, LARGE, SimOptions
from repro.radiation import BurnsChristonBenchmark


def run_gpu_pipeline(use_level_db):
    bench = BurnsChristonBenchmark(resolution=16)
    # RR 2 => an 8^3 coarse level whose redundant per-task copies
    # dominate the traffic, as the 128^3 level did on Titan
    grid = bench.two_level_grid(refinement_ratio=2, fine_patch_size=4)  # 64 tasks
    drm = DistributedRMCRT(
        grid, benchmark_property_init(bench),
        rays_per_cell=2, halo=1, seed=1, device=True,
    )
    gpu = GPUDataWarehouse(use_level_db=use_level_db)
    drm.solve("gpu", gpu=gpu)
    return gpu


@pytest.mark.parametrize("use_level_db", [True, False])
def test_executable_level_uploads(benchmark, use_level_db):
    gpu = benchmark.pedantic(run_gpu_pipeline, args=(use_level_db,),
                             rounds=1, iterations=1)
    mode = "level-DB" if use_level_db else "legacy"
    print(f"\n{mode}: H2D transfers {gpu.stats.h2d_transfers}, "
          f"H2D bytes {gpu.stats.h2d_bytes:,}, peak usage {gpu.peak_usage:,}")
    if use_level_db:
        assert gpu.resident_summary()["level_db_entries"] == 3


def test_executable_traffic_ratio(benchmark):
    def both():
        return run_gpu_pipeline(True), run_gpu_pipeline(False)

    with_db, without = benchmark.pedantic(both, rounds=1, iterations=1)
    ratio = without.stats.h2d_bytes / with_db.stats.h2d_bytes
    print(f"\nH2D bytes legacy/level-DB: {ratio:.1f}x (64 sharing tasks)")
    assert ratio > 2.5


def test_cluster_model_ablation(benchmark):
    sim = ClusterSimulator()

    def sweep():
        rows = []
        for gpus in (512, 1024, 2048, 4096):
            w = sim.simulate_timestep(LARGE, 16, gpus, SimOptions(use_level_db=True))
            wo = sim.simulate_timestep(LARGE, 16, gpus, SimOptions(use_level_db=False))
            rows.append((gpus, w, wo))
        return rows

    rows = benchmark(sweep)
    print("\n--- E7: level-DB ablation on the Titan model (LARGE, 16^3) ---")
    print(f"{'GPUs':>6} {'ppg':>5} {'H2D with':>12} {'H2D without':>12} "
          f"{'ratio':>6} {'mem ok w/o?':>11}")
    for gpus, w, wo in rows:
        print(f"{gpus:>6} {w.patches_per_gpu:>5} {w.h2d_bytes / 1e6:>10.1f}MB "
              f"{wo.h2d_bytes / 1e6:>10.1f}MB {wo.h2d_bytes / w.h2d_bytes:>6.1f} "
              f"{str(wo.gpu_memory_ok):>11}")
        assert wo.h2d_bytes > w.h2d_bytes
