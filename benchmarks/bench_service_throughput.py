"""E6 — serving throughput: the content-addressed cache earns its keep.

A duplicate-heavy request stream (many clients asking for the same
handful of scenes — the steady state of a radiation service fronting
an ensemble of near-identical simulations) is driven through the
service twice:

* the full path — content-addressed cache + in-flight coalescing, so
  each distinct spec is ray-traced exactly once, and
* the stripped path — ``cache_capacity=0, coalesce=False``, every
  request pays for a full solve.

The acceptance bar from the service design: the cached path must carry
at least 2x the request throughput of the no-cache path on this
stream. Results (and the cache-hit accounting that explains them) land
in ``BENCH_service_throughput.json``.
"""

import pytest

from repro.perf import write_bench_artifact
from repro.perf.metrics import MetricsRegistry, set_metrics
from repro.service import ServiceClient, ServiceConfig
from repro.ups import GridSpec, ProblemSpec, RMCRTSpec

DISTINCT_SPECS = 3
REQUESTS = 24  # 8 requests per distinct spec


def request_stream():
    """24 requests over 3 distinct specs, interleaved — the shape of a
    parameter-study burst, not a sorted batch."""
    specs = [
        ProblemSpec(
            grid=GridSpec(resolution=12, levels=2, refinement_ratio=2,
                          patch_size=6),
            rmcrt=RMCRTSpec(n_divq_rays=3, random_seed=seed),
        )
        for seed in range(DISTINCT_SPECS)
    ]
    return [specs[i % DISTINCT_SPECS] for i in range(REQUESTS)]


def drive(config):
    """Run the stream through a fresh service; returns (elapsed, stats)."""
    import time

    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        stream = request_stream()
        with ServiceClient(config) as client:
            t0 = time.perf_counter()
            client.solve_many(stream, timeout=300)
            elapsed = time.perf_counter() - t0
            stats = client.service.stats()
    finally:
        set_metrics(previous)
    return elapsed, stats


def test_duplicate_heavy_stream_throughput(benchmark):
    cached_config = ServiceConfig(workers=2)
    nocache_config = ServiceConfig(workers=2, cache_capacity=0, coalesce=False)

    cached_s, cached_stats = benchmark.pedantic(
        drive, args=(cached_config,), rounds=1, iterations=1
    )
    nocache_s, nocache_stats = drive(nocache_config)

    cached_rps = REQUESTS / cached_s
    nocache_rps = REQUESTS / nocache_s
    speedup = cached_rps / nocache_rps
    print(f"\ncached+coalesced: {cached_rps:,.1f} req/s "
          f"({cached_stats['solves']} solves, "
          f"{cached_stats['cache_hits_memory']} hits, "
          f"{cached_stats['coalesced']} coalesced)")
    print(f"no-cache:         {nocache_rps:,.1f} req/s "
          f"({nocache_stats['solves']} solves)")
    print(f"speedup:          {speedup:.1f}x")

    write_bench_artifact(
        "service_throughput",
        params={
            "requests": REQUESTS,
            "distinct_specs": DISTINCT_SPECS,
            "workers": 2,
            "resolution": 12,
            "rays": 3,
        },
        rows=[
            {
                "path": "cached",
                "seconds": cached_s,
                "requests_per_s": cached_rps,
                "solves": cached_stats["solves"],
                "cache_hits": cached_stats["cache_hits_memory"],
                "coalesced": cached_stats["coalesced"],
            },
            {
                "path": "no_cache",
                "seconds": nocache_s,
                "requests_per_s": nocache_rps,
                "solves": nocache_stats["solves"],
                "cache_hits": nocache_stats["cache_hits_memory"],
                "coalesced": nocache_stats["coalesced"],
            },
        ],
        extra={"speedup": speedup},
    )

    # each distinct spec ray-traced exactly once on the cached path
    assert cached_stats["solves"] == DISTINCT_SPECS
    assert nocache_stats["solves"] == REQUESTS
    # the acceptance bar: >=2x request throughput on duplicate-heavy work
    assert speedup >= 2.0, f"cache path only {speedup:.2f}x the no-cache path"
