"""E20 — streaming-detector overhead vs the <5% observability budget.

The detector bank rides the serve loop's SnapshotCollector cadence, so
its cost is a contract: every tsdb sample now also flows through the
anomaly detectors, and that must stay invisible next to the sampling
itself.

* the micro row prices one :meth:`DetectorBank.observe` call on a
  realistic ~40-field serve sample (steady state: one dict lookup per
  field plus the matched detectors' constant-space updates);
* the macro rows price the serve loop's full per-tick observability
  work — registry flatten + tsdb append (the SnapshotCollector path)
  plus the atomic ``status.json`` publish — and, separately, the work
  the detectors add on top (observe every merged sample and fold the
  active set into the published document).  The ratio of the two is
  the end-to-end overhead percentage EXPERIMENTS E20 holds against
  the 5% budget.  The added work is measured directly rather than by
  differencing two wall-clock arms: the tick is disk-bound and its
  run-to-run noise (~10%) would drown a ~3% signal.

Results land in ``BENCH_doctor_overhead.json``.
"""

import json
import time

import pytest

from repro.perf import write_bench_artifact
from repro.perf.detect import default_bank
from repro.perf.metrics import MetricsRegistry
from repro.perf.tsdb import SnapshotCollector, TimeSeriesStore
from repro.util.atomic import atomic_write_text
from repro.util.rng import spawn_stream

OVERHEAD_BUDGET_PCT = 5.0
REPEATS = 3
SAMPLES = 400


@pytest.fixture(scope="module")
def artifact_rows():
    rows = []
    yield rows
    write_bench_artifact(
        "doctor_overhead",
        params={"budget_pct": OVERHEAD_BUDGET_PCT, "repeats": REPEATS,
                "samples": SAMPLES},
        rows=rows,
    )


def _sample_stream(n, seed=31):
    """n healthy serve-shaped tsdb records (~40 numeric fields each)."""
    gen = spawn_stream(seed, 2020)
    hits = misses = served = 0.0
    out = []
    for i in range(n):
        served += float(gen.integers(1, 4))
        hits += float(gen.integers(1, 4))
        misses += float(gen.random() < 0.1)
        rec = {
            "t": float(i),
            "served": served,
            "outstanding": float(gen.integers(0, 3)),
            "slo.queue_depth": float(gen.integers(0, 3)),
            "slo.solve.p95_s": 0.1 + 0.004 * float(gen.standard_normal()),
            "slo.solve.p99_s": 0.15 + 0.006 * float(gen.standard_normal()),
            "slo.solve.error_rate": 0.0,
            "service.cache.hits{tier=memory}": hits,
            "service.cache.misses": misses,
        }
        for k in range(30):  # unmatched bulk fields (cached empty routes)
            rec[f"scheduler.field_{k}"] = float(gen.random())
        out.append(rec)
    return out


def test_observe_call_cost(benchmark, artifact_rows):
    bank = default_bank("serve")
    stream = _sample_stream(SAMPLES)
    for rec in stream[:50]:
        bank.observe(rec)  # warm the route cache: the steady state

    def burst():
        for rec in stream:
            bank.observe(rec)

    benchmark(burst)
    us_per_observe = benchmark.stats.stats.mean * 1e6 / SAMPLES
    artifact_rows.append({
        "arm": "micro",
        "us_per_observe": us_per_observe,
        "mean_s": benchmark.stats.stats.mean,
    })
    # one observed sample must stay far below the serve pass (~50ms)
    assert us_per_observe < 2_000


#: the status.json skeleton _publish_status writes every pass
_STATUS_DOC = {
    "uptime_s": 12.0, "queue_depth": 0, "degraded": False,
    "breaches": [], "policy": {"p95_target_s": 0.5},
    "endpoints": {"solve": {"requests": 100, "errors": 0,
                            "error_rate": 0.0, "p50_s": 0.05,
                            "p95_s": 0.11, "p99_s": 0.2}},
    "shard": {"shard_id": "shard0", "served": 100, "outstanding": 0},
}


def _bare_tick(spool, collector, stream):
    """What the serve loop pays per observability tick WITHOUT the
    detectors: registry flatten + tsdb append + atomic status publish.
    This is the budget's denominator."""
    t0 = time.perf_counter()
    for rec in stream:
        sampled = collector.sample()
        sampled.update(rec)
        atomic_write_text(spool / "status.json", json.dumps(_STATUS_DOC))
    return time.perf_counter() - t0


def _detector_work(bank, merged, repeats=5):
    """What the detectors ADD to that tick: observe + folding the
    active set into the published document. Measured directly (the
    added work is additive and tiny next to the disk-backed tick, so
    differencing two noisy wall-clock arms would drown it)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for rec in merged:
            bank.observe(rec)
            bank.as_dict()
        best = min(best, time.perf_counter() - t0)
    return best


def test_end_to_end_overhead_within_budget(artifact_rows, tmp_path):
    """Detector cost as a fraction of the serve loop's per-tick
    observability work."""
    stream = _sample_stream(SAMPLES)
    registry = MetricsRegistry()
    for i in range(40):
        registry.counter(f"service.bulk_{i}").inc(i)
    bare = []
    merged = None
    for i in range(REPEATS):
        spool = tmp_path / f"bare{i}"
        spool.mkdir()
        coll = SnapshotCollector(
            TimeSeriesStore(spool, rank=0, retention=2 * SAMPLES),
            registry=registry)
        bare.append(_bare_tick(spool, coll, stream))
        if merged is None:  # the exact records the on-arm would see
            merged = []
            for rec in stream:
                s = coll.sample()
                s.update(rec)
                merged.append(s)
    detector_s = _detector_work(default_bank("serve"), merged)
    bare_s = min(bare)
    us_per_tick_bare = bare_s * 1e6 / SAMPLES
    us_per_tick_detector = detector_s * 1e6 / SAMPLES
    overhead_pct = us_per_tick_detector / us_per_tick_bare * 100.0
    artifact_rows.append({
        "arm": "bare_tick", "best_s": bare_s,
        "us_per_tick": us_per_tick_bare,
    })
    artifact_rows.append({
        "arm": "detector_added", "best_s": detector_s,
        "us_per_tick": us_per_tick_detector,
    })
    artifact_rows.append({"arm": "overhead", "overhead_pct": overhead_pct})
    assert overhead_pct < OVERHEAD_BUDGET_PCT, (
        f"detector bank costs {overhead_pct:.2f}% of the per-tick "
        f"observability work (budget {OVERHEAD_BUDGET_PCT}%)"
    )
