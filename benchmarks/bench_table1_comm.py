"""E1 — Table I / Figure 1: local communication time before/after the
infrastructure improvements.

Regenerates the paper's table for the LARGE 2-level problem (512^3 +
128^3 = 136.31M cells, 262,144 patches) from 512 to 16,384 nodes:
the locked-vector pool ("before") versus the wait-free pool ("after"),
priced through the cluster simulator's pool timing model. The
per-message bookkeeping ratio in that model is cross-checked against
the *measured* thread workload of E1b on this host.

Paper values (Table I):
    nodes:     512   1k    2k    4k    8k    16k
    before:   6.25  2.68  1.26  0.89  0.79  0.73
    after:    1.42  1.18  0.54  0.36  0.30  0.23
    speedup:  4.40  2.27  2.33  2.47  2.63  3.17
"""

import pytest

from repro.dessim import ClusterSimulator, LARGE, SimOptions
from repro.perf import write_bench_artifact

NODES = [512, 1024, 2048, 4096, 8192, 16384]
PAPER = {
    512: (6.25, 1.42, 4.40),
    1024: (2.68, 1.18, 2.27),
    2048: (1.26, 0.54, 2.33),
    4096: (0.89, 0.36, 2.47),
    8192: (0.79, 0.30, 2.63),
    16384: (0.73, 0.23, 3.17),
}


def table1_rows(sim: ClusterSimulator):
    rows = []
    for nodes in NODES:
        before = sim.simulate_timestep(
            LARGE, 8, nodes, SimOptions(pool="locked")
        ).local_comm_time
        after = sim.simulate_timestep(
            LARGE, 8, nodes, SimOptions(pool="waitfree")
        ).local_comm_time
        rows.append((nodes, before, after, before / after))
    return rows


def test_table1_local_comm(benchmark):
    sim = ClusterSimulator()
    rows = benchmark(table1_rows, sim)

    print("\n--- Table I: local communication time (model vs paper) ---")
    print(f"{'nodes':>6} | {'before':>7} {'after':>7} {'speedup':>7} | "
          f"{'paper-before':>12} {'paper-after':>11} {'paper-x':>7}")
    for nodes, before, after, speedup in rows:
        pb, pa, ps = PAPER[nodes]
        print(f"{nodes:>6} | {before:7.3f} {after:7.3f} {speedup:7.2f} | "
              f"{pb:12.2f} {pa:11.2f} {ps:7.2f}")

    write_bench_artifact(
        "table1_comm",
        params={"problem": "LARGE", "rays_per_cell": 8, "nodes": NODES},
        rows=[
            {
                "nodes": nodes,
                "before_s": before,
                "after_s": after,
                "speedup": speedup,
                "paper_before_s": PAPER[nodes][0],
                "paper_after_s": PAPER[nodes][1],
                "paper_speedup": PAPER[nodes][2],
            }
            for nodes, before, after, speedup in rows
        ],
    )

    # shape assertions: paper's qualitative findings
    befores = [r[1] for r in rows]
    speedups = [r[3] for r in rows]
    assert befores == sorted(befores, reverse=True), "before-times must fall with nodes"
    assert all(2.0 <= s <= 5.0 for s in speedups), "speedups in the paper's 2-4.5x band"
    # magnitudes within 2x of the paper at the endpoints
    assert rows[0][1] == pytest.approx(PAPER[512][0], rel=0.5)
    assert rows[-1][2] == pytest.approx(PAPER[16384][1], rel=0.5)
