"""E18 — what exhaustive protocol verification costs.

The spool model checker is a CI gate, so its wall time is a budget:
this measures breadth-first state-space enumeration throughput
(states/sec) and the explored-space size for the 2-shard and 3-shard
claim/re-home models, both with a crash point after every transition.
Results land in ``BENCH_check_protocol.json``; the committed baseline
feeds the perf-gate job so a checker slowdown (a state encoding that
stops hashing cheaply, a successor function that allocates too much)
fails the build before it doubles CI time.
"""

import pytest

from repro.check.protocol import SpoolModel, check_model
from repro.perf import write_bench_artifact

#: model configs: both exhaustive, crash + steal interleavings on
CONFIGS = {
    "2-shard": dict(tickets=3, shards=2, crash_budget=1, steal_budget=1),
    "3-shard": dict(tickets=3, shards=3, crash_budget=1, steal_budget=1),
}


@pytest.fixture(scope="module")
def artifact_rows():
    rows = []
    yield rows
    write_bench_artifact(
        "check_protocol",
        params={name: cfg for name, cfg in CONFIGS.items()},
        rows=rows,
    )


@pytest.mark.parametrize("model_name", sorted(CONFIGS))
def test_model_check_throughput(benchmark, artifact_rows, model_name):
    cfg = CONFIGS[model_name]

    def run():
        return check_model(SpoolModel(**cfg))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.ok, result.render()
    mean = benchmark.stats.stats.mean
    rate = result.states / mean
    print(f"\n{model_name}: {result.states:,} states, "
          f"{result.transitions:,} transitions in {mean * 1e3:.0f} ms "
          f"({rate:,.0f} states/s)")
    artifact_rows.append({
        "model": model_name,
        "states_per_s": rate,
        # workload descriptors, stored as floats so they inform but
        # never gate (the perf gate keys rows on `model` alone)
        "peak_states": float(result.states),
        "transitions": float(result.transitions),
        "quiescent_states": float(result.terminals),
        "mean_s": mean,
    })
