"""E3 — Figure 3: GPU strong scaling, LARGE 2-level problem to 16,384
GPUs.

512^3 fine + 128^3 coarse (136.31M cells), RR 4, 100 rays per cell,
patch sizes 16^3 / 32^3 / 64^3. The headline reproduction targets are
the paper's quoted strong-scaling efficiencies for the configuration
that reaches 16,384 GPUs: 96% from 4096->8192 and 89% from 4096->16384
(eq. 3), which the model must hit within a few points.
"""

import pytest

from repro.dessim import LARGE, StrongScalingStudy

GPU_COUNTS = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
PATCH_SIZES = [16, 32, 64]


def run_study():
    return StrongScalingStudy().run(LARGE, PATCH_SIZES, GPU_COUNTS)


def test_fig3_large_scaling(benchmark):
    results = benchmark(run_study)

    print("\n--- Figure 3: LARGE strong scaling (mean time per timestep, s) ---")
    header = f"{'GPUs':>6} |" + "".join(f" patch {ps}^3" for ps in PATCH_SIZES)
    print(header)
    for g in GPU_COUNTS:
        row = f"{g:>6} |"
        for ps in PATCH_SIZES:
            s = results[ps]
            row += (
                f" {s.times[s.gpu_counts.index(g)]:9.3f}"
                if g in s.gpu_counts
                else f" {'--':>9}"
            )
        print(row)

    s16 = results[16]
    e_8k = s16.efficiency(4096, 8192)
    e_16k = s16.efficiency(4096, 16384)
    print(f"\nefficiency 4096->8192:  {e_8k:6.1%}  (paper: 96%)")
    print(f"efficiency 4096->16384: {e_16k:6.1%}  (paper: 89%)")

    assert s16.gpu_counts[-1] == 16384, "16^3 series must reach 16,384 GPUs"
    assert 0.86 <= e_8k <= 1.0
    assert 0.79 <= e_16k <= 1.0
    assert e_16k < e_8k

    # larger patches faster; truncated series (paper's blue line)
    assert results[64].gpu_counts[-1] == 512
    for g in results[64].gpu_counts:
        t16 = results[16].times[results[16].gpu_counts.index(g)]
        t64 = results[64].times[results[64].gpu_counts.index(g)]
        assert t16 > 3.0 * t64
