"""E8 — communication volume: single-level O(N^2) replication vs the
multi-level data onion (Section III.C).

For the single-level algorithm every rank replicates the whole fine
mesh, so aggregate traffic is R x V_fine — quadratic as machine and
problem grow together, and the per-node memory need alone exceeds the
K20X. The 2-level scheme replaces that with the (small) coarse level
plus patch halos. This bench tabulates both per-rank and aggregate
volumes across problem sizes and rank counts.
"""

import pytest

from repro.dessim import (
    RMCRTProblem,
    multi_level_comm_per_rank,
    single_level_comm_per_rank,
)
from repro.machine import TITAN

PROBLEMS = {128: RMCRTProblem(128), 256: RMCRTProblem(256), 512: RMCRTProblem(512)}
RANKS = [256, 1024, 4096, 16384]


def sweep():
    rows = []
    for n, problem in PROBLEMS.items():
        for r in RANKS:
            s = single_level_comm_per_rank(problem, 16, r)
            m = multi_level_comm_per_rank(problem, 16, r)
            rows.append((n, r, s.total_bytes, m.total_bytes))
    return rows


def test_comm_volume_table(benchmark):
    rows = benchmark(sweep)
    print("\n--- E8: per-rank comm volume, single vs 2-level ---")
    print(f"{'fine':>6} {'ranks':>7} {'single/rank':>12} {'multi/rank':>11} "
          f"{'reduction':>9} {'single agg':>11}")
    for n, r, s, m in rows:
        print(f"{n:>6} {r:>7} {s / 1e9:>10.2f}GB {m / 1e6:>9.1f}MB "
              f"{s / m:>8.0f}x {s * r / 1e12:>9.1f}TB")

    # reduction factor grows with problem size (the point of the onion)
    red_128 = next(s / m for n, r, s, m in rows if n == 128 and r == 4096)
    red_512 = next(s / m for n, r, s, m in rows if n == 512 and r == 4096)
    assert red_512 > red_128

    # single-level LARGE cannot even fit one rank's replica in GPU memory
    s_large = next(s for n, r, s, m in rows if n == 512 and r == 4096)
    assert s_large > 0.49 * TITAN.gpu_memory_bytes  # ~3.2 GB replica vs 6 GB card

    # aggregate single-level traffic grows ~linearly in R (per-rank ~const):
    # together with R growing ~N^3 for fixed work/rank this is the O(N^2)
    # wall of Section III.C
    aggs = [s * r for n, r, s, m in rows if n == 512]
    assert aggs == sorted(aggs)


def test_multi_level_per_rank_bounded(benchmark):
    """2-level per-rank volume is bounded by the coarse level size,
    independent of rank count — what makes 16k GPUs feasible."""

    def volumes():
        return [
            multi_level_comm_per_rank(PROBLEMS[512], 16, r).total_bytes
            for r in RANKS
        ]

    vols = benchmark(volumes)
    coarse_bytes = PROBLEMS[512].coarse_level_bytes
    print(f"\nmulti-level per-rank volumes: "
          f"{[f'{v / 1e6:.1f}MB' for v in vols]} "
          f"(coarse level = {coarse_bytes / 1e6:.1f} MB)")
    for v in vols:
        assert v < 1.6 * coarse_bytes
