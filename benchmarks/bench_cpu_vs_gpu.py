"""E10 — CPU vs GPU node throughput (the paper's declared future work,
grounded in its predecessor [5]'s CPU runs).

Prices one node-timestep of the MEDIUM problem on the two Titan node
configurations — 16 Opteron cores (the [5] setup) vs one K20X through
the GPU pipeline — across patch sizes, on the calibrated machine
models. Reproduction targets: the GPU node wins for saturating patch
sizes, the win shrinks at 16^3 (occupancy), and >90% of the node's
useful radiation throughput comes from the GPU at 32^3+ — the paper's
motivation for the port.
"""

import pytest

from repro.dessim import ClusterSimulator, MEDIUM, SimOptions

GPUS = 128
PATCH_SIZES = [16, 32, 64]


def sweep():
    sim = ClusterSimulator()
    rows = []
    for ps in PATCH_SIZES:
        gpu = sim.simulate_timestep(MEDIUM, ps, GPUS, SimOptions(device="gpu"))
        cpu = sim.simulate_timestep(MEDIUM, ps, GPUS, SimOptions(device="cpu"))
        rows.append((ps, gpu.total_time, cpu.total_time))
    return rows


def test_cpu_vs_gpu_node_throughput(benchmark):
    rows = benchmark(sweep)
    print("\n--- E10: node-for-node, MEDIUM problem at 128 nodes ---")
    print(f"{'patch':>7} {'GPU node':>10} {'CPU node':>10} {'GPU speedup':>11}")
    speedups = []
    for ps, t_gpu, t_cpu in rows:
        s = t_cpu / t_gpu
        speedups.append((ps, s))
        print(f"{ps:>5}^3 {t_gpu:>9.3f}s {t_cpu:>9.3f}s {s:>10.2f}x")

    by_ps = dict(speedups)
    assert by_ps[32] > by_ps[16], "occupancy: 16^3 shrinks the GPU win"
    assert by_ps[32] > 1.2, "GPU node must win at saturating patch sizes"
    assert by_ps[64] >= 0.95 * by_ps[32]
