"""E4 — Burns & Christon accuracy: the expected Monte Carlo convergence.

Section III.C cites the accuracy study of ref [3]: single-level RMCRT
on the Burns & Christon benchmark shows the expected O(1/sqrt(N))
Monte Carlo convergence of del.q. This bench regenerates that study
against a high-order discrete-ordinates reference and additionally
verifies the multi-level solver agrees with single-level within noise.
"""

import numpy as np
import pytest

from repro.core import MultiLevelRMCRT, SingleLevelRMCRT
from repro.radiation import BurnsChristonBenchmark, dom_reference_divq

RESOLUTION = 16
RAY_COUNTS = [4, 16, 64, 256]


@pytest.fixture(scope="module")
def setup():
    bench = BurnsChristonBenchmark(resolution=RESOLUTION)
    grid = bench.single_level_grid()
    props = bench.properties_for_level(grid.finest_level)
    reference = dom_reference_divq(props, grid.finest_level.dx,
                                   n_polar=8, n_azimuthal=16)
    return bench, grid, props, reference


def test_monte_carlo_convergence(benchmark, setup):
    bench, grid, props, reference = setup

    def sweep():
        errs = []
        for n in RAY_COUNTS:
            res = SingleLevelRMCRT(rays_per_cell=n, seed=11).solve(grid, props)
            errs.append(float(np.sqrt(np.mean((res.divq - reference) ** 2))))
        return errs

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slope = np.polyfit(np.log(RAY_COUNTS), np.log(errors), 1)[0]

    print("\n--- E4: Monte Carlo convergence (RMS error vs S_N reference) ---")
    print(f"{'rays/cell':>10} {'RMS error':>12}")
    for n, e in zip(RAY_COUNTS, errors):
        print(f"{n:>10} {e:>12.5f}")
    print(f"fitted order: {slope:.3f}  (expected ~ -0.5)")

    assert errors == sorted(errors, reverse=True)
    assert -0.75 < slope < -0.3


def test_multilevel_matches_single_level(benchmark, setup):
    bench, grid, props, reference = setup
    rays = 64

    def solve_multi():
        grid2 = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
        props2 = bench.properties_for_level(grid2.finest_level)
        return MultiLevelRMCRT(rays_per_cell=rays, seed=11, halo=2).solve(
            grid2, props2
        )

    multi = benchmark.pedantic(solve_multi, rounds=1, iterations=1)
    single = SingleLevelRMCRT(rays_per_cell=rays, seed=11).solve(grid, props)
    rel = abs(multi.divq.mean() - single.divq.mean()) / single.divq.mean()
    print(f"\nmulti-level vs single-level mean del.q: {rel:.2%} apart "
          f"({rays} rays/cell)")
    assert rel < 0.03
