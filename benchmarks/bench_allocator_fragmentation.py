"""E6 — Section IV.B: heap fragmentation and the custom allocators.

Replays the RMCRT allocation trace (persistent small metadata mixed
with transient large MPI buffers / grid variables, lifetimes
overlapping across timesteps) through three allocator stacks and
reports peak footprint vs peak live bytes. Reproduction targets:
glibc-like first-fit worst, tcmalloc-like size classes better, the
paper's custom mmap-arena + lock-free-pool stack at ~1.0 (fragmentation
eliminated).
"""

import pytest

from repro.memory import generate_trace, replay_trace

TIMESTEPS = 25


@pytest.fixture(scope="module")
def trace():
    return generate_trace(timesteps=TIMESTEPS, seed=1)


@pytest.mark.parametrize("kind", ["glibc", "tcmalloc", "custom"])
def test_fragmentation_replay(benchmark, kind, trace):
    result = benchmark.pedantic(replay_trace, args=(kind, trace),
                                rounds=1, iterations=1)
    print(
        f"\n{kind:9s}: peak footprint {result.peak_footprint / 1e6:8.1f} MB, "
        f"peak live {result.peak_live_bytes / 1e6:7.1f} MB, "
        f"fragmentation {result.fragmentation_factor:5.3f}x"
    )
    if kind == "custom":
        assert result.fragmentation_factor < 1.02
    else:
        assert result.fragmentation_factor > 1.05


def test_ordering(benchmark, trace):
    """The paper's narrative in one assertion chain."""
    results = benchmark.pedantic(
        lambda: {k: replay_trace(k, trace) for k in ("glibc", "tcmalloc", "custom")},
        rounds=1,
        iterations=1,
    )
    print("\n--- E6 summary ---")
    for k, r in results.items():
        print(f"  {k:9s}: fragmentation {r.fragmentation_factor:.3f}x")
    assert (
        results["custom"].fragmentation_factor
        < results["tcmalloc"].fragmentation_factor
        <= results["glibc"].fragmentation_factor
    )
