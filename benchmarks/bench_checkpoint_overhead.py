"""E14 — checkpointing: overhead vs cadence, recovery time vs age.

Two questions decide a checkpoint policy:

* **write overhead** — what fraction of campaign wall-clock goes to
  snapshots at each cadence (every step, every 2, every 4, never)?
  Content-addressed chunking keeps the marginal cost low: the static
  absorption field dedupes across every checkpoint, so only the
  evolving emissive field and manifest are rewritten.
* **recovery cost** — when a rank dies, the run replays every step
  since the last checkpoint. Restore time is flat (one state read);
  the replay bill grows with checkpoint age.

Both series land in ``BENCH_checkpoint_overhead.json``.
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.perf import write_bench_artifact
from repro.perf.metrics import MetricsRegistry
from repro.resilience import Checkpointer, RadiationCampaign

CAMPAIGN = dict(resolution=24, fine_patch_size=6, rays_per_cell=2, seed=0)
STEPS = 6
CADENCES = (1, 2, 4, None)  # None = no checkpointing (baseline)


def run_with_cadence(every, root):
    """One campaign; returns (wall_s, checkpoint_s, chunk metrics)."""
    metrics = MetricsRegistry()
    campaign = RadiationCampaign(**CAMPAIGN)
    ckpt = (
        Checkpointer(root, every_steps=every, metrics=metrics)
        if every is not None
        else None
    )
    t0 = time.perf_counter()
    while campaign.step < STEPS:
        campaign.step_once()
        if ckpt is not None and ckpt.should_checkpoint(campaign.step):
            ckpt.save(campaign.capture())
    wall = time.perf_counter() - t0
    ckpt_s = metrics.histogram("resilience.checkpoint.seconds").total if ckpt else 0.0
    return wall, ckpt_s, {
        "checkpoints": len(ckpt.steps()) if ckpt else 0,
        "chunks_written": metrics.value("resilience.checkpoint.chunks_written"),
        "chunks_reused": metrics.value("resilience.checkpoint.chunks_reused"),
        "bytes_written": metrics.value("resilience.checkpoint.bytes_written"),
    }


def recovery_cost(checkpoint_age, root):
    """Die after STEPS steps with the last checkpoint ``age`` steps
    old; returns (restore_s, replay_s, steps_replayed)."""
    ckpt_step = STEPS - checkpoint_age
    first = RadiationCampaign(**CAMPAIGN)
    first.run(ckpt_step)
    ckpt = Checkpointer(root)
    ckpt.save(first.capture())
    first.run(STEPS)  # ...and dies here

    second = RadiationCampaign(**CAMPAIGN)
    t0 = time.perf_counter()
    state, _ = ckpt.load_latest_valid()
    second.restore(state)
    restore_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    second.run(STEPS)
    replay_s = time.perf_counter() - t0
    return restore_s, replay_s, checkpoint_age


def test_checkpoint_overhead_and_recovery(benchmark):
    tmp = Path(tempfile.mkdtemp(prefix="bench_ckpt_"))
    try:
        overhead_rows = []
        baseline_wall = None
        for every in CADENCES:
            root = tmp / f"cadence_{every}"
            if every == CADENCES[0]:
                wall, ckpt_s, chunks = benchmark.pedantic(
                    run_with_cadence, args=(every, root), rounds=1, iterations=1
                )
            else:
                wall, ckpt_s, chunks = run_with_cadence(every, root)
            if every is None:
                baseline_wall = wall
            overhead_rows.append(
                {"every_steps": every, "wall_s": wall,
                 "checkpoint_s": ckpt_s, **chunks}
            )
        for row in overhead_rows:
            row["overhead_fraction"] = (
                0.0 if baseline_wall is None or row["wall_s"] <= 0
                else max(0.0, (row["wall_s"] - baseline_wall) / baseline_wall)
            )
            print(
                f"every={str(row['every_steps']):>4}: wall {row['wall_s']:.2f}s "
                f"ckpt {row['checkpoint_s'] * 1e3:7.1f}ms "
                f"({row['checkpoints']} snapshots, "
                f"{row['chunks_reused']:.0f} chunks deduped)"
            )

        recovery_rows = []
        for age in (1, 2, 4):
            restore_s, replay_s, _ = recovery_cost(age, tmp / f"age_{age}")
            recovery_rows.append(
                {"checkpoint_age_steps": age, "restore_s": restore_s,
                 "replay_s": replay_s, "recovery_s": restore_s + replay_s}
            )
            print(
                f"age={age}: restore {restore_s * 1e3:6.1f}ms + "
                f"replay {replay_s:.2f}s"
            )
        # the policy story: replay dominates and grows with age
        assert recovery_rows[-1]["replay_s"] > recovery_rows[0]["replay_s"]

        write_bench_artifact(
            "checkpoint_overhead",
            params={**CAMPAIGN, "steps": STEPS},
            rows=overhead_rows,
            extra={"recovery": recovery_rows},
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
