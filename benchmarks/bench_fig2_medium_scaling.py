"""E2 — Figure 2: GPU strong scaling, MEDIUM 2-level problem.

256^3 fine CFD mesh + 64^3 coarse radiation mesh (17.04M cells),
refinement ratio 4, 100 rays per fine cell, patch sizes 16^3 / 32^3 /
64^3 — on the discrete-event Titan model. Reproduction targets are the
paper's qualitative findings: larger patches are faster (occupancy),
each series strong-scales near-ideally while patches-per-GPU > 1, and
a series ends when the decomposition runs out of patches.
"""

import pytest

from repro.dessim import MEDIUM, SimOptions, StrongScalingStudy

GPU_COUNTS = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
PATCH_SIZES = [16, 32, 64]


def run_study():
    return StrongScalingStudy().run(MEDIUM, PATCH_SIZES, GPU_COUNTS)


def test_fig2_medium_scaling(benchmark):
    results = benchmark(run_study)

    print("\n--- Figure 2: MEDIUM strong scaling (mean time per timestep, s) ---")
    header = f"{'GPUs':>6} |" + "".join(f" patch {ps}^3" for ps in PATCH_SIZES)
    print(header)
    for g in GPU_COUNTS:
        row = f"{g:>6} |"
        for ps in PATCH_SIZES:
            s = results[ps]
            row += (
                f" {s.times[s.gpu_counts.index(g)]:9.3f}"
                if g in s.gpu_counts
                else f" {'--':>9}"
            )
        print(row)

    # the 64^3 series ends at 64 GPUs (4^3 patches), 32^3 at 512
    assert results[64].gpu_counts[-1] == 64
    assert results[32].gpu_counts[-1] == 512
    assert results[16].gpu_counts[-1] == 4096

    # larger patches beat 16^3 wherever both exist (GPU occupancy)
    for g in results[32].gpu_counts:
        t16 = results[16].times[results[16].gpu_counts.index(g)]
        t32 = results[32].times[results[32].gpu_counts.index(g)]
        assert t16 > 2.0 * t32

    # near-ideal strong scaling while over-decomposed (paper finding 2)
    s16 = results[16]
    for a, b in zip(s16.gpu_counts[:-1], s16.gpu_counts[1:]):
        assert s16.efficiency(a, b) > 0.85
