"""E19 — spectral tracer throughput and the cost of wavelength sampling.

Real timings of the wavelength-sampled spectral RMCRT path against the
gray kernel it extends:

* the gray single-level solver (the baseline everything is priced
  against),
* the spectral tracer in its gray limit (one band — pure subsystem
  overhead: band sampling, per-band field indirection, weighting), and
* genuinely spectral solves (3 bands, power-law kappa, tungsten
  emissivity on hot walls) for vectorized and scalar backends.

The headline number is the spectral-vs-gray cost factor at equal ray
budget — how much a run pays for band-resolved physics. Results land
in ``BENCH_spectral_tracer.json`` and gate in CI against the committed
baseline.
"""

import numpy as np
import pytest

from repro.core.single_level import SingleLevelRMCRT
from repro.perf import write_bench_artifact
from repro.radiation.spectral.model import SpectralModel
from repro.radiation.spectral.scenario import SpectralCase
from repro.radiation.spectral.viewfactor import EnclosureScenario

RAYS = 8
RESOLUTION = 12


@pytest.fixture(scope="module")
def artifact_rows():
    """Accumulates one row per sweep point; the artifact is written
    once, after every test in the module has contributed."""
    rows = []
    yield rows
    write_bench_artifact(
        "spectral_tracer",
        params={"rays_per_cell": RAYS, "resolution": RESOLUTION,
                "bands_swept": [1, 3]},
        rows=rows,
    )


def make_case(bands, name):
    if bands == 1:
        model = SpectralModel.gray_limit()
    else:
        model = SpectralModel.build(
            bands=bands, temperature=1400.0, kappa_exponent=0.8,
            emissivity="tungsten",
        )
    return SpectralCase(
        name=name, model=model, resolution=RESOLUTION,
        rays_per_cell=RAYS, wall_temperature=0.0 if bands == 1 else 0.5,
    )


def test_gray_solver_throughput(benchmark, artifact_rows):
    case = make_case(1, "gray-baseline")
    grid, props = case.prepare()
    solver = SingleLevelRMCRT(rays_per_cell=RAYS)

    result = benchmark.pedantic(
        lambda: solver.solve(grid, props), rounds=3, iterations=1
    )
    rate = result.rays_traced / benchmark.stats.stats.mean
    print(f"\ngray solver: {rate:,.0f} cell-rays/s")
    artifact_rows.append({
        "tracer": "gray",
        "bands": 1,
        "cell_rays_per_s": rate,
        "mean_s": benchmark.stats.stats.mean,
    })


@pytest.mark.parametrize("bands", [1, 3])
def test_spectral_vectorized_throughput(benchmark, artifact_rows, bands):
    case = make_case(bands, f"spectral-{bands}band")
    grid, props = case.prepare()
    tracer = case.tracer(backend="vectorized")

    result = benchmark.pedantic(
        lambda: tracer.solve(grid, props), rounds=3, iterations=1
    )
    rate = result.rays_traced / benchmark.stats.stats.mean
    print(f"\nspectral vectorized, {bands} band(s): {rate:,.0f} cell-rays/s")
    artifact_rows.append({
        "tracer": "spectral-vectorized",
        "bands": bands,
        "cell_rays_per_s": rate,
        "mean_s": benchmark.stats.stats.mean,
    })


def test_spectral_vs_gray_cost(benchmark, artifact_rows):
    """The E19 headline: band-resolved physics priced as a cost factor
    over the gray kernel at an identical ray budget."""
    import time

    case = make_case(3, "spectral-cost")
    grid, props = case.prepare()
    tracer = case.tracer(backend="vectorized")
    gray_case = make_case(1, "gray-cost")
    gray_grid, gray_props = gray_case.prepare()
    solver = SingleLevelRMCRT(rays_per_cell=RAYS)

    def compare():
        t0 = time.perf_counter()
        solver.solve(gray_grid, gray_props)
        t_gray = time.perf_counter() - t0
        t0 = time.perf_counter()
        tracer.solve(grid, props)
        t_spectral = time.perf_counter() - t0
        return t_spectral / t_gray

    cost = benchmark.pedantic(compare, rounds=3, iterations=1)
    print(f"\nspectral(3-band)/gray cost factor: {cost:.2f}x")
    artifact_rows.append({
        "tracer": "spectral_vs_gray",
        "bands": 3,
        "cost_factor": cost,
    })
    # the spectral estimator reuses the gray march per band group; it
    # must stay within a small constant of the gray kernel, not blow up
    assert cost < 10.0


def test_enclosure_throughput(benchmark, artifact_rows):
    case = EnclosureScenario(
        model=SpectralModel.build(
            bands=3, temperature=1200.0, emissivity="ceramic",
        ),
        samples_per_face=20000,
    )

    result = benchmark.pedantic(lambda: case.solve(), rounds=3, iterations=1)
    rate = result.rays_traced / benchmark.stats.stats.mean
    print(f"\nenclosure view-factor solve: {rate:,.0f} samples/s")
    artifact_rows.append({
        "tracer": "enclosure",
        "bands": 3,
        "samples_per_s": rate,
        "mean_s": benchmark.stats.stats.mean,
    })
