"""E5 — kernel throughput vs patch size: the GPU/CPU contrast.

Real (measured, not modelled) timings of the two marching kernels on
Burns & Christon patches of growing size:

* the vectorized batch kernel (this reproduction's "device" path:
  SoA state, masked divergence, one lane per ray), and
* the scalar per-ray loop (the "CPU" reference path).

The paper's Section V premise — larger patches provide more work per
kernel launch and better throughput — shows up here as cells*rays/s
rising with patch size for the batch kernel while the scalar path
stays flat.

Results land in ``BENCH_kernel_patchsize.json`` (one row per
kernel/patch sweep point), so cross-PR comparisons are a JSON diff.
"""

import numpy as np
import pytest

from repro.core import LevelFields, trace_patch_single_level
from repro.core.cpu_kernel import trace_rays_scalar
from repro.core.rays import generate_patch_rays
from repro.grid import Box
from repro.perf import write_bench_artifact
from repro.radiation import BurnsChristonBenchmark

RAYS = 8


@pytest.fixture(scope="module")
def artifact_rows():
    """Accumulates one row per sweep point; the artifact is written
    once, after every test in the module has contributed."""
    rows = []
    yield rows
    write_bench_artifact(
        "kernel_patchsize",
        params={"rays_per_cell": RAYS, "resolution": 24,
                "batch_patches": [4, 8, 16, 24], "scalar_patches": [4, 8]},
        rows=rows,
    )


def make_fields(resolution):
    bench = BurnsChristonBenchmark(resolution=resolution)
    grid = bench.single_level_grid()
    level = grid.finest_level
    props = bench.properties_for_level(level)
    return LevelFields.from_properties(level, props)


@pytest.mark.parametrize("patch", [4, 8, 16, 24])
def test_vectorized_kernel_throughput(benchmark, artifact_rows, patch):
    fields = make_fields(24)
    box = Box.cube(patch)
    rng = np.random.default_rng(0)

    def run():
        return trace_patch_single_level(fields, box, RAYS, rng)

    benchmark.pedantic(run, rounds=3, iterations=1)
    cell_rays = box.volume * RAYS
    rate = cell_rays / benchmark.stats.stats.mean
    print(f"\nbatch kernel, patch {patch}^3: {rate:,.0f} cell-rays/s")
    artifact_rows.append({
        "kernel": "batch",
        "patch": patch,
        "cell_rays_per_s": rate,
        "mean_s": benchmark.stats.stats.mean,
    })


@pytest.mark.parametrize("patch", [4, 8])
def test_scalar_kernel_throughput(benchmark, artifact_rows, patch):
    fields = make_fields(24)
    box = Box.cube(patch)
    rng = np.random.default_rng(0)
    _, origins, dirs = generate_patch_rays(fields, box, RAYS, rng)

    def run():
        return trace_rays_scalar(fields, origins, dirs)

    benchmark.pedantic(run, rounds=3, iterations=1)
    rate = origins.shape[0] / benchmark.stats.stats.mean
    print(f"\nscalar kernel, patch {patch}^3: {rate:,.0f} rays/s")
    artifact_rows.append({
        "kernel": "scalar",
        "patch": patch,
        "rays_per_s": rate,
        "mean_s": benchmark.stats.stats.mean,
    })


def test_batch_beats_scalar(benchmark, artifact_rows):
    """The device-style kernel's throughput advantage (the reason the
    GPU port exists) — measured, must be at least ~5x here."""
    import time

    fields = make_fields(16)
    box = Box.cube(8)
    rng = np.random.default_rng(1)
    _, origins, dirs = generate_patch_rays(fields, box, RAYS, rng)

    def compare():
        t0 = time.perf_counter()
        trace_rays_scalar(fields, origins, dirs)
        t_scalar = time.perf_counter() - t0
        t0 = time.perf_counter()
        trace_patch_single_level(fields, box, RAYS, np.random.default_rng(1))
        t_batch = time.perf_counter() - t0
        return t_scalar / t_batch

    speedup = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nbatch vs scalar speedup on {box.volume * RAYS} rays: {speedup:.1f}x")
    artifact_rows.append({
        "kernel": "batch_vs_scalar",
        "patch": 8,
        "speedup": speedup,
    })
    assert speedup > 5.0
