"""E17 — fabric throughput: two shards must beat one, without losing
the cache.

Two request streams drive the same solves through a single serve
process and through a router + 2-shard fabric:

* **scaling** — distinct solves (unique seeds) over scenes that
  rendezvous-hash 2/2 across the fleet: the fabric should approach 2x
  the single process's request throughput, because the two shard
  processes ray-trace in parallel;
* **affinity** — a duplicate-heavy stream (each scene requested many
  times): scene-affinity routing must keep every duplicate on the
  shard that owns the scene, so the fleet solves each distinct spec
  exactly once and the fleet-wide cache hit-rate matches the single
  process.

The >=1.8x scaling bar only holds where two shard processes can
actually run in parallel, so it is asserted only when the machine
offers >= 2 CPU cores (the CI runners do); the measured ratio is
recorded in the artifact either way. The affinity bars are
machine-independent and always enforced. Results land in
``BENCH_fabric_throughput.json``.
"""

import os
import time

from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.hashring import rendezvous_shard
from repro.fabric.shard import ShardHandle
from repro.perf import write_bench_artifact
from repro.service.spool import read_result_meta, write_request
from repro.ups import GridSpec, ProblemSpec, RMCRTSpec, scene_fingerprint, spec_to_ups

SHARD_IDS = ("shard0", "shard1")
SCENES_PER_SHARD = 2
SEEDS_PER_SCENE = 4     # scaling stream: distinct solves per scene
DUPLICATES = 6          # affinity stream: identical requests per scene
RAYS = 4
READY_TIMEOUT_S = 120.0
SOLVE_TIMEOUT_S = 600.0


def balanced_scenes():
    """Distinct grid geometries that HRW-place 2/2 across the fleet —
    chosen deterministically (the hash is stable), so single and fabric
    runs solve the identical workload."""
    picked = {sid: [] for sid in SHARD_IDS}
    for resolution in range(10, 26):
        grid = GridSpec(resolution=resolution, levels=1)
        spec = ProblemSpec(grid=grid, rmcrt=RMCRTSpec(n_divq_rays=RAYS))
        home = rendezvous_shard(scene_fingerprint(spec), list(SHARD_IDS))
        if len(picked[home]) < SCENES_PER_SHARD:
            picked[home].append(grid)
        if all(len(v) == SCENES_PER_SHARD for v in picked.values()):
            break
    assert all(len(v) == SCENES_PER_SHARD for v in picked.values())
    return [g for sid in SHARD_IDS for g in picked[sid]]


def scaling_stream(scenes):
    return [
        ProblemSpec(grid=g, rmcrt=RMCRTSpec(n_divq_rays=RAYS, random_seed=s))
        for g in scenes
        for s in range(SEEDS_PER_SCENE)
    ]


def affinity_stream(scenes):
    return [
        ProblemSpec(grid=g, rmcrt=RMCRTSpec(n_divq_rays=RAYS, random_seed=1000))
        for g in scenes
        for _ in range(DUPLICATES)
    ]


def _submit(inbox, stream, tag):
    tickets = []
    for i, spec in enumerate(stream):
        ticket = f"{tag}-{i:03d}"
        write_request(inbox, ticket, spec_to_ups(spec))
        tickets.append(ticket)
    return tickets


def _await_results(outbox, tickets, tick=None):
    deadline = time.monotonic() + SOLVE_TIMEOUT_S
    pending = set(tickets)
    while pending:
        assert time.monotonic() < deadline, f"{len(pending)} results missing"
        if tick is not None:
            tick()
        for ticket in list(pending):
            if read_result_meta(outbox, ticket) is not None:
                pending.discard(ticket)
        time.sleep(0.005)


def _stats_of(status_doc):
    stats = (status_doc or {}).get("shard", {}).get("stats", {})
    return {
        "solves": stats.get("solves", 0.0),
        "hits": stats.get("cache_hits_memory", 0.0)
        + stats.get("cache_hits_disk", 0.0),
        "coalesced": stats.get("coalesced", 0.0),
    }


def drive_single(root, stream, tag):
    """One serve process, one spool: elapsed + serving stats."""
    shard = ShardHandle("solo", root / "solo", workers=1)
    shard.spawn()
    try:
        deadline = time.monotonic() + READY_TIMEOUT_S
        while not shard.paths.status.exists():
            assert time.monotonic() < deadline, "serve never became ready"
            time.sleep(0.01)
        t0 = time.perf_counter()
        tickets = _submit(shard.paths.inbox, stream, tag)
        _await_results(shard.paths.outbox, tickets)
        elapsed = time.perf_counter() - t0
    finally:
        shard.request_stop()
        if shard.wait(timeout=30.0) is None:
            shard.kill()
            shard.wait(timeout=10.0)
    return elapsed, _stats_of(shard.status())


def drive_fabric(root, stream, tag):
    """Router + 2 shards: elapsed + fleet-wide serving stats."""
    config = FabricConfig(
        shards=2, autoscale=False, tick_s=0.02, heartbeat_timeout_s=60.0
    )
    fabric = Fabric(root, config)
    try:
        fabric.up()
        deadline = time.monotonic() + READY_TIMEOUT_S
        while not all(
            s.paths.status.exists() for s in fabric.fleet.shards.values()
        ):
            assert time.monotonic() < deadline, "fleet never became ready"
            time.sleep(0.01)
        t0 = time.perf_counter()
        tickets = _submit(fabric.inbox, stream, tag)
        _await_results(fabric.outbox, tickets, tick=fabric.tick)
        elapsed = time.perf_counter() - t0
    finally:
        fabric.down()
    totals = {"solves": 0.0, "hits": 0.0, "coalesced": 0.0}
    for shard in fabric.fleet.shards.values():
        for k, v in _stats_of(shard.status()).items():
            totals[k] += v
    return elapsed, totals


def test_fabric_throughput_and_affinity(benchmark, tmp_path):
    cores = len(os.sched_getaffinity(0))
    scenes = balanced_scenes()
    scaling = scaling_stream(scenes)
    affinity = affinity_stream(scenes)

    # -- scaling: distinct solves, parallel shards ---------------------
    fab_s, fab_stats = benchmark.pedantic(
        drive_fabric, args=(tmp_path / "fab_scale", scaling, "scale"),
        rounds=1, iterations=1,
    )
    single_s, single_stats = drive_single(
        tmp_path / "solo_scale", scaling, "scale"
    )
    fab_rps = len(scaling) / fab_s
    single_rps = len(scaling) / single_s
    ratio = fab_rps / single_rps

    # -- affinity: duplicate-heavy, cache must survive sharding --------
    single_aff_s, single_aff = drive_single(
        tmp_path / "solo_aff", affinity, "aff"
    )
    fab_aff_s, fab_aff = drive_fabric(tmp_path / "fab_aff", affinity, "aff")
    n_aff = len(affinity)
    single_hit_rate = (single_aff["hits"] + single_aff["coalesced"]) / n_aff
    fab_hit_rate = (fab_aff["hits"] + fab_aff["coalesced"]) / n_aff

    print(f"\nscaling ({len(scaling)} distinct solves, {cores} core(s)):")
    print(f"  single: {single_rps:6.1f} req/s ({single_s:.2f}s, "
          f"{single_stats['solves']:.0f} solves)")
    print(f"  fabric: {fab_rps:6.1f} req/s ({fab_s:.2f}s, "
          f"{fab_stats['solves']:.0f} solves)  ->  {ratio:.2f}x")
    print(f"affinity ({n_aff} requests over {len(scenes)} scenes):")
    print(f"  single: {single_aff['solves']:.0f} solves, "
          f"hit-rate {single_hit_rate:.2f}")
    print(f"  fabric: {fab_aff['solves']:.0f} solves, "
          f"hit-rate {fab_hit_rate:.2f}")

    write_bench_artifact(
        "fabric_throughput",
        params={
            "scenes": len(scenes),
            "seeds_per_scene": SEEDS_PER_SCENE,
            "duplicates": DUPLICATES,
            "rays": RAYS,
            "shards": 2,
        },
        rows=[
            {
                "path": "single",
                "stream": "scaling",
                "elapsed_s": single_s,
                "requests_per_s": single_rps,
                "solves": float(single_stats["solves"]),
            },
            {
                "path": "fabric",
                "stream": "scaling",
                "elapsed_s": fab_s,
                "requests_per_s": fab_rps,
                "solves": float(fab_stats["solves"]),
            },
            {
                "path": "single",
                "stream": "affinity",
                "elapsed_s": single_aff_s,
                "cache_hit_rate": single_hit_rate,
                "solves": float(single_aff["solves"]),
            },
            {
                "path": "fabric",
                "stream": "affinity",
                "elapsed_s": fab_aff_s,
                "cache_hit_rate": fab_hit_rate,
                "solves": float(fab_aff["solves"]),
            },
        ],
        extra={"scaling_ratio": ratio, "cores": cores},
    )

    # every request answered, every distinct spec solved exactly once
    assert single_stats["solves"] == len(scaling)
    assert fab_stats["solves"] == len(scaling)
    # affinity: sharding must not fracture the cache — the fleet solves
    # each distinct scene once and hits at the single-process rate
    assert fab_aff["solves"] == len(scenes), fab_aff
    assert fab_hit_rate >= single_hit_rate - 1e-9
    # the scaling bar needs real parallel hardware; on a 1-core machine
    # only a sanity floor applies (the fabric must not collapse)
    if cores >= 2:
        assert ratio >= 1.8, f"fabric only {ratio:.2f}x single-process"
    else:
        assert ratio >= 0.25, f"fabric collapsed to {ratio:.2f}x"
