#!/usr/bin/env python
"""The data-onion trade-off: accuracy vs communication.

Compares single-level RMCRT (every ray marches the full fine mesh;
the whole domain must be replicated on every node) against the paper's
multi-level algorithm (fine data only inside each patch's region of
interest, coarsened data beyond) on a matched problem:

* physics: cellwise del.q difference as the ROI halo grows,
* systems: per-rank communication volume from the cost model — the
  O(N^2)-type replication the AMR approach eliminates.

Run:  python examples/multilevel_vs_singlelevel.py
"""

import numpy as np

from repro import BurnsChristonBenchmark, MultiLevelRMCRT, SingleLevelRMCRT
from repro.dessim import (
    LARGE,
    multi_level_comm_per_rank,
    single_level_comm_per_rank,
)


def accuracy_study() -> None:
    res, rays = 16, 64
    bench = BurnsChristonBenchmark(resolution=res)
    grid1 = bench.single_level_grid()
    props1 = bench.properties_for_level(grid1.finest_level)
    single = SingleLevelRMCRT(rays_per_cell=rays, seed=3,
                              centered_origins=True).solve(grid1, props1)

    print(f"single-level reference on {res}^3, {rays} rays/cell")
    print(f"\n{'halo':>6} {'mean |ddivq|':>14} {'max |ddivq|':>13} {'rel mean':>10}")
    for halo in (0, 2, 4, 8):
        grid2 = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
        props2 = bench.properties_for_level(grid2.finest_level)
        multi = MultiLevelRMCRT(
            rays_per_cell=rays, seed=3, halo=halo, centered_origins=True
        ).solve(grid2, props2)
        diff = np.abs(multi.divq - single.divq)
        print(f"{halo:>6} {diff.mean():>14.5f} {diff.max():>13.5f} "
              f"{diff.mean() / single.divq.mean():>10.2%}")
    print("\nlarger halos shrink the onion error; even halo 0 stays within")
    print("Monte Carlo noise of the single-level answer.")


def communication_study() -> None:
    print("\nPer-rank communication for the LARGE problem (512^3 fine):")
    print(f"{'ranks':>7} {'single-level':>14} {'multi-level':>13} {'reduction':>10}")
    for ranks in (512, 2048, 8192, 16384):
        s = single_level_comm_per_rank(LARGE, 16, ranks).total_bytes
        m = multi_level_comm_per_rank(LARGE, 16, ranks).total_bytes
        print(f"{ranks:>7} {s / 1e9:>12.2f}GB {m / 1e6:>11.1f}MB {s / m:>9.0f}x")
    print("\nsingle-level replication also exceeds the K20X's 6 GB device")
    print("memory outright — the configuration the paper calls intractable.")


if __name__ == "__main__":
    accuracy_study()
    communication_study()
