#!/usr/bin/env python
"""Regenerate the paper's Figures 2 and 3 on the Titan cluster model.

Strong scaling of the MEDIUM (256^3 + 64^3) and LARGE (512^3 + 128^3)
2-level Burns & Christon problems for fine-patch sizes 16^3 / 32^3 /
64^3, 100 rays per cell, refinement ratio 4 — the exact configurations
of the paper's Section V — on the discrete-event Titan simulator.

Run:  python examples/titan_strong_scaling.py
"""

from repro import LARGE, MEDIUM, StrongScalingStudy


def print_figure(title, problem, gpu_counts, quote=None):
    print(f"\n=== {title} ===")
    study = StrongScalingStudy()
    results = study.run(problem, [16, 32, 64], gpu_counts)
    header = f"{'GPUs':>7} |" + "".join(f"  patch {ps}^3" for ps in (16, 32, 64))
    print(header)
    print("-" * len(header))
    for g in gpu_counts:
        row = f"{g:>7} |"
        for ps in (16, 32, 64):
            series = results[ps]
            if g in series.gpu_counts:
                row += f" {series.times[series.gpu_counts.index(g)]:9.3f}s"
            else:
                row += f" {'--':>10}"
        print(row)
    print("(series end where the problem runs out of patches — the paper's")
    print(" truncated 64^3 line)")
    if quote:
        s16 = results[16]
        e1 = s16.efficiency(4096, 8192)
        e2 = s16.efficiency(4096, 16384)
        print(f"\nstrong-scaling efficiency (16^3 patches, eq. 3):")
        print(f"  4096 -> 8192  GPUs: {e1:6.1%}   (paper: 96%)")
        print(f"  4096 -> 16384 GPUs: {e2:6.1%}   (paper: 89%)")
    return results


def main() -> None:
    medium_gpus = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
    large_gpus = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
    print_figure("Figure 2: MEDIUM, 17.04M cells, RR:4, 100 rays", MEDIUM, medium_gpus)
    print_figure("Figure 3: LARGE, 136.31M cells, RR:4, 100 rays", LARGE,
                 large_gpus, quote=True)


if __name__ == "__main__":
    main()
