#!/usr/bin/env python
"""Coupled CFD + radiation on a miniature boiler.

The CCMSC production shape at laptop scale: ARCHES-lite advances the
thermal energy equation of a hot-core boiler while multi-level RMCRT
periodically recomputes the radiative source (time-scale separation),
then a virtual radiometer reports the incident heat flux on the water
walls — the boiler designer's quantity of interest.

Run:  python examples/boiler_coupled.py
"""

import numpy as np

from repro import BoilerScenario, CoupledSimulation, VirtualRadiometer
from repro.core import LevelFields


def main() -> None:
    scenario = BoilerScenario(
        resolution=24,
        peak_temperature=1800.0,
        wall_temperature=600.0,
    )
    sim = CoupledSimulation(
        scenario,
        rays_per_cell=16,
        radiation_interval=4,
        advect=True,
    )
    steps = 12
    print(f"Running {steps} coupled steps on a {scenario.resolution}^3 boiler ...")
    result = sim.run(steps)

    h = result.mean_temperature_history
    print(f"radiation solves: {result.radiation_solves}")
    print(f"mean gas temperature: {h[0]:.1f} K -> {h[-1]:.1f} K")
    print(result.timers.report())

    # wall heat flux from the final state
    level = sim.level
    props = scenario.properties_from_temperature(level, result.temperature)
    fields = LevelFields.from_properties(level, props)
    radiometer = VirtualRadiometer(rays_per_face=64, seed=7)
    fluxes = radiometer.all_walls(fields)
    print("\nIncident radiative flux on the walls [W/m^2]:")
    names = {0: "x", 1: "y", 2: "z"}
    for (axis, side), q in sorted(fluxes.items()):
        wall = f"{names[axis]}{'-' if side == 0 else '+'}"
        print(f"  wall {wall}: mean {q.mean():12.1f}   peak {q.max():12.1f}")

    core = np.unravel_index(result.divq.argmax(), result.divq.shape)
    print(f"\npeak del.q {result.divq.max():,.0f} W/m^3 at cell {core} (flame core)")


if __name__ == "__main__":
    main()
