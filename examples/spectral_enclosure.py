#!/usr/bin/env python
"""Spectral enclosure radiation: view factors + banded radiosity.

The optically-thin counterpart of the volume tracers: a unit-cube
furnace with one hot face (1500 K), one cold face (300 K), and warm
side walls (900 K), exchanged surface-to-surface through Monte Carlo
view factors and a per-band radiosity solve with the ceramic
emissivity table.

Shows the full worked path:

1. MC view factors vs the analytic coaxial-rectangles oracle,
2. the constraint projection (reciprocity + unit row sums to
   round-off),
3. band emissive powers from the Planck fraction function at each
   face's own temperature,
4. net face fluxes, their band breakdown, and the energy balance
   closing to round-off.

Run:  python examples/spectral_enclosure.py
"""

import numpy as np

from repro.radiation.spectral import (
    EnclosureScenario,
    SpectralModel,
    parallel_plates_view_factor,
)

FACE_NAMES = ("x- (hot)", "x+ (cold)", "y-", "y+", "z-", "z+")


def main() -> None:
    scenario = EnclosureScenario(
        dims=(1.0, 1.0, 1.0),
        face_temperatures=(1500.0, 300.0, 900.0, 900.0, 900.0, 900.0),
        model=SpectralModel.build(
            bands=3, temperature=1200.0, emissivity="ceramic",
            name="enclosure-ceramic",
        ),
        samples_per_face=40000,
    )
    result = scenario.solve()

    analytic = parallel_plates_view_factor(1.0, 1.0, 1.0)
    print(f"unit-cube opposite-face view factor:")
    print(f"  analytic (Modest config 38): {analytic:.6f}")
    print(f"  MC, constrained:             {result.view_factors[0, 1]:.6f} "
          f"(err {abs(result.view_factors[0, 1] - analytic):.1e}, "
          f"{scenario.samples_per_face} rays/face)")

    s = result.areas[:, None] * result.view_factors
    print(f"  reciprocity residual:        "
          f"{np.max(np.abs(s - s.T)):.1e} (exact by construction)")
    print(f"  row-sum residual:            "
          f"{np.max(np.abs(result.view_factors.sum(axis=1) - 1.0)):.1e}")

    print(f"\n{'face':>10} {'T [K]':>7} {'q [W/m^2]':>12}  band shares")
    for i, name in enumerate(FACE_NAMES):
        shares = result.band_flux[i] / result.flux[i]
        share_s = " ".join(f"{w:5.2f}" for w in shares)
        print(f"{name:>10} {scenario.face_temperatures[i]:7.0f} "
              f"{result.flux[i]:12.1f}  [{share_s}]")

    emitted = np.abs(result.face_power).sum()
    print(f"\nenergy balance: sum_i A_i q_i = {result.energy_balance:+.2e} W "
          f"(vs {emitted:.3e} W gross — closes to round-off)")
    print("the hot face loses, every other face gains; the ceramic table")
    print("shifts exchange between bands but conserves total power because")
    print("the constrained view factors satisfy reciprocity exactly.")


if __name__ == "__main__":
    main()
