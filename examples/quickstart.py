#!/usr/bin/env python
"""Quickstart: solve the Burns & Christon benchmark with RMCRT.

Computes the divergence of the radiative heat flux on a 17^3 unit cube
of hot participating medium with cold black walls — the paper's
verification problem — and prints the centreline profile, comparing
against a discrete-ordinates reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BurnsChristonBenchmark, DiscreteOrdinates, RMCRTSolver
from repro.radiation import dom_reference_divq


def main() -> None:
    resolution = 17
    rays = 64
    bench = BurnsChristonBenchmark(resolution=resolution)

    solver = RMCRTSolver(rays_per_cell=rays, seed=42)
    result = solver.solve_benchmark(benchmark=bench)
    print(f"RMCRT: {result.rays_traced:,} rays traced in "
          f"{result.timers('rmcrt_solve').elapsed:.2f} s")

    grid = bench.single_level_grid()
    props = bench.properties_for_level(grid.finest_level)
    reference = dom_reference_divq(props, grid.finest_level.dx,
                                   n_polar=6, n_azimuthal=12)

    x, rmcrt_line = bench.centerline(result.divq)
    _, dom_line = bench.centerline(reference)

    print(f"\n{'x':>8} {'RMCRT divQ':>12} {'DOM divQ':>12} {'diff %':>8}")
    for xi, a, b in zip(x, rmcrt_line, dom_line):
        print(f"{xi:8.3f} {a:12.4f} {b:12.4f} {100 * (a - b) / b:8.2f}")

    rms = np.sqrt(np.mean((result.divq - reference) ** 2))
    print(f"\nRMS difference vs S_N reference: {rms:.4f} "
          f"(Monte Carlo noise at {rays} rays/cell)")


if __name__ == "__main__":
    main()
