#!/usr/bin/env python
"""Section IV live: the request-pool race and the allocator fix.

1. Drives real threads through the legacy mutex-vector request pool
   and shows the double-processing race leaking receive buffers (the
   bug that killed large runs with node OOMs), then the same workload
   through the wait-free pool: clean.
2. Replays the RMCRT allocation trace through glibc-like, tcmalloc-like
   and the paper's custom (mmap arena + lock-free pool) allocator
   stacks and reports fragmentation.
3. Runs the full distributed RMCRT task pipeline over simulated MPI
   with each pool, verifying identical physics.

Run:  python examples/infrastructure_demo.py
"""

import numpy as np

from repro.comm import make_pool, run_comm_workload
from repro.core import DistributedRMCRT, benchmark_property_init
from repro.memory import generate_trace, replay_trace
from repro.radiation import BurnsChristonBenchmark


def pool_race_demo() -> None:
    print("=== request pools under 8 threads, 400 in-flight messages ===")
    for kind in ("legacy-racy", "locked", "waitfree"):
        result = run_comm_workload(
            make_pool(kind), num_threads=8, num_messages=400
        )
        status = "CLEAN" if result.clean else "LEAKING"
        print(
            f"  {kind:12s}: processed {result.processed}/{result.expected}, "
            f"leaked buffers {result.leaked_buffers:4d} "
            f"({result.leaked_bytes / 1024:.0f} KiB), races "
            f"{result.races_observed:4d} -> {status}"
        )
    print("  (the legacy race is exactly Section IV.A: every losing thread")
    print("   allocates a receive buffer that is never freed)")


def allocator_demo() -> None:
    print("\n=== heap fragmentation, 25 simulated timesteps ===")
    events = generate_trace(timesteps=25, seed=1)
    for kind in ("glibc", "tcmalloc", "custom"):
        r = replay_trace(kind, events)
        print(
            f"  {kind:9s}: peak footprint {r.peak_footprint / 1e6:7.1f} MB "
            f"for {r.peak_live_bytes / 1e6:6.1f} MB live "
            f"-> fragmentation {r.fragmentation_factor:5.3f}x"
        )
    print("  (custom = mmap arena for large + lock-free pool for small")
    print("   transient objects: fragmentation eliminated)")


def distributed_demo() -> None:
    print("\n=== distributed RMCRT over simulated MPI, 4 ranks ===")
    bench = BurnsChristonBenchmark(resolution=16)
    grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
    drm = DistributedRMCRT(
        grid, benchmark_property_init(bench), rays_per_cell=8, halo=2, seed=5
    )
    reference = drm.solve("serial")
    for pool in ("waitfree", "locked"):
        result = drm.solve("distributed", num_ranks=4, pool_kind=pool)
        identical = np.array_equal(result.divq, reference.divq)
        print(f"  pool {pool:9s}: divq identical to serial run: {identical}")


if __name__ == "__main__":
    pool_race_demo()
    allocator_demo()
    distributed_demo()
