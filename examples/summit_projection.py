#!/usr/bin/env python
"""Project the LARGE benchmark onto DOE Summit.

The paper's closing motivation: "enable the Utah CCMSC to run the
target 1000MWe boiler problem on current and emerging GPU-based
architectures at large scale", naming Summit explicitly. This example
re-runs the Figure 3 study on the Summit machine model (V100s, NVLink,
EDR fat-tree) next to Titan and reports the projected per-GPU speedup
and where the scaling limits move.

Run:  python examples/summit_projection.py
"""

from repro import LARGE, StrongScalingStudy
from repro.machine import summit_simulator

GPUS = [512, 1024, 2048, 4096, 8192, 16384]


def main() -> None:
    titan = StrongScalingStudy()
    summit = StrongScalingStudy(summit_simulator())

    patch_sizes = [16, 64]
    t_res = titan.run(LARGE, patch_sizes, GPUS)
    s_res = summit.run(LARGE, patch_sizes, GPUS)

    print("LARGE problem (512^3 + 128^3, 100 rays/cell), time per timestep:\n")
    print(f"{'GPUs':>7} | {'Titan 16^3':>10} {'Summit 16^3':>11} | "
          f"{'Titan 64^3':>10} {'Summit 64^3':>11}")
    for g in GPUS:
        row = f"{g:>7} |"
        for ps in patch_sizes:
            for res in (t_res, s_res):
                s = res[ps]
                row += (
                    f" {s.times[s.gpu_counts.index(g)]:9.3f}s"
                    if g in s.gpu_counts
                    else f" {'--':>10}"
                )
            if ps == patch_sizes[0]:
                row += " |"
        print(row)

    small = t_res[16].times[0] / s_res[16].times[0]
    big = t_res[64].times[0] / s_res[64].times[0]
    print(f"\nprojected per-GPU speedup (V100 vs K20X): "
          f"{small:.2f}x at 16^3 patches, {big:.2f}x at 64^3")
    print(f"Titan  efficiency 4096->16384 (16^3): "
          f"{t_res[16].efficiency(4096, 16384):.1%}")
    print(f"Summit efficiency 4096->16384 (16^3): "
          f"{s_res[16].efficiency(4096, 16384):.1%}")
    print("\nthe projection's real finding: a V100 needs 163,840 resident")
    print("threads to saturate (vs the K20X's 28,672), so Titan-tuned 16^3")
    print("patches leave Summit's GPUs mostly idle — the faster machine is")
    print("SLOWER until patches grow. The paper's patch-size tension gets")
    print("sharper, not weaker, on emerging hardware.")


if __name__ == "__main__":
    main()
