#!/usr/bin/env python
"""Per-rank execution timeline of the RMCRT task graph.

Event-simulates the real compiled 3-task pipeline on the Titan machine
model and renders a text Gantt chart per rank — the view the paper's
authors used (via Uintah's per-component timers) to find where time
went: the coarsen serialization point, message waits, and the trace
kernels that dominate.

Run:  python examples/pipeline_timeline.py
"""

from repro.core import DistributedRMCRT, benchmark_property_init
from repro.dessim import RMCRTProblem, TaskGraphTraceSimulator, rmcrt_task_cost
from repro.grid import LoadBalancer
from repro.radiation import BurnsChristonBenchmark

RANKS = 4
WIDTH = 88
GLYPH = {"rmcrt.initProperties": "i", "rmcrt.coarsen": "C", "rmcrt.trace": "T"}


def main() -> None:
    bench = BurnsChristonBenchmark(resolution=32)
    grid = bench.two_level_grid(refinement_ratio=4, fine_patch_size=8)
    # 1 ray/cell keeps the trace kernels cheap enough that the init and
    # coarsen phases are visible on the chart (at 100 rays the kernels
    # are everything — run it yourself to see the paper's regime)
    drm = DistributedRMCRT(
        grid, benchmark_property_init(bench), rays_per_cell=1, halo=4
    )
    assignment = LoadBalancer(RANKS).assign(grid.finest_level.patches)
    graph = drm.build_graph(assignment=assignment, num_ranks=RANKS)

    problem = RMCRTProblem(fine_cells=32, refinement_ratio=4, halo=4,
                           rays_per_cell=1)
    cost = rmcrt_task_cost(problem, patch_size=8)
    # a congested network (relative to the cheap kernels) so the MPI
    # waits the paper's Figure 1 measures are visible on the chart
    from repro.machine import NetworkModel

    slow_net = NetworkModel(latency_s=1e-3, congestion=0.05)
    report = TaskGraphTraceSimulator(slow_net).simulate(graph, cost)

    scale = WIDTH / report.makespan
    print(f"RMCRT pipeline, {RANKS} ranks, 64 patches "
          f"(i=init, C=coarsen, T=trace, .=idle/MPI wait)\n")
    for rank in sorted(report.ranks):
        line = ["."] * WIDTH
        for t in report.traces:
            if t.rank != rank:
                continue
            a = int(t.start * scale)
            b = max(a + 1, int(t.end * scale))
            for c in range(a, min(b, WIDTH)):
                line[c] = GLYPH.get(t.name, "?")
        tl = report.ranks[rank]
        print(f"rank {rank}: |{''.join(line)}| "
              f"busy {tl.busy:.3f}s idle {tl.idle(report.makespan):.3f}s")
    print(f"\nmakespan {report.makespan:.3f}s, "
          f"parallel efficiency {report.parallel_efficiency:.1%}, "
          f"{report.messages_sent} messages "
          f"({report.message_bytes / 1e6:.2f} MB)")
    print("\nthe single 'C' (coarsen) on one rank gates every trace task —")
    print("the serialization the per-level broadcast then amortizes.")


if __name__ == "__main__":
    main()
