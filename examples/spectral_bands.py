#!/usr/bin/env python
"""Non-grey radiation: the paper's future-work band loop, implemented.

Solves the Burns & Christon benchmark with a 3-band
weighted-sum-of-grey-gases spectrum (thick CO2/H2O band, moderate band,
transparent window) and compares the band-resolved divergence of the
heat flux against the grey approximation the paper's production runs
used ("currently we are using a mean absorption coefficient
approximation ... adding spectral frequencies would entail adding a
loop over wave-lengths").

Run:  python examples/spectral_bands.py
"""

import numpy as np

from repro import BurnsChristonBenchmark, SingleLevelRMCRT
from repro.radiation import COMBUSTION_3_BAND, SpectralRMCRT, band_properties


def main() -> None:
    bench = BurnsChristonBenchmark(resolution=17)
    grid = bench.single_level_grid()
    props = bench.properties_for_level(grid.finest_level)
    rays = 64

    grey = SingleLevelRMCRT(rays_per_cell=rays, seed=9).solve(grid, props)
    spectral = SpectralRMCRT(
        SingleLevelRMCRT(rays_per_cell=rays, seed=9), COMBUSTION_3_BAND
    ).solve(grid, props)

    print("3-band WSGG spectrum:")
    for i, band in enumerate(COMBUSTION_3_BAND):
        bp = band_properties(props, band)
        print(f"  band {i}: weight {band.weight:.2f}, "
              f"kappa x{band.kappa_scale:<4} "
              f"(peak kappa {bp.interior_view('abskg').max():.2f})")

    x, grey_line = bench.centerline(grey.divq)
    _, spec_line = bench.centerline(spectral.divq)
    print(f"\n{'x':>8} {'grey divQ':>11} {'3-band divQ':>12} {'ratio':>7}")
    for xi, g, s in zip(x[::2], grey_line[::2], spec_line[::2]):
        print(f"{xi:8.3f} {g:11.4f} {s:12.4f} {s / g:7.3f}")

    print(f"\ndomain totals: grey {grey.divq.sum():.1f}, "
          f"3-band {spectral.divq.sum():.1f} "
          f"({spectral.divq.sum() / grey.divq.sum():.2f}x)")
    print("the thick band self-absorbs near the centre while the window")
    print("band radiates straight to the cold walls — the non-grey")
    print("redistribution a grey coefficient cannot capture.")


if __name__ == "__main__":
    main()
